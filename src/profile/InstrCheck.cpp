//===--- InstrCheck.cpp - Instrumentation invariant checker -----------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "profile/InstrCheck.h"

#include "ir/Module.h"
#include "overlap/RegionNumbering.h"

#include <map>
#include <numeric>
#include <string>
#include <tuple>

using namespace olpp;

namespace {

const char *kindName(ProbeOpKind K) {
  switch (K) {
  case ProbeOpKind::BLSet:
    return "BLSet";
  case ProbeOpKind::BLAdd:
    return "BLAdd";
  case ProbeOpKind::BLCount:
    return "BLCount";
  case ProbeOpKind::OLDisarm:
    return "OLDisarm";
  case ProbeOpKind::OLArm:
    return "OLArm";
  case ProbeOpKind::OLAdd:
    return "OLAdd";
  case ProbeOpKind::OLPred:
    return "OLPred";
  case ProbeOpKind::OLFlush:
    return "OLFlush";
  case ProbeOpKind::IPCall:
    return "IPCall";
  case ProbeOpKind::IPArmII:
    return "IPArmII";
  case ProbeOpKind::IPAddII:
    return "IPAddII";
  case ProbeOpKind::IPPredII:
    return "IPPredII";
  case ProbeOpKind::IPFlushII:
    return "IPFlushII";
  case ProbeOpKind::IPEnter:
    return "IPEnter";
  case ProbeOpKind::IPAddI:
    return "IPAddI";
  case ProbeOpKind::IPPredI:
    return "IPPredI";
  case ProbeOpKind::IPFlushI:
    return "IPFlushI";
  case ProbeOpKind::IPRet:
    return "IPRet";
  }
  return "?";
}

std::string opDesc(const ProbeOp &Op) {
  return std::string(kindName(Op.Kind)) + "(slot=" + std::to_string(Op.Slot) +
         ", c0=" + std::to_string(Op.C0) + ", c1=" + std::to_string(Op.C1) +
         ")";
}

bool opsEqual(const std::vector<ProbeOp> &A, const std::vector<ProbeOp> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].Kind != B[I].Kind || A[I].Slot != B[I].Slot ||
        A[I].C0 != B[I].C0 || A[I].C1 != B[I].C1)
      return false;
  return true;
}

/// Union-find for the spanning-tree audit.
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }
  uint32_t find(uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  bool unite(uint32_t A, uint32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return false;
    Parent[A] = B;
    return true;
  }

private:
  std::vector<uint32_t> Parent;
};

class InstrChecker {
public:
  InstrChecker(const Module &M, const Function &F,
               const FunctionInstrumentation &Meta,
               const InstrumentOptions &Opts,
               const std::vector<CallSiteInfo> &CallSites,
               std::vector<Diagnostic> &Diags)
      : M(M), F(F), Meta(Meta), Opts(Opts), CallSites(CallSites),
        Diags(Diags) {}

  void run() {
    if (!Meta.PG || !Meta.Cfg || !Meta.Loops) {
      err("function has no instrumentation metadata to check against");
      return;
    }
    checkNumbering();
    checkIncrements();
    checkSpanningTree();
    if (Opts.LoopOverlap)
      checkLoopRegions();
    if (Opts.Interproc)
      checkInterprocNumberings();
    checkProbes();
  }

private:
  void err(const std::string &Msg) {
    Diags.push_back(makeDiag(Severity::Error, "instr-check", F.Name, Msg));
  }
  void errAt(uint32_t B, const std::string &Msg) {
    if (B < F.numBlocks())
      Diags.push_back(makeDiagAt(Severity::Error, "instr-check", F.Name, B,
                                 F.block(B)->Name, Msg));
    else
      err(Msg);
  }
  /// Best-effort CFG location of a path-graph edge.
  void errAtEdge(const PGEdge &E, const std::string &Msg) {
    const PathGraph &PG = *Meta.PG;
    uint32_t B = UINT32_MAX;
    if (E.CfgFrom != UINT32_MAX)
      B = E.CfgFrom;
    else if (PG.node(E.From).K == PGNode::Kind::Block)
      B = PG.node(E.From).Block;
    else if (PG.node(E.To).K == PGNode::Kind::Block)
      B = PG.node(E.To).Block;
    if (B != UINT32_MAX)
      errAt(B, Msg);
    else
      err(Msg);
  }

  std::string nodeDesc(uint32_t N) const {
    const PGNode &Node = Meta.PG->node(N);
    switch (Node.K) {
    case PGNode::Kind::Entry:
      return "Entry";
    case PGNode::Kind::Exit:
      return "Exit";
    case PGNode::Kind::Block:
      break;
    }
    std::string S = "^" + std::to_string(Node.Block);
    if (Node.Region != WhiteRegion)
      S += "@og" + std::to_string(Node.Region - 1);
    if (Node.CallStart)
      S += "'";
    return S;
  }

  // --- numbering: independent topo + path counts + Val tiling -------------

  /// Kahn topological order of the path graph; empty on a cycle (reported).
  std::vector<uint32_t> topoOrder() {
    const PathGraph &PG = *Meta.PG;
    uint32_t NN = static_cast<uint32_t>(PG.numNodes());
    std::vector<uint32_t> InDeg(NN, 0);
    for (uint32_t E = 0; E < PG.numEdges(); ++E)
      ++InDeg[PG.edge(E).To];
    std::vector<uint32_t> Work, Order;
    for (uint32_t N = 0; N < NN; ++N)
      if (InDeg[N] == 0) {
        if (N != PG.entryNode())
          err("path-graph node " + nodeDesc(N) +
              " has no incoming edges (orphaned from Entry)");
        Work.push_back(N);
      }
    while (!Work.empty()) {
      uint32_t N = Work.back();
      Work.pop_back();
      Order.push_back(N);
      for (uint32_t E : PG.outEdges(N))
        if (--InDeg[PG.edge(E).To] == 0)
          Work.push_back(PG.edge(E).To);
    }
    if (Order.size() != NN) {
      err("path graph contains a cycle; the id assignment is meaningless");
      return {};
    }
    return Order;
  }

  void checkNumbering() {
    const PathGraph &PG = *Meta.PG;
    Topo = topoOrder();
    if (Topo.empty())
      return;

    // Recompute the number of Entry->Exit paths below every node.
    uint32_t NN = static_cast<uint32_t>(PG.numNodes());
    NumPaths.assign(NN, 0);
    for (size_t I = Topo.size(); I-- > 0;) {
      uint32_t N = Topo[I];
      if (N == PG.exitNode()) {
        NumPaths[N] = 1;
        continue;
      }
      if (PG.outEdges(N).empty()) {
        err("path-graph node " + nodeDesc(N) +
            " is a dead end (no route to Exit)");
        return;
      }
      uint64_t Sum = 0;
      for (uint32_t E : PG.outEdges(N))
        Sum += NumPaths[PG.edge(E).To];
      NumPaths[N] = Sum;
    }
    for (uint32_t N = 0; N < NN; ++N)
      if (NumPaths[N] != PG.numPathsFrom(N)) {
        err("stored path count at node " + nodeDesc(N) + " is " +
            std::to_string(PG.numPathsFrom(N)) +
            " but recounting the DAG gives " + std::to_string(NumPaths[N]));
        return;
      }

    // Canonical Vals must tile [0, NumPaths(node)) in out-edge order:
    // that is exactly what makes the id assignment a bijection (and what
    // decode() relies on to invert it).
    for (uint32_t N = 0; N < NN; ++N) {
      uint64_t Off = 0;
      for (uint32_t E : PG.outEdges(N)) {
        const PGEdge &Ed = PG.edge(E);
        if (Ed.Val != Off)
          errAtEdge(Ed, "edge " + nodeDesc(N) + " -> " + nodeDesc(Ed.To) +
                            " has Val " + std::to_string(Ed.Val) +
                            " where the canonical tiling requires " +
                            std::to_string(Off) +
                            "; path ids are not a bijection");
        Off += NumPaths[Ed.To];
      }
      if (N != PG.exitNode() && Off != NumPaths[N])
        err("out-edge Vals of node " + nodeDesc(N) + " cover " +
            std::to_string(Off) + " ids but the node has " +
            std::to_string(NumPaths[N]) + " paths");
    }
  }

  // --- increments: sum of Incs along every path == sum of Vals ------------

  void checkIncrements() {
    const PathGraph &PG = *Meta.PG;
    if (Topo.empty())
      return;
    // Propagate the per-node discrepancy D = (Inc-sum) - (Val-sum) from
    // Entry. If D is the same along every route to a node and D(Exit) == 0,
    // then every Entry->Exit path satisfies sum(Inc) == sum(Val) == path id.
    // Any single perturbed increment breaks this at the first join (Exit is
    // itself a join), so this catches seeded instrumenter bugs precisely.
    uint32_t NN = static_cast<uint32_t>(PG.numNodes());
    std::vector<__int128> D(NN, 0);
    std::vector<bool> Set(NN, false);
    Set[PG.entryNode()] = true;
    for (uint32_t N : Topo) {
      if (!Set[N])
        continue;
      for (uint32_t E : PG.outEdges(N)) {
        const PGEdge &Ed = PG.edge(E);
        __int128 Cand =
            D[N] + Ed.Inc - static_cast<__int128>(Ed.Val);
        if (!Set[Ed.To]) {
          Set[Ed.To] = true;
          D[Ed.To] = Cand;
        } else if (D[Ed.To] != Cand) {
          errAtEdge(Ed,
                    "increment of edge " + nodeDesc(N) + " -> " +
                        nodeDesc(Ed.To) + " (Inc " + std::to_string(Ed.Inc) +
                        ", Val " + std::to_string(Ed.Val) +
                        ") makes the path sum depend on the route taken; "
                        "path ids would be miscounted");
          return;
        }
      }
    }
    if (Set[PG.exitNode()] && D[PG.exitNode()] != 0) {
      err("chord increments do not telescope: every Entry->Exit path is "
          "off by " +
          std::to_string(static_cast<int64_t>(D[PG.exitNode()])) +
          " from its canonical id");
    }
  }

  // --- spanning tree: chords really are chords ----------------------------

  void checkSpanningTree() {
    const PathGraph &PG = *Meta.PG;
    bool AnyTree = false;
    for (uint32_t E = 0; E < PG.numEdges(); ++E)
      AnyTree |= PG.edge(E).TreeEdge;

    if (!AnyTree) {
      // Naive mode (or chord-overflow fallback): every edge carries its Val.
      for (uint32_t E = 0; E < PG.numEdges(); ++E) {
        const PGEdge &Ed = PG.edge(E);
        if (Ed.Inc != static_cast<int64_t>(Ed.Val))
          errAtEdge(Ed, "naive-mode edge carries Inc " +
                            std::to_string(Ed.Inc) + " instead of its Val " +
                            std::to_string(Ed.Val));
      }
      return;
    }

    uint32_t NN = static_cast<uint32_t>(PG.numNodes());
    UnionFind UF(NN);
    // The virtual Exit->Entry closing edge is always in the tree.
    UF.unite(PG.exitNode(), PG.entryNode());
    uint32_t TreeCount = 0;
    for (uint32_t E = 0; E < PG.numEdges(); ++E) {
      const PGEdge &Ed = PG.edge(E);
      if (!Ed.TreeEdge)
        continue;
      ++TreeCount;
      if (Ed.Inc != 0)
        errAtEdge(Ed, "spanning-tree edge " + nodeDesc(Ed.From) + " -> " +
                          nodeDesc(Ed.To) + " carries a nonzero increment " +
                          std::to_string(Ed.Inc));
      if (!UF.unite(Ed.From, Ed.To))
        errAtEdge(Ed, "spanning-tree edges contain a cycle through " +
                          nodeDesc(Ed.From) + " -> " + nodeDesc(Ed.To));
    }
    if (TreeCount != NN - 2) {
      err("spanning tree has " + std::to_string(TreeCount) +
          " edges; a tree over " + std::to_string(NN) +
          " nodes with the virtual closing edge needs " +
          std::to_string(NN - 2));
    }
    uint32_t Root = UF.find(PG.entryNode());
    for (uint32_t N = 0; N < NN; ++N)
      if (UF.find(N) != Root) {
        err("spanning tree does not reach path-graph node " + nodeDesc(N));
        return;
      }
  }

  // --- overlap regions: embedded OG == isolated region numbering ----------

  void checkLoopRegions() {
    const PathGraph &PG = *Meta.PG;
    const LoopInfo &LI = *Meta.Loops;
    for (uint32_t L = 0; L < LI.numLoops(); ++L) {
      if (!PG.hasRegion(L))
        continue;
      const OverlapRegion &R = PG.region(L);
      std::string Err;
      auto RN = RegionNumbering::build(R, Err);
      if (!RN) {
        err("loop " + std::to_string(L) +
            " region failed to renumber in isolation: " + Err);
        continue;
      }

      size_t OgCount = 0;
      for (uint32_t N = 0; N < PG.numNodes(); ++N)
        OgCount += PG.node(N).Region == ogRegion(L);
      if (OgCount != R.nodes().size()) {
        errAt(LI.loop(L).Header,
              "loop " + std::to_string(L) + " OG embeds " +
                  std::to_string(OgCount) + " nodes but its region has " +
                  std::to_string(R.nodes().size()));
        continue;
      }

      uint32_t Anchor = PG.ogNode(L, R.nodes()[0].Block);
      if (Anchor == UINT32_MAX) {
        errAt(R.nodes()[0].Block,
              "loop " + std::to_string(L) + " OG lacks its anchor node");
        continue;
      }
      if (PG.numPathsFrom(Anchor) != RN->numPaths())
        errAt(R.nodes()[0].Block,
              "loop " + std::to_string(L) + " OG counts " +
                  std::to_string(PG.numPathsFrom(Anchor)) +
                  " overlap paths but the isolated region numbering counts " +
                  std::to_string(RN->numPaths()));

      for (uint32_t NIdx = 0; NIdx < R.nodes().size(); ++NIdx) {
        const OverlapRegionNode &RNode = R.nodes()[NIdx];
        uint32_t Node = PG.ogNode(L, RNode.Block);
        if (Node == UINT32_MAX) {
          errAt(RNode.Block, "loop " + std::to_string(L) +
                                 " OG lacks a node for this region block");
          continue;
        }
        for (uint32_t EIdx : R.outEdges(NIdx)) {
          uint32_t ToBlock = R.nodes()[R.edges()[EIdx].To].Block;
          uint32_t PE = PG.realEdgeBetween(Node, PG.ogNode(L, ToBlock));
          if (PE == UINT32_MAX) {
            errAt(RNode.Block,
                  "loop " + std::to_string(L) + " OG lacks the region edge ^" +
                      std::to_string(RNode.Block) + " -> ^" +
                      std::to_string(ToBlock));
            continue;
          }
          if (PG.edge(PE).Val !=
              static_cast<uint64_t>(RN->edgeVal(EIdx)))
            errAt(RNode.Block,
                  "loop " + std::to_string(L) + " OG edge ^" +
                      std::to_string(RNode.Block) + " -> ^" +
                      std::to_string(ToBlock) + " has Val " +
                      std::to_string(PG.edge(PE).Val) +
                      " but the isolated region numbering assigns " +
                      std::to_string(RN->edgeVal(EIdx)));
        }
        uint32_t Dummy = PG.exitCountEdgeFrom(Node);
        if (RNode.needsDummy() != (Dummy != UINT32_MAX)) {
          errAt(RNode.Block,
                "loop " + std::to_string(L) + " OG node " +
                    (RNode.needsDummy() ? "needs a flush dummy but has none"
                                        : "has a flush dummy it should not"));
          continue;
        }
        if (Dummy != UINT32_MAX &&
            PG.edge(Dummy).Val !=
                static_cast<uint64_t>(RN->dummyVal(NIdx)))
          errAt(RNode.Block,
                "loop " + std::to_string(L) + " OG dummy of ^" +
                    std::to_string(RNode.Block) + " has Val " +
                    std::to_string(PG.edge(Dummy).Val) +
                    " but the isolated region numbering assigns " +
                    std::to_string(RN->dummyVal(NIdx)));
      }
    }
  }

  // --- interprocedural numberings revalidate from scratch -----------------

  void checkOneInterproc(const OverlapRegion &R, const RegionNumbering &Num,
                         const std::string &What) {
    std::string Err;
    auto Fresh = RegionNumbering::build(R, Err);
    if (!Fresh) {
      err(What + " region failed to renumber: " + Err);
      return;
    }
    if (Fresh->numPaths() != Num.numPaths()) {
      err(What + " numbering counts " + std::to_string(Num.numPaths()) +
          " paths but a fresh rebuild counts " +
          std::to_string(Fresh->numPaths()));
      return;
    }
    for (uint32_t E = 0; E < R.edges().size(); ++E)
      if (Fresh->edgeVal(E) != Num.edgeVal(E)) {
        errAt(R.nodes()[R.edges()[E].From].Block,
              What + " edge val " + std::to_string(Num.edgeVal(E)) +
                  " disagrees with a fresh rebuild (" +
                  std::to_string(Fresh->edgeVal(E)) + ")");
        return;
      }
    for (uint32_t N = 0; N < R.nodes().size(); ++N)
      if (R.nodes()[N].needsDummy() &&
          Fresh->dummyVal(N) != Num.dummyVal(N)) {
        errAt(R.nodes()[N].Block,
              What + " dummy val " + std::to_string(Num.dummyVal(N)) +
                  " disagrees with a fresh rebuild (" +
                  std::to_string(Fresh->dummyVal(N)) + ")");
        return;
      }
  }

  void checkInterprocNumberings() {
    if (Meta.TypeIRegion && Meta.TypeINumbering)
      checkOneInterproc(*Meta.TypeIRegion, *Meta.TypeINumbering, "Type I");
    else
      err("interprocedural mode but no Type I region metadata");
    for (const auto &Site : Meta.TypeII) {
      if (Site.Region && Site.Numbering)
        checkOneInterproc(*Site.Region, *Site.Numbering,
                          "Type II (call site " + std::to_string(Site.CsId) +
                              ")");
      else
        err("Type II call site " + std::to_string(Site.CsId) +
            " has no region metadata");
    }
  }

  // --- probes: the module contains exactly the planned programs -----------

  using OpKey = std::tuple<uint8_t, uint32_t, int64_t, int64_t>;
  static OpKey keyOf(const ProbeOp &Op) {
    return {static_cast<uint8_t>(Op.Kind), Op.Slot, Op.C0, Op.C1};
  }

  void checkProgramOrdering(const std::vector<ProbeOp> &Ops, uint32_t Block) {
    bool BLReset = false;
    std::vector<uint32_t> ArmedSlots;
    for (size_t I = 0; I < Ops.size(); ++I) {
      const ProbeOp &Op = Ops[I];
      bool Last = I + 1 == Ops.size();
      switch (Op.Kind) {
      case ProbeOpKind::BLSet:
        if (BLReset)
          errAt(Block, "probe resets the path register twice: " + opDesc(Op));
        BLReset = true;
        break;
      case ProbeOpKind::BLAdd:
      case ProbeOpKind::BLCount:
      case ProbeOpKind::OLArm:
      case ProbeOpKind::OLAdd:
      case ProbeOpKind::OLFlush:
      case ProbeOpKind::IPAddI:
      case ProbeOpKind::IPAddII:
      case ProbeOpKind::IPFlushI:
      case ProbeOpKind::IPFlushII:
      case ProbeOpKind::IPCall:
      case ProbeOpKind::IPRet:
        if (BLReset)
          errAt(Block,
                "probe op " + opDesc(Op) +
                    " runs after the path register was reset; it would "
                    "read or count the new path instead of the old one");
        break;
      default:
        break;
      }
      if (Op.Kind == ProbeOpKind::OLArm)
        ArmedSlots.push_back(Op.Slot);
      if (Op.Kind == ProbeOpKind::OLFlush)
        for (uint32_t S : ArmedSlots)
          if (S == Op.Slot)
            errAt(Block, "probe flushes overlap slot " +
                             std::to_string(Op.Slot) +
                             " after arming it; the just-armed path would "
                             "be dropped");
      if ((Op.Kind == ProbeOpKind::IPCall ||
           Op.Kind == ProbeOpKind::IPRet) &&
          !Last)
        errAt(Block, "probe op " + opDesc(Op) +
                         " must be the final op of its program");
    }
  }

  void checkProbes() {
    const PathGraph &PG = *Meta.PG;
    const CfgView &Cfg = *Meta.Cfg;
    const LoopInfo &LI = *Meta.Loops;
    if (!PG.numPaths())
      return;
    ProbePlan Plan = computeProbePlan(F, Meta, Opts, CallSites);
    uint32_t N = Cfg.numBlocks();

    // Backedge programs: count-or-arm the finished path, then reset.
    for (uint32_t B = 0; B < N; ++B) {
      if (!Cfg.isReachable(B))
        continue;
      for (uint32_t S : Cfg.succs(B)) {
        if (LI.loopForBackedge(B, S) == UINT32_MAX)
          continue;
        auto It = Plan.EdgeOps.find({B, S});
        if (It == Plan.EdgeOps.end() || It->second.empty()) {
          errAt(B, "backedge ^" + std::to_string(B) + " -> ^" +
                       std::to_string(S) + " has no probe program");
          continue;
        }
        const std::vector<ProbeOp> &Ops = It->second;
        if (Ops.back().Kind != ProbeOpKind::BLSet)
          errAt(B, "backedge program does not end by resetting the path "
                   "register");
        bool Ends = false;
        for (const ProbeOp &Op : Ops)
          Ends |= Op.Kind == ProbeOpKind::BLCount ||
                  Op.Kind == ProbeOpKind::OLArm;
        if (!Ends)
          errAt(B, "backedge program neither counts nor arms the path "
                   "ending at the backedge before resetting the register");
      }
    }

    // Expected-vs-actual op multiset, with a sample block per key so a
    // mismatch points at a concrete location.
    struct Tally {
      int64_t Count = 0;
      uint32_t Block = UINT32_MAX;
    };
    std::map<OpKey, Tally> Expected, Actual;
    auto Expect = [&](const std::vector<ProbeOp> &Ops, uint32_t Block) {
      for (const ProbeOp &Op : Ops) {
        Tally &T = Expected[keyOf(Op)];
        ++T.Count;
        if (T.Block == UINT32_MAX)
          T.Block = Block;
      }
    };
    Expect(Plan.FuncEntryOps, F.entry()->Id);
    for (const auto &[Key, Ops] : Plan.EdgeOps)
      Expect(Ops, Key.first);
    for (uint32_t B = 0; B < N; ++B) {
      Expect(Plan.BlockEntryOps[B], B);
      Expect(Plan.PreCallOps[B], B);
      Expect(Plan.PostCallOps[B], B);
      Expect(Plan.RetOps[B], B);
    }

    for (uint32_t B = 0; B < F.numBlocks(); ++B) {
      const BasicBlock *BB = F.block(B);
      for (const Instruction &I : BB->Instrs) {
        if (I.Op != Opcode::Probe || !I.ProbePayload)
          continue;
        checkProgramOrdering(I.ProbePayload->Ops, B);
        for (const ProbeOp &Op : I.ProbePayload->Ops) {
          Tally &T = Actual[keyOf(Op)];
          ++T.Count;
          if (T.Block == UINT32_MAX)
            T.Block = B;
        }
      }
    }

    for (const auto &[Key, Exp] : Expected) {
      ProbeOp Op{static_cast<ProbeOpKind>(std::get<0>(Key)),
                 std::get<1>(Key), std::get<2>(Key), std::get<3>(Key)};
      auto It = Actual.find(Key);
      int64_t Have = It == Actual.end() ? 0 : It->second.Count;
      if (Have < Exp.Count)
        errAt(Exp.Block, "instrumentation is missing " +
                             std::to_string(Exp.Count - Have) +
                             " occurrence(s) of planned probe op " +
                             opDesc(Op));
      else if (Have > Exp.Count)
        errAt(It->second.Block,
              "instrumentation carries " + std::to_string(Have - Exp.Count) +
                  " more occurrence(s) of probe op " + opDesc(Op) +
                  " than the plan calls for");
    }
    for (const auto &[Key, Act] : Actual) {
      if (Expected.count(Key))
        continue;
      ProbeOp Op{static_cast<ProbeOpKind>(std::get<0>(Key)),
                 std::get<1>(Key), std::get<2>(Key), std::get<3>(Key)};
      errAt(Act.Block,
            "unexpected probe op " + opDesc(Op) + " not in the plan");
    }

    checkPlacement(Plan);
  }

  void checkPlacement(const ProbePlan &Plan) {
    const CfgView &Cfg = *Meta.Cfg;
    uint32_t N = Cfg.numBlocks();

    // Function entry: the very first executed op must be the entry BLSet.
    const BasicBlock *Entry = F.entry();
    if (Entry->Instrs.empty() || Entry->Instrs[0].Op != Opcode::Probe ||
        !Entry->Instrs[0].ProbePayload ||
        Entry->Instrs[0].ProbePayload->Ops.empty() ||
        Entry->Instrs[0].ProbePayload->Ops[0].Kind != ProbeOpKind::BLSet)
      errAt(Entry->Id,
            "function entry does not begin with the path-register BLSet");

    for (uint32_t B = 0; B < N; ++B) {
      if (!Cfg.isReachable(B))
        continue;
      const BasicBlock *BB = F.block(B);
      for (size_t Idx = 0; Idx < BB->Instrs.size(); ++Idx) {
        const Instruction &I = BB->Instrs[Idx];
        if (I.Op == Opcode::Ret && !Plan.RetOps[B].empty()) {
          bool Ok = Idx > 0 && BB->Instrs[Idx - 1].Op == Opcode::Probe &&
                    BB->Instrs[Idx - 1].ProbePayload &&
                    opsEqual(BB->Instrs[Idx - 1].ProbePayload->Ops,
                             Plan.RetOps[B]);
          if (!Ok)
            errAt(B, "ret is not immediately preceded by its planned "
                     "count/flush probe");
        }
        if (I.Op == Opcode::Call || I.Op == Opcode::CallInd) {
          if (!Plan.PreCallOps[B].empty()) {
            bool Ok = Idx > 0 && BB->Instrs[Idx - 1].Op == Opcode::Probe &&
                      BB->Instrs[Idx - 1].ProbePayload &&
                      opsEqual(BB->Instrs[Idx - 1].ProbePayload->Ops,
                               Plan.PreCallOps[B]);
            if (!Ok)
              errAt(B, "call is not immediately preceded by its planned "
                       "pre-call probe");
          }
          if (!Plan.PostCallOps[B].empty()) {
            bool Ok = Idx + 1 < BB->Instrs.size() &&
                      BB->Instrs[Idx + 1].Op == Opcode::Probe &&
                      BB->Instrs[Idx + 1].ProbePayload &&
                      opsEqual(BB->Instrs[Idx + 1].ProbePayload->Ops,
                               Plan.PostCallOps[B]);
            if (!Ok)
              errAt(B, "call is not immediately followed by its planned "
                       "post-call probe");
          }
        }
      }
    }
  }

  const Module &M;
  const Function &F;
  const FunctionInstrumentation &Meta;
  const InstrumentOptions &Opts;
  const std::vector<CallSiteInfo> &CallSites;
  std::vector<Diagnostic> &Diags;

  std::vector<uint32_t> Topo;
  std::vector<uint64_t> NumPaths;
};

} // namespace

void olpp::checkFunctionInstrumentation(
    const Module &M, const Function &F, const FunctionInstrumentation &Meta,
    const InstrumentOptions &Opts, const std::vector<CallSiteInfo> &CallSites,
    std::vector<Diagnostic> &Diags) {
  InstrChecker(M, F, Meta, Opts, CallSites, Diags).run();
}

std::vector<Diagnostic>
olpp::checkInstrumentation(const Module &M, const ModuleInstrumentation &MI) {
  std::vector<Diagnostic> Diags;
  for (uint32_t FId = 0; FId < M.numFunctions() && FId < MI.Funcs.size();
       ++FId) {
    const FunctionInstrumentation &Meta = MI.Funcs[FId];
    if (!Meta.PG)
      continue; // instrumentation failed; MI.Errors already says why
    checkFunctionInstrumentation(M, *M.function(FId), Meta, MI.Opts,
                                 MI.CallSites, Diags);
  }
  return Diags;
}
