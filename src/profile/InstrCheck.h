//===--- InstrCheck.h - Instrumentation invariant checker -------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Audits an instrumented module against its decode metadata. The checks
/// re-derive the path-profiling invariants from scratch rather than trusting
/// the builders, so a bug in the numbering or the probe insertion surfaces
/// as a structured diagnostic (pass "instr-check") instead of silently
/// corrupt profiles:
///
///   numbering    the Ball-Larus id assignment is a bijection between
///                Entry->Exit paths and [0, numPaths): independently
///                recomputed path counts, canonical Val interval tiling at
///                every node, and telescoping of the chord increments (the
///                sum of Incs along *every* path equals the sum of Vals)
///   tree         chord mode really placed increments off a spanning tree:
///                tree edges carry Inc 0 and form a spanning tree of the
///                path graph closed by the virtual Exit->Entry edge
///   regions      loop overlapping graphs embedded in the path graph agree
///                edge-for-edge with an isolated RegionNumbering of the
///                same region; interprocedural Type I / Type II numberings
///                revalidate against a fresh rebuild
///   probes       the probes present in the module are exactly the ones the
///                probe plan calls for (multiset comparison with per-block
///                attribution), every backedge program counts-or-arms and
///                then resets the path register, per-program op ordering is
///                legal, and call/return/entry probes sit where the
///                placement rules put them
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_PROFILE_INSTRCHECK_H
#define OLPP_PROFILE_INSTRCHECK_H

#include "profile/Instrumenter.h"
#include "support/Diagnostic.h"

#include <vector>

namespace olpp {

class Module;
class Function;

/// Audits one instrumented function against its metadata. \p F must be the
/// instrumented function and \p Meta its entry in the ModuleInstrumentation
/// produced alongside it. Appends findings (severity error) to \p Diags.
void checkFunctionInstrumentation(const Module &M, const Function &F,
                                  const FunctionInstrumentation &Meta,
                                  const InstrumentOptions &Opts,
                                  const std::vector<CallSiteInfo> &CallSites,
                                  std::vector<Diagnostic> &Diags);

/// Audits every function of the instrumented module \p M against \p MI
/// (the result of instrumentModule on it). Returns the findings; empty
/// means every invariant holds.
std::vector<Diagnostic> checkInstrumentation(const Module &M,
                                             const ModuleInstrumentation &MI);

} // namespace olpp

#endif // OLPP_PROFILE_INSTRCHECK_H
