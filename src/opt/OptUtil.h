//===--- OptUtil.h - Shared transform helpers (internal) --------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small CFG helpers shared by the inliner and the superblock former. Both
/// transforms follow the same discipline: append blocks, edit in place,
/// and leave merged-away blocks behind as unreachable `ret` husks so that
/// pre-existing block ids stay valid until the final unreachable sweep.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_OPT_OPTUTIL_H
#define OLPP_OPT_OPTUTIL_H

#include "ir/Module.h"

#include <vector>

namespace olpp {
namespace opt_detail {

inline Instruction makeBr(BasicBlock *Target) {
  Instruction I;
  I.Op = Opcode::Br;
  I.Target0 = Target;
  return I;
}

inline bool hasCall(const BasicBlock &BB) {
  for (const Instruction &I : BB.Instrs)
    if (I.Op == Opcode::Call || I.Op == Opcode::CallInd)
      return true;
  return false;
}

/// Number of predecessor edges of each block, indexed by block id.
inline std::vector<uint32_t> predCounts(const Function &F) {
  std::vector<uint32_t> Preds(F.numBlocks(), 0);
  for (const auto &BB : F.blocks())
    for (const BasicBlock *S : BB->successors())
      ++Preds[S->Id];
  return Preds;
}

/// Splices \p Succ's instructions onto \p Pred (whose terminator must be an
/// unconditional branch to \p Succ), leaving \p Succ as an unreachable
/// `ret` husk. Caller guarantees \p Succ has exactly one predecessor and
/// \p Pred holds no call.
inline void spliceInto(BasicBlock *Pred, BasicBlock *Succ) {
  Pred->Instrs.pop_back(); // the Br
  Pred->Instrs.insert(Pred->Instrs.end(), Succ->Instrs.begin(),
                      Succ->Instrs.end());
  Instruction Husk;
  Husk.Op = Opcode::Ret;
  Succ->Instrs = {Husk};
}

} // namespace opt_detail
} // namespace olpp

#endif // OLPP_OPT_OPTUTIL_H
