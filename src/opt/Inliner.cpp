//===--- Inliner.cpp - Demand-driven call-site inlining --------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Inlines the unique call of one caller block. The IR's "a call must end
// its block" invariant does the heavy lifting: the block id alone names the
// call site, and the continuation is exactly the block's terminator.
//
// The transform only appends blocks and edits the call block in place, so
// every pre-existing block id stays valid — later inline or superblock
// decisions expressed in pristine ids still land on the right blocks.
// Blocks emptied by seam merging are left behind as unreachable `ret`
// husks (still verifiable) and swept by removeUnreachableBlocks at the end
// of the pipeline.
//
//===----------------------------------------------------------------------===//

#include "opt/Optimizer.h"
#include "opt/OptUtil.h"

#include "analysis/Cfg.h"
#include "ir/Module.h"

#include <unordered_map>

using namespace olpp;
using namespace olpp::opt_detail;

namespace {

/// Hard cap on a caller frame after inlining; a frame this wide signals a
/// pathological inlining chain, not a profitable one.
constexpr uint32_t MaxCallerRegs = 4096;

/// Registers of \p F that can be read before any write on some path from
/// entry — i.e. live-in at entry. The interpreter zero-initialises a fresh
/// frame, so an inlined body re-entered from a loop must have exactly these
/// registers re-zeroed at the seam to keep observable behaviour identical.
std::vector<Reg> liveInAtEntry(const Function &F) {
  const size_t N = F.numBlocks();
  // Per-block use (read before any local write) / def (written) sets, as
  // bitsets over the function's registers.
  const size_t R = F.NumRegs;
  std::vector<std::vector<bool>> Use(N, std::vector<bool>(R, false));
  std::vector<std::vector<bool>> Def(N, std::vector<bool>(R, false));
  for (size_t B = 0; B < N; ++B) {
    for (const Instruction &I : F.block(static_cast<uint32_t>(B))->Instrs) {
      auto Read = [&](Reg Src) {
        if (Src != NoReg && Src < R && !Def[B][Src])
          Use[B][Src] = true;
      };
      if (I.Op != Opcode::Const)
        Read(I.Src0);
      Read(I.Src1);
      for (Reg A : I.Args)
        Read(A);
      if (I.Dst != NoReg && I.Dst < R)
        Def[B][I.Dst] = true;
    }
  }
  // Backwards liveness to a fixed point.
  std::vector<std::vector<bool>> LiveIn(N, std::vector<bool>(R, false));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t B = N; B-- > 0;) {
      std::vector<bool> Out(R, false);
      for (const BasicBlock *S : F.block(static_cast<uint32_t>(B))->successors())
        for (size_t I = 0; I < R; ++I)
          if (LiveIn[S->Id][I])
            Out[I] = true;
      for (size_t I = 0; I < R; ++I) {
        bool In = Use[B][I] || (Out[I] && !Def[B][I]);
        if (In && !LiveIn[B][I]) {
          LiveIn[B][I] = true;
          Changed = true;
        }
      }
    }
  }
  std::vector<Reg> Out;
  for (size_t I = 0; I < R; ++I)
    if (LiveIn[0][I])
      Out.push_back(static_cast<Reg>(I));
  return Out;
}

Instruction makeMove(Reg Dst, Reg Src) {
  Instruction I;
  I.Op = Opcode::Move;
  I.Dst = Dst;
  I.Src0 = Src;
  return I;
}

Instruction makeConstZero(Reg Dst) {
  Instruction I;
  I.Op = Opcode::Const;
  I.Dst = Dst;
  I.Imm = 0;
  return I;
}

} // namespace

bool olpp::inlineCallSite(Module &M, Function &Caller, uint32_t BlockId,
                          uint32_t MaxCalleeInstrs, OptFault Fault,
                          std::string &SkipReason) {
  if (BlockId >= Caller.numBlocks()) {
    SkipReason = "call block id out of range";
    return false;
  }
  BasicBlock *B = Caller.block(BlockId);
  size_t CallIdx = SIZE_MAX;
  for (size_t I = 0; I < B->Instrs.size(); ++I) {
    Opcode Op = B->Instrs[I].Op;
    if (Op == Opcode::CallInd) {
      SkipReason = "indirect call";
      return false;
    }
    if (Op == Opcode::Call) {
      CallIdx = I;
      break;
    }
  }
  if (CallIdx == SIZE_MAX) {
    SkipReason = "block no longer holds a call";
    return false;
  }
  const Instruction Call = B->Instrs[CallIdx];
  Function *G = M.function(Call.CalleeId);
  if (G == &Caller) {
    SkipReason = "recursive call site";
    return false;
  }

  // The frontend pads every function with an unreachable catch-all `ret`
  // (void); only returns that can actually execute matter for the void-
  // result trap below.
  const CfgView GCfg = CfgView::build(*G);
  size_t CalleeInstrs = 0;
  bool CalleeHasVoidRet = false;
  for (const auto &GB : G->blocks()) {
    CalleeInstrs += GB->Instrs.size();
    for (const Instruction &I : GB->Instrs) {
      if (I.Op == Opcode::Probe) {
        SkipReason = "callee is instrumented";
        return false;
      }
      if (I.Op == Opcode::Ret && I.Src0 == NoReg && GCfg.isReachable(GB->Id))
        CalleeHasVoidRet = true;
    }
  }
  if (CalleeInstrs > MaxCalleeInstrs) {
    SkipReason = "callee exceeds the inline size cap";
    return false;
  }
  // A void return consumed by the caller is a runtime trap
  // ("void return value used by the caller"); inlining would erase it.
  if (Call.Dst != NoReg && CalleeHasVoidRet) {
    SkipReason = "callee may return void into a used result";
    return false;
  }
  if (Caller.NumRegs > MaxCallerRegs ||
      MaxCallerRegs - Caller.NumRegs < G->NumRegs) {
    SkipReason = "caller register frame would exceed the pressure cap";
    return false;
  }

  // ---- point of no return: everything below only appends and rewires ----

  // The inlined body's register window.
  const Reg R0 = Caller.NumRegs;
  Caller.NumRegs += G->NumRegs;
  auto Remap = [R0](Reg R) { return R == NoReg ? NoReg : R + R0; };

  // Registers the callee may read before writing: these saw a zeroed frame
  // on every activation and must be re-zeroed at the seam (the window keeps
  // stale values when the call block sits in a loop).
  const std::vector<Reg> NeedZero = liveInAtEntry(*G);

  // Continuation: B's terminator (nothing else can follow a call) moves to
  // a fresh block the cloned returns branch to.
  BasicBlock *K = Caller.addBlock(B->Name + ".icont");
  K->Instrs.assign(B->Instrs.begin() + CallIdx + 1, B->Instrs.end());
  B->Instrs.resize(CallIdx);

  // Clone the callee body with remapped registers; returns become moves of
  // the return value into the call's Dst plus a branch to the continuation.
  std::unordered_map<const BasicBlock *, BasicBlock *> CloneMap;
  for (const auto &GB : G->blocks())
    CloneMap[GB.get()] =
        Caller.addBlock(G->Name + "." + GB->Name + ".inl");
  for (const auto &GB : G->blocks()) {
    BasicBlock *C = CloneMap[GB.get()];
    for (const Instruction &I : GB->Instrs) {
      if (I.Op == Opcode::Ret) {
        const bool NeedMove = I.Src0 != NoReg && Call.Dst != NoReg &&
                              Fault != OptFault::MisinlineCallee;
        if (NeedMove && hasCall(*C)) {
          // `[call, ret v]` blocks are legal; the return-value move cannot
          // follow the cloned call in the same block, so it gets a stub.
          BasicBlock *Stub = Caller.addBlock(C->Name + ".rv");
          Stub->Instrs.push_back(makeMove(Call.Dst, Remap(I.Src0)));
          Stub->Instrs.push_back(makeBr(K));
          C->Instrs.push_back(makeBr(Stub));
          continue;
        }
        if (NeedMove)
          C->Instrs.push_back(makeMove(Call.Dst, Remap(I.Src0)));
        C->Instrs.push_back(makeBr(K));
        continue;
      }
      Instruction N = I;
      N.Dst = Remap(N.Dst);
      if (N.Op != Opcode::Const)
        N.Src0 = Remap(N.Src0);
      N.Src1 = Remap(N.Src1);
      for (Reg &A : N.Args)
        A = Remap(A);
      if (N.Target0)
        N.Target0 = CloneMap.at(N.Target0);
      if (N.Target1)
        N.Target1 = CloneMap.at(N.Target1);
      C->Instrs.push_back(N);
    }
  }

  // Rewire the call block: argument moves into the window, re-zero the
  // may-read-before-write registers, fall into the cloned entry.
  BasicBlock *EntryClone = CloneMap.at(G->entry());
  for (uint32_t P = 0; P < G->NumParams; ++P)
    B->Instrs.push_back(makeMove(R0 + P, Call.Args[P]));
  for (Reg Z : NeedZero)
    if (Z >= G->NumParams) // params are freshly moved, never stale
      B->Instrs.push_back(makeConstZero(R0 + Z));
  B->Instrs.push_back(makeBr(EntryClone));

  // Seam merging: recover straight-line shape where the clone left
  // single-entry chains. Ids stay valid — husks are swept later.
  std::vector<uint32_t> Preds = predCounts(Caller);
  if (Preds[EntryClone->Id] == 1 && !hasCall(*B)) {
    spliceInto(B, EntryClone);
    Preds = predCounts(Caller);
  }
  // The continuation has one pred exactly when the callee had one return.
  if (Preds[K->Id] == 1) {
    for (const auto &BB : Caller.blocks()) {
      if (BB->Instrs.empty() || !BB->hasTerminator())
        continue;
      const Instruction &T = BB->terminator();
      if (T.Op == Opcode::Br && T.Target0 == K && !hasCall(*BB)) {
        spliceInto(BB.get(), K);
        break;
      }
    }
  }
  return true;
}
