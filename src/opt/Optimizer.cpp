//===--- Optimizer.cpp - Artifact-driven optimization pipeline -------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "opt/Optimizer.h"

#include "ir/Module.h"
#include "ir/Verifier.h"
#include "profile/ProfileDecode.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace olpp;

//===----------------------------------------------------------------------===//
// Ranking
//===----------------------------------------------------------------------===//

std::vector<InlineDecision>
olpp::rankInlineCandidates(const ProfileArtifact &A,
                           const ModuleInstrumentation &MI,
                           const OptOptions &Opts) {
  // Heat per module-wide call-site id. Type I counts the callee prefixes
  // entered through the site, Type II the continuations resumed behind it,
  // and call-break path endings cover artifacts collected without the
  // interprocedural tables; the three overlap, which is fine for a ranking
  // signal (the ordering is what matters, not the absolute number).
  std::unordered_map<uint32_t, uint64_t> Heat;
  for (const auto &[K, C] : A.Counters.TypeICounts.toMap())
    Heat[K.CallSite] += C;
  for (const auto &[K, C] : A.Counters.TypeIICounts.toMap())
    Heat[K.CallSite] += C;

  std::map<std::pair<uint32_t, uint32_t>, uint32_t> SiteAt;
  for (const CallSiteInfo &CS : MI.CallSites)
    SiteAt[{CS.Func, CS.Block}] = CS.CsId;
  const size_t NumF = std::min(MI.Funcs.size(), A.Counters.PathCounts.size());
  for (uint32_t F = 0; F < NumF; ++F) {
    if (!MI.Funcs[F].PG)
      continue;
    for (const DecodedEntry &E :
         decodeProfile(*MI.Funcs[F].PG, A.Counters.PathCounts[F])) {
      // A call-break path's last white block is the call block.
      if (E.End != PathEnd::CallBreak || E.White.Blocks.empty())
        continue;
      auto It = SiteAt.find({F, E.White.Blocks.back()});
      if (It != SiteAt.end())
        Heat[It->second] += E.Count;
    }
  }

  std::vector<InlineDecision> Out;
  for (const auto &[CsId, H] : Heat) {
    if (H < Opts.MinCount || CsId >= MI.CallSites.size())
      continue;
    const CallSiteInfo &CS = MI.CallSites[CsId];
    InlineDecision D;
    D.Caller = CS.Func;
    D.Block = CS.Block;
    D.Callee = CS.Callee;
    D.Heat = H;
    Out.push_back(std::move(D));
  }
  std::sort(Out.begin(), Out.end(),
            [](const InlineDecision &X, const InlineDecision &Y) {
              if (X.Heat != Y.Heat)
                return X.Heat > Y.Heat;
              if (X.Caller != Y.Caller)
                return X.Caller < Y.Caller;
              return X.Block < Y.Block;
            });
  return Out;
}

std::vector<SuperblockDecision>
olpp::rankSuperblockCandidates(const ProfileArtifact &A,
                               const ModuleInstrumentation &MI,
                               const OptOptions &Opts) {
  // Distinct overlapping paths (different white prefixes) share one next-
  // iteration suffix; the suffix is the superblock trace, so their counts
  // aggregate.
  std::map<std::pair<uint32_t, std::vector<uint32_t>>, uint64_t> Agg;
  const size_t NumF = std::min(MI.Funcs.size(), A.Counters.PathCounts.size());
  for (uint32_t F = 0; F < NumF; ++F) {
    if (!MI.Funcs[F].PG)
      continue;
    for (const DecodedEntry &E :
         decodeProfile(*MI.Funcs[F].PG, A.Counters.PathCounts[F]))
      if (E.End == PathEnd::Backedge && E.Suffix.size() >= 2)
        Agg[{F, E.Suffix}] += E.Count;
  }
  std::vector<SuperblockDecision> Out;
  for (const auto &[Key, C] : Agg) {
    if (C < Opts.MinCount)
      continue;
    SuperblockDecision D;
    D.Func = Key.first;
    D.Trace = Key.second;
    D.Count = C;
    Out.push_back(std::move(D));
  }
  std::sort(Out.begin(), Out.end(),
            [](const SuperblockDecision &X, const SuperblockDecision &Y) {
              if (X.Count != Y.Count)
                return X.Count > Y.Count;
              if (X.Func != Y.Func)
                return X.Func < Y.Func;
              return X.Trace < Y.Trace;
            });
  return Out;
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

bool olpp::optimizeModule(const Module &Pristine, const ProfileArtifact &A,
                          const OptOptions &Opts, OptResult &Out,
                          std::vector<Diagnostic> &Diags) {
  Out = OptResult();

  // Fingerprint-checked rebind: counters may only drive transforms on the
  // exact module they were collected from.
  ArtifactBinding B;
  if (!bindArtifactToModule(Pristine, A, B, Diags))
    return false;

  std::unique_ptr<Module> OM = Pristine.clone();

  // Inlining first: it only appends blocks and edits call blocks in place,
  // so the pristine block ids every later decision speaks in stay valid.
  Out.Inlines = rankInlineCandidates(A, B.MI, Opts);
  for (InlineDecision &D : Out.Inlines) {
    if (Out.Stats.InlinedSites >= Opts.MaxInlineSites) {
      D.SkipReason = "over the inline budget";
      continue;
    }
    if (inlineCallSite(*OM, *OM->function(D.Caller), D.Block,
                       Opts.MaxCalleeInstrs, Opts.Fault, D.SkipReason)) {
      D.Applied = true;
      ++Out.Stats.InlinedSites;
    }
  }

  // Superblocks second. Each trace is re-validated against the live CFG
  // inside formSuperblock, so traces invalidated by inlining (or by a
  // hotter superblock in the same loop) skip rather than misapply.
  Out.Superblocks = rankSuperblockCandidates(A, B.MI, Opts);
  for (SuperblockDecision &D : Out.Superblocks) {
    if (Out.Stats.Superblocks >= Opts.MaxSuperblocks) {
      D.SkipReason = "over the superblock budget";
      continue;
    }
    if (formSuperblock(*OM->function(D.Func), D.Trace, D.DuplicatedBlocks,
                       D.MergedBlocks, D.SkipReason)) {
      D.Applied = true;
      ++Out.Stats.Superblocks;
      Out.Stats.DuplicatedBlocks += D.DuplicatedBlocks;
      Out.Stats.MergedBlocks += D.MergedBlocks;
    }
  }

  // Sweep the husks the seam merging left behind, then prove the result
  // well-formed. A verifier finding here is a transform bug; the module is
  // rejected wholesale, never returned half-optimized.
  for (const auto &F : OM->functions())
    Out.Stats.RemovedBlocks +=
        static_cast<uint32_t>(F->removeUnreachableBlocks());
  std::vector<Diagnostic> VDiags = verifyModuleDiags(*OM);
  if (!VDiags.empty()) {
    Diags.push_back(makeDiag(
        Severity::Error, "opt", "",
        "optimized module failed verification; transforms rejected"));
    Diags.insert(Diags.end(), VDiags.begin(), VDiags.end());
    return false;
  }
  Out.OptModule = std::move(OM);
  return true;
}

//===----------------------------------------------------------------------===//
// Trace-tier seeding
//===----------------------------------------------------------------------===//

std::vector<HotPathSeed>
olpp::collectHotLoopPaths(const ProfileArtifact &A,
                          const ModuleInstrumentation &MI, uint64_t MinCount,
                          size_t MaxSeeds) {
  std::vector<HotPathSeed> Out;
  const size_t NumF = std::min(MI.Funcs.size(), A.Counters.PathCounts.size());
  for (uint32_t F = 0; F < NumF; ++F) {
    if (!MI.Funcs[F].PG)
      continue;
    for (const DecodedEntry &E :
         decodeProfile(*MI.Funcs[F].PG, A.Counters.PathCounts[F])) {
      // Only overlapping (suffix-carrying) backedge paths: their ids live
      // in the id space the interpreter feeds to noteHot. Plain-BL backedge
      // ids do not, and seeding them would heat the wrong table entries.
      if (E.End != PathEnd::Backedge || E.Suffix.empty() || E.Count < MinCount)
        continue;
      Out.push_back({F, E.Id, E.Count});
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const HotPathSeed &X, const HotPathSeed &Y) {
              if (X.Count != Y.Count)
                return X.Count > Y.Count;
              if (X.Func != Y.Func)
                return X.Func < Y.Func;
              return X.Id < Y.Id;
            });
  if (Out.size() > MaxSeeds)
    Out.resize(MaxSeeds);
  return Out;
}

void olpp::seedTraceTier(ProfileRuntime &Prof,
                         const std::vector<HotPathSeed> &Seeds) {
  for (const HotPathSeed &S : Seeds)
    Prof.Tier.seed(S.Func, S.Id,
                   static_cast<uint32_t>(
                       std::min<uint64_t>(S.Count, UINT32_MAX)));
}
