//===--- Superblock.cpp - Superblocks across loop backedges ----------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Turns a hot backedge-crossing trace — the OG suffix of an overlapping
// loop path, i.e. the concrete block sequence the profiled loop took on its
// next iteration — into a superblock:
//
//   1. Side-entered tail blocks are tail-duplicated. The *original* blocks
//      keep the hot path (so the loop header remains the only block
//      backedges target and the CFG stays reducible); every side entrance
//      is redirected into an appended clone whose trace-successor edges are
//      remapped clone-to-clone, while its side exits and backedges keep
//      pointing at the originals.
//
//   2. The now single-entry trace chain is merged into straight-line runs,
//      which is what the fast engine's plan builder fuses into
//      superinstructions and the trace tier records without guard exits.
//
// Correctness does not depend on the profile being fresh: every trace edge
// is re-validated against the live CFG before anything is touched, and
// duplication plus single-pred merging preserve semantics for any input.
// A stale or adversarial trace can only cost code size, never behaviour.
//
//===----------------------------------------------------------------------===//

#include "opt/Optimizer.h"
#include "opt/OptUtil.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Module.h"

#include <unordered_set>

using namespace olpp;
using namespace olpp::opt_detail;

bool olpp::formSuperblock(Function &F, const std::vector<uint32_t> &Trace,
                          uint32_t &DuplicatedBlocks, uint32_t &MergedBlocks,
                          std::string &SkipReason) {
  DuplicatedBlocks = 0;
  MergedBlocks = 0;
  if (Trace.size() < 2) {
    SkipReason = "trace shorter than two blocks";
    return false;
  }
  std::unordered_set<uint32_t> Seen;
  for (uint32_t Id : Trace) {
    if (Id >= F.numBlocks()) {
      SkipReason = "trace block id out of range";
      return false;
    }
    if (!Seen.insert(Id).second) {
      SkipReason = "trace revisits a block";
      return false;
    }
  }
  // Every consecutive pair must still be a live CFG edge; inlining or an
  // earlier superblock may have rewired the region since the profile ran.
  for (size_t I = 1; I < Trace.size(); ++I) {
    const BasicBlock *Prev = F.block(Trace[I - 1]);
    bool Live = false;
    for (const BasicBlock *S : Prev->successors())
      if (S->Id == Trace[I])
        Live = true;
    if (!Live) {
      SkipReason = "trace edge no longer in the CFG";
      return false;
    }
  }
  for (uint32_t Id : Trace)
    for (const Instruction &I : F.block(Id)->Instrs)
      if (I.Op == Opcode::Probe) {
        SkipReason = "trace crosses instrumented code";
        return false;
      }

  // Duplicating a loop header splits its loop into two entries — an
  // irreducible CFG the instrumenter (rightly) refuses. A trace that runs
  // through an inner loop's header therefore stays un-duplicated: only
  // tails of plain body blocks are eligible.
  {
    const CfgView Cfg = CfgView::build(F);
    const DomTree Dom = DomTree::compute(Cfg);
    const LoopInfo Loops = LoopInfo::compute(Cfg, Dom);
    if (Loops.isIrreducible()) {
      SkipReason = "function is irreducible";
      return false;
    }
    for (size_t I = 1; I < Trace.size(); ++I)
      for (const Loop &L : Loops.loops())
        if (L.Header == Trace[I]) {
          SkipReason = "trace tail crosses an inner loop header";
          return false;
        }
  }

  // Predecessor lists over the pre-transform CFG: for each tail block, the
  // side entrances that must be peeled off onto a clone.
  const size_t K = Trace.size();
  std::vector<std::vector<BasicBlock *>> SidePreds(K);
  bool AnySide = false;
  for (const auto &BB : F.blocks())
    for (BasicBlock *S : BB->successors())
      for (size_t I = 1; I < K; ++I)
        if (S->Id == Trace[I] && BB->Id != Trace[I - 1]) {
          SidePreds[I].push_back(BB.get());
          AnySide = true;
        }

  std::vector<BasicBlock *> Clones(K, nullptr);
  if (AnySide) {
    // Clone the whole tail so a side entrance at depth i still executes the
    // original tail i..k; only the trace-successor edges are remapped into
    // the clone chain — side exits and the backedge return to originals.
    for (size_t I = 1; I < K; ++I) {
      BasicBlock *Orig = F.block(Trace[I]);
      BasicBlock *C = F.addBlock(Orig->Name + ".sb");
      C->Instrs = Orig->Instrs;
      Clones[I] = C;
      ++DuplicatedBlocks;
    }
    for (size_t I = 1; I + 1 < K; ++I)
      Clones[I]->replaceSuccessor(F.block(Trace[I + 1]), Clones[I + 1]);
    for (size_t I = 1; I < K; ++I)
      for (BasicBlock *P : SidePreds[I])
        P->replaceSuccessor(F.block(Trace[I]), Clones[I]);
  }

  // Merge the hot chain into straight-line runs. `Cur` accumulates; a tail
  // block folds in when it became single-entry and `Cur` reaches it by an
  // unconditional branch (and holds no call, which must stay block-final).
  std::vector<uint32_t> Preds = predCounts(F);
  BasicBlock *Cur = F.block(Trace[0]);
  for (size_t I = 1; I < K; ++I) {
    BasicBlock *T = F.block(Trace[I]);
    const Instruction &Term = Cur->terminator();
    if (Preds[T->Id] == 1 && Term.Op == Opcode::Br && Term.Target0 == T &&
        !hasCall(*Cur)) {
      spliceInto(Cur, T);
      ++MergedBlocks;
    } else {
      Cur = T;
    }
  }

  if (DuplicatedBlocks == 0 && MergedBlocks == 0) {
    SkipReason = "trace is already a superblock";
    return false;
  }
  return true;
}
