//===--- Optimizer.h - Artifact-driven IR optimization ----------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile->optimize half of the loop: consumes a merged `.olpp`
/// artifact and rewrites the *pristine* module it was collected from. Two
/// transformations, both driven by counters only overlapping path profiles
/// provide (the reason the paper extends profiling across backedges and
/// procedure boundaries in the first place):
///
///   - Demand-driven inlining. Hot Type I / Type II interprocedural path
///     counts (plus call-break path endings) are aggregated per call site;
///     the hottest sites get their callee cloned into the caller with
///     argument/return rewiring, a fresh register window, and straight-line
///     merging of the seams, so the residual cost is a handful of register
///     moves instead of a frame push, argument copy and frame pop.
///
///   - Superblock formation across backedges. Hot `i!j` loop-interesting
///     paths carry the concrete block trace of the next iteration (the OG
///     suffix); the hot trace is kept on the ORIGINAL blocks (so the loop
///     header stays the single entry and the CFG stays reducible) while
///     side entrances are redirected into appended tail-duplicate clones,
///     and the now single-entry trace chain is merged into straight-line
///     runs the plan builder can fuse into superinstructions.
///
/// Every transform is semantics-preserving by construction and the result
/// is still a *pristine-shaped* module: no probes are inserted or assumed,
/// so the optimized module re-instruments cleanly (Verifier + InstrCheck
/// must both pass on it — `olpp opt` enforces this) and can be profiled
/// again for the next iteration of the loop.
///
/// The third consumer of the artifact lives here too: collectHotLoopPaths /
/// seedTraceTier pre-heat the execution tier's hotness table
/// (ProfileRuntime::TraceTierState) from the persisted counters, so
/// `olpp run` / `olpp bench` given `--profile` arm trace recording on the
/// first live completion instead of re-measuring heat over a warmup run.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_OPT_OPTIMIZER_H
#define OLPP_OPT_OPTIMIZER_H

#include "profdata/Report.h"
#include "support/Diagnostic.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace olpp {

class Module;
class Function;

/// Deliberate-defect switch for the fuzz harness's mutation oracle
/// (FaultKind::MisinlineCallee): proves a mis-inlined callee is caught by
/// the optimized-vs-reference differential, never set by real tools.
enum class OptFault : uint8_t {
  None,
  MisinlineCallee, ///< drop the return-value move of every inlined callee
};

struct OptOptions {
  /// Most-profitable call sites inlined, in heat order.
  uint32_t MaxInlineSites = 8;
  /// Callee instruction-count cap; bigger callees are never inlined.
  uint32_t MaxCalleeInstrs = 200;
  /// Hot loop traces turned into superblocks, in count order.
  uint32_t MaxSuperblocks = 8;
  /// Candidates colder than this are ignored.
  uint64_t MinCount = 2;
  OptFault Fault = OptFault::None;
};

/// One ranked inline candidate and what happened to it.
struct InlineDecision {
  uint32_t Caller = 0; ///< caller function id
  uint32_t Block = 0;  ///< pre-instrumentation block holding the call
  uint32_t Callee = 0; ///< callee function id
  uint64_t Heat = 0;   ///< summed Type I/II + call-break path counts
  bool Applied = false;
  std::string SkipReason; ///< non-empty when !Applied
};

/// One ranked superblock candidate (a hot backedge-crossing trace) and what
/// happened to it.
struct SuperblockDecision {
  uint32_t Func = 0;
  uint64_t Count = 0;
  /// The OG suffix: header-first block trace of the next iteration, in
  /// pre-instrumentation block ids.
  std::vector<uint32_t> Trace;
  uint32_t DuplicatedBlocks = 0;
  uint32_t MergedBlocks = 0;
  bool Applied = false;
  std::string SkipReason;
};

struct OptStats {
  uint32_t InlinedSites = 0;
  uint32_t Superblocks = 0;
  uint32_t DuplicatedBlocks = 0;
  uint32_t MergedBlocks = 0;
  uint32_t RemovedBlocks = 0; ///< unreachable after merging
};

struct OptResult {
  /// The optimized module (pristine-shaped: no probes). Null when binding
  /// or verification failed; never partially transformed.
  std::unique_ptr<Module> OptModule;
  std::vector<InlineDecision> Inlines;
  std::vector<SuperblockDecision> Superblocks;
  OptStats Stats;

  bool ok() const { return OptModule != nullptr; }
};

/// Optimizes \p Pristine under the counters of \p A. Binds the artifact
/// first (fingerprint-checked re-instrumentation, pass "profdata-bind"); a
/// stale or foreign artifact fails the bind and nothing is transformed.
/// The transformed module is verified before it is returned; a verifier
/// failure (a transform bug) is reported on \p Diags (pass "opt") and
/// rejected wholesale. Returns Out.ok().
bool optimizeModule(const Module &Pristine, const ProfileArtifact &A,
                    const OptOptions &Opts, OptResult &Out,
                    std::vector<Diagnostic> &Diags);

//===----------------------------------------------------------------------===//
// Building blocks (unit-testable pieces of optimizeModule)
//===----------------------------------------------------------------------===//

/// Ranks call sites by artifact heat: Type I / Type II interprocedural
/// counts attributed through the call-site table, plus decoded call-break
/// path endings. Hottest first; cold (< Opts.MinCount) sites are dropped.
/// Decisions come back unapplied.
std::vector<InlineDecision>
rankInlineCandidates(const ProfileArtifact &A, const ModuleInstrumentation &MI,
                     const OptOptions &Opts);

/// Ranks hot backedge-crossing traces (decoded entries with a Backedge end
/// and an OG suffix of at least two blocks). Hottest first.
std::vector<SuperblockDecision>
rankSuperblockCandidates(const ProfileArtifact &A,
                         const ModuleInstrumentation &MI,
                         const OptOptions &Opts);

/// Inlines the unique call in block \p BlockId of \p Caller (both in \p M).
/// On success returns true; otherwise fills \p SkipReason and leaves the
/// function untouched. \p MaxCalleeInstrs caps the cloned body.
bool inlineCallSite(Module &M, Function &Caller, uint32_t BlockId,
                    uint32_t MaxCalleeInstrs, OptFault Fault,
                    std::string &SkipReason);

/// Forms a superblock along \p Trace (header-first block ids) in \p F:
/// tail-duplicates side-entered trace blocks (originals keep the hot path)
/// and merges the resulting single-entry straight-line seams. On success
/// returns true and reports the duplicated/merged block counts; otherwise
/// fills \p SkipReason and leaves the function untouched.
bool formSuperblock(Function &F, const std::vector<uint32_t> &Trace,
                    uint32_t &DuplicatedBlocks, uint32_t &MergedBlocks,
                    std::string &SkipReason);

//===----------------------------------------------------------------------===//
// Trace-tier seeding (the artifact-driven warmup skip)
//===----------------------------------------------------------------------===//

/// One hot overlapping path id worth pre-heating the tracing tier with.
struct HotPathSeed {
  uint32_t Func = 0;
  int64_t Id = 0;
  uint64_t Count = 0;
};

/// The artifact's hot loop-interesting path ids (Backedge-ended decoded
/// entries), hottest first, capped at \p MaxSeeds and floored at
/// \p MinCount. The ids are in the same space the interpreter feeds to
/// TraceTierState::noteHot, so seeding them reproduces warmed-up heat.
std::vector<HotPathSeed> collectHotLoopPaths(const ProfileArtifact &A,
                                             const ModuleInstrumentation &MI,
                                             uint64_t MinCount,
                                             size_t MaxSeeds);

/// Installs \p Seeds into \p Prof's tracing-tier hotness table.
void seedTraceTier(ProfileRuntime &Prof, const std::vector<HotPathSeed> &Seeds);

} // namespace olpp

#endif // OLPP_OPT_OPTIMIZER_H
