//===--- Ast.h - MiniC abstract syntax tree ---------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tagged-struct AST (kind enums, no RTTI). The semantic checker annotates
/// references with their resolution (local slot / global id / function id)
/// so that lowering never repeats name lookup.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_FRONTEND_AST_H
#define OLPP_FRONTEND_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace olpp {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/// Binary operators in MiniC. LAnd/LOr short-circuit.
enum class BinaryOp : uint8_t {
  Add, Sub, Mul, Div, Mod, BitAnd, BitOr, BitXor, Shl, Shr,
  Eq, Ne, Lt, Le, Gt, Ge, LAnd, LOr,
};

enum class UnaryOp : uint8_t { Neg, Not };

/// How a name resolved; filled in by Sema.
enum class RefKind : uint8_t { Unresolved, Local, Global, GlobalArray, Func };

struct Expr {
  enum class Kind : uint8_t {
    IntLit,     ///< Value
    VarRef,     ///< Name -> local or global scalar
    ArrayIndex, ///< Name[Sub[0]] -> global array
    Unary,      ///< UOp Sub[0]
    Binary,     ///< Sub[0] BOp Sub[1]
    Call,       ///< Name(Sub...); Indirect when Name is a variable
                ///< holding a function id
    FuncAddr,   ///< &Name -> the function's id as a value
  };
  Kind K;
  uint32_t Line = 0, Col = 0;

  int64_t Value = 0;
  std::string Name;
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  std::vector<ExprPtr> Sub;

  // Resolution (Sema).
  RefKind Ref = RefKind::Unresolved;
  uint32_t RefId = 0; ///< local var id, global id, or function id
  /// Call through a variable holding a function id (function pointer).
  bool Indirect = false;
};

struct Stmt {
  enum class Kind : uint8_t {
    Block,       ///< Body
    VarDecl,     ///< var Name (= E[0])?
    Assign,      ///< Name = E[0]
    ArrayAssign, ///< Name[E[0]] = E[1]
    If,          ///< if (E[0]) SubStmt[0] else SubStmt[1]?
    While,       ///< while (E[0]) SubStmt[0]
    DoWhile,     ///< do SubStmt[0] while (E[0])
    For,         ///< for (SubStmt[1]?; E[0]?; SubStmt[2]?) SubStmt[0]
    Return,      ///< return E[0]?
    Break,
    Continue,
    ExprStmt,    ///< E[0];
  };
  Kind K;
  uint32_t Line = 0, Col = 0;

  std::string Name;
  std::vector<ExprPtr> E;
  std::vector<StmtPtr> SubStmt;
  std::vector<StmtPtr> Body; ///< for Block

  // Resolution (Sema) for VarDecl/Assign/ArrayAssign.
  RefKind Ref = RefKind::Unresolved;
  uint32_t RefId = 0;
};

struct FuncDecl {
  std::string Name;
  uint32_t Line = 0, Col = 0;
  std::vector<std::string> Params;
  StmtPtr Body; ///< always a Block
  /// Total distinct local variables (params included); filled by Sema.
  /// Lowering allocates one frame register per local var id.
  uint32_t NumLocals = 0;
};

struct GlobalDecl {
  std::string Name;
  uint32_t Line = 0, Col = 0;
  uint64_t Size = 1; ///< 1 for scalars
};

struct Program {
  std::vector<GlobalDecl> Globals;
  std::vector<FuncDecl> Funcs;
};

/// One frontend diagnostic.
struct Diag {
  uint32_t Line = 0, Col = 0;
  std::string Message;

  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col) + ": " + Message;
  }
};

} // namespace olpp

#endif // OLPP_FRONTEND_AST_H
