//===--- Parser.cpp - MiniC recursive-descent parser ----------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cassert>

using namespace olpp;

Parser::Parser(std::string_view Source) : Lex(Source) { Cur = Lex.next(); }

void Parser::bump() {
  if (Cur.Kind == TokKind::Error) {
    // Report once, then swallow so we don't loop.
    error(Cur.Text);
  }
  ++TokensConsumed;
  if (Cur.Kind != TokKind::Eof)
    Cur = Lex.next();
}

bool Parser::accept(TokKind K) {
  if (!at(K))
    return false;
  bump();
  return true;
}

bool Parser::expect(TokKind K, const char *Context) {
  if (accept(K))
    return true;
  error(std::string("expected ") + tokKindName(K) + " " + Context +
        ", found " + tokKindName(Cur.Kind));
  return false;
}

void Parser::error(const std::string &Msg) {
  Diags.push_back({Cur.Line, Cur.Col, Msg});
}

void Parser::syncToDeclBoundary() {
  while (!at(TokKind::Eof) && !at(TokKind::KwFn) && !at(TokKind::KwGlobal))
    bump();
}

void Parser::syncToStmtBoundary() {
  int Depth = 0;
  while (!at(TokKind::Eof)) {
    if (at(TokKind::Semi) && Depth == 0) {
      bump();
      return;
    }
    if (at(TokKind::LBrace))
      ++Depth;
    if (at(TokKind::RBrace)) {
      if (Depth == 0)
        return;
      --Depth;
    }
    bump();
  }
}

Program Parser::parseProgram() {
  Program P;
  while (!at(TokKind::Eof)) {
    if (at(TokKind::KwGlobal)) {
      parseGlobal(P);
    } else if (at(TokKind::KwFn)) {
      parseFunction(P);
    } else {
      error(std::string("expected 'global' or 'fn' at top level, found ") +
            tokKindName(Cur.Kind));
      bump();
      syncToDeclBoundary();
    }
  }
  return P;
}

void Parser::parseGlobal(Program &P) {
  GlobalDecl G;
  G.Line = Cur.Line;
  G.Col = Cur.Col;
  bump(); // 'global'
  if (!at(TokKind::Ident)) {
    error("expected a global variable name");
    syncToDeclBoundary();
    return;
  }
  G.Name = Cur.Text;
  bump();
  if (accept(TokKind::LBracket)) {
    if (!at(TokKind::Number)) {
      error("expected an array size");
      syncToDeclBoundary();
      return;
    }
    if (Cur.Value <= 0) {
      error("array size must be positive");
    } else {
      G.Size = static_cast<uint64_t>(Cur.Value);
    }
    bump();
    expect(TokKind::RBracket, "after array size");
  }
  expect(TokKind::Semi, "after global declaration");
  P.Globals.push_back(std::move(G));
}

void Parser::parseFunction(Program &P) {
  FuncDecl F;
  F.Line = Cur.Line;
  F.Col = Cur.Col;
  bump(); // 'fn'
  if (!at(TokKind::Ident)) {
    error("expected a function name");
    syncToDeclBoundary();
    return;
  }
  F.Name = Cur.Text;
  bump();
  if (!expect(TokKind::LParen, "after function name")) {
    syncToDeclBoundary();
    return;
  }
  if (!at(TokKind::RParen)) {
    do {
      if (!at(TokKind::Ident)) {
        error("expected a parameter name");
        break;
      }
      F.Params.push_back(Cur.Text);
      bump();
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen, "after parameter list");
  if (!at(TokKind::LBrace)) {
    error("expected a function body");
    syncToDeclBoundary();
    return;
  }
  F.Body = parseBlock();
  P.Funcs.push_back(std::move(F));
}

StmtPtr Parser::parseBlock() {
  auto B = std::make_unique<Stmt>();
  B->K = Stmt::Kind::Block;
  B->Line = Cur.Line;
  B->Col = Cur.Col;
  expect(TokKind::LBrace, "to open a block");
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    size_t DiagsBefore = Diags.size();
    uint64_t TokensBefore = TokensConsumed;
    StmtPtr S = parseStmt();
    if (S)
      B->Body.push_back(std::move(S));
    else if (Diags.size() > DiagsBefore)
      syncToStmtBoundary();
    // Error recovery must make progress: a malformed statement that
    // produced diagnostics without consuming anything would loop forever.
    if (TokensConsumed == TokensBefore) {
      if (Diags.size() == DiagsBefore)
        error("statement made no progress");
      bump();
      syncToStmtBoundary();
    }
  }
  expect(TokKind::RBrace, "to close a block");
  return B;
}

StmtPtr Parser::parseStmt() {
  auto Make = [&](Stmt::Kind K) {
    auto S = std::make_unique<Stmt>();
    S->K = K;
    S->Line = Cur.Line;
    S->Col = Cur.Col;
    return S;
  };

  switch (Cur.Kind) {
  case TokKind::LBrace:
    return parseBlock();
  case TokKind::KwIf: {
    auto S = Make(Stmt::Kind::If);
    bump();
    expect(TokKind::LParen, "after 'if'");
    S->E.push_back(parseExpr());
    expect(TokKind::RParen, "after if condition");
    S->SubStmt.push_back(parseBlock());
    if (accept(TokKind::KwElse)) {
      if (at(TokKind::KwIf))
        S->SubStmt.push_back(parseStmt()); // else-if chain
      else
        S->SubStmt.push_back(parseBlock());
    }
    return S;
  }
  case TokKind::KwWhile: {
    auto S = Make(Stmt::Kind::While);
    bump();
    expect(TokKind::LParen, "after 'while'");
    S->E.push_back(parseExpr());
    expect(TokKind::RParen, "after while condition");
    S->SubStmt.push_back(parseBlock());
    return S;
  }
  case TokKind::KwDo: {
    auto S = Make(Stmt::Kind::DoWhile);
    bump();
    S->SubStmt.push_back(parseBlock());
    expect(TokKind::KwWhile, "after do-while body");
    expect(TokKind::LParen, "after 'while'");
    S->E.push_back(parseExpr());
    expect(TokKind::RParen, "after do-while condition");
    expect(TokKind::Semi, "after do-while");
    return S;
  }
  case TokKind::KwFor: {
    auto S = Make(Stmt::Kind::For);
    bump();
    expect(TokKind::LParen, "after 'for'");
    // SubStmt layout: [0] = body, [1] = init?, [2] = step?. E[0] = cond?.
    StmtPtr Init, Step;
    if (!at(TokKind::Semi))
      Init = parseSimpleStmt(/*RequireSemi=*/false);
    expect(TokKind::Semi, "after for-init");
    if (!at(TokKind::Semi))
      S->E.push_back(parseExpr());
    else
      S->E.push_back(nullptr);
    expect(TokKind::Semi, "after for-condition");
    if (!at(TokKind::RParen))
      Step = parseSimpleStmt(/*RequireSemi=*/false);
    expect(TokKind::RParen, "after for clauses");
    S->SubStmt.push_back(parseBlock());
    S->SubStmt.push_back(std::move(Init));
    S->SubStmt.push_back(std::move(Step));
    return S;
  }
  case TokKind::KwReturn: {
    auto S = Make(Stmt::Kind::Return);
    bump();
    if (!at(TokKind::Semi))
      S->E.push_back(parseExpr());
    expect(TokKind::Semi, "after return");
    return S;
  }
  case TokKind::KwBreak: {
    auto S = Make(Stmt::Kind::Break);
    bump();
    expect(TokKind::Semi, "after 'break'");
    return S;
  }
  case TokKind::KwContinue: {
    auto S = Make(Stmt::Kind::Continue);
    bump();
    expect(TokKind::Semi, "after 'continue'");
    return S;
  }
  default:
    return parseSimpleStmt(/*RequireSemi=*/true);
  }
}

StmtPtr Parser::parseSimpleStmt(bool RequireSemi) {
  auto Make = [&](Stmt::Kind K) {
    auto S = std::make_unique<Stmt>();
    S->K = K;
    S->Line = Cur.Line;
    S->Col = Cur.Col;
    return S;
  };
  auto Finish = [&](StmtPtr S) -> StmtPtr {
    if (RequireSemi)
      expect(TokKind::Semi, "after statement");
    return S;
  };

  if (at(TokKind::KwVar)) {
    auto S = Make(Stmt::Kind::VarDecl);
    bump();
    if (!at(TokKind::Ident)) {
      error("expected a variable name after 'var'");
      return nullptr;
    }
    S->Name = Cur.Text;
    bump();
    if (accept(TokKind::Assign))
      S->E.push_back(parseExpr());
    return Finish(std::move(S));
  }

  // Assignment / array assignment / bare expression. We need lookahead to
  // distinguish `x = e`, `a[i] = e` from expression statements.
  if (at(TokKind::Ident)) {
    std::string Name = Cur.Text;
    uint32_t Line = Cur.Line, Col = Cur.Col;
    bump();
    if (accept(TokKind::Assign)) {
      auto S = std::make_unique<Stmt>();
      S->K = Stmt::Kind::Assign;
      S->Line = Line;
      S->Col = Col;
      S->Name = std::move(Name);
      S->E.push_back(parseExpr());
      return Finish(std::move(S));
    }
    if (at(TokKind::LBracket)) {
      bump();
      ExprPtr Index = parseExpr();
      expect(TokKind::RBracket, "after array index");
      if (accept(TokKind::Assign)) {
        auto S = std::make_unique<Stmt>();
        S->K = Stmt::Kind::ArrayAssign;
        S->Line = Line;
        S->Col = Col;
        S->Name = std::move(Name);
        S->E.push_back(std::move(Index));
        S->E.push_back(parseExpr());
        return Finish(std::move(S));
      }
      // It was an array read used as an expression statement; rebuild it.
      auto Read = std::make_unique<Expr>();
      Read->K = Expr::Kind::ArrayIndex;
      Read->Line = Line;
      Read->Col = Col;
      Read->Name = std::move(Name);
      Read->Sub.push_back(std::move(Index));
      auto S = Make(Stmt::Kind::ExprStmt);
      S->Line = Line;
      S->Col = Col;
      S->E.push_back(parseBinaryRhs(0, std::move(Read)));
      return Finish(std::move(S));
    }
    // Expression statement beginning with an identifier (typically a call).
    ExprPtr Lead;
    if (at(TokKind::LParen)) {
      auto CallE = std::make_unique<Expr>();
      CallE->K = Expr::Kind::Call;
      CallE->Line = Line;
      CallE->Col = Col;
      CallE->Name = std::move(Name);
      bump();
      if (!at(TokKind::RParen)) {
        do {
          CallE->Sub.push_back(parseExpr());
        } while (accept(TokKind::Comma));
      }
      expect(TokKind::RParen, "after call arguments");
      Lead = std::move(CallE);
    } else {
      auto Ref = std::make_unique<Expr>();
      Ref->K = Expr::Kind::VarRef;
      Ref->Line = Line;
      Ref->Col = Col;
      Ref->Name = std::move(Name);
      Lead = std::move(Ref);
    }
    auto S = Make(Stmt::Kind::ExprStmt);
    S->Line = Line;
    S->Col = Col;
    S->E.push_back(parseBinaryRhs(0, std::move(Lead)));
    return Finish(std::move(S));
  }

  auto S = Make(Stmt::Kind::ExprStmt);
  S->E.push_back(parseExpr());
  return Finish(std::move(S));
}

// Binary operator precedence (higher binds tighter).
static int precedenceOf(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return 1;
  case TokKind::AmpAmp:
    return 2;
  case TokKind::Pipe:
    return 3;
  case TokKind::Caret:
    return 4;
  case TokKind::Amp:
    return 5;
  case TokKind::EqEq:
  case TokKind::NotEq:
    return 6;
  case TokKind::Lt:
  case TokKind::Le:
  case TokKind::Gt:
  case TokKind::Ge:
    return 7;
  case TokKind::Shl:
  case TokKind::Shr:
    return 8;
  case TokKind::Plus:
  case TokKind::Minus:
    return 9;
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent:
    return 10;
  default:
    return -1;
  }
}

static BinaryOp binaryOpOf(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return BinaryOp::LOr;
  case TokKind::AmpAmp:
    return BinaryOp::LAnd;
  case TokKind::Pipe:
    return BinaryOp::BitOr;
  case TokKind::Caret:
    return BinaryOp::BitXor;
  case TokKind::Amp:
    return BinaryOp::BitAnd;
  case TokKind::EqEq:
    return BinaryOp::Eq;
  case TokKind::NotEq:
    return BinaryOp::Ne;
  case TokKind::Lt:
    return BinaryOp::Lt;
  case TokKind::Le:
    return BinaryOp::Le;
  case TokKind::Gt:
    return BinaryOp::Gt;
  case TokKind::Ge:
    return BinaryOp::Ge;
  case TokKind::Shl:
    return BinaryOp::Shl;
  case TokKind::Shr:
    return BinaryOp::Shr;
  case TokKind::Plus:
    return BinaryOp::Add;
  case TokKind::Minus:
    return BinaryOp::Sub;
  case TokKind::Star:
    return BinaryOp::Mul;
  case TokKind::Slash:
    return BinaryOp::Div;
  case TokKind::Percent:
    return BinaryOp::Mod;
  default:
    assert(false && "not a binary operator token");
    return BinaryOp::Add;
  }
}

ExprPtr Parser::parseExpr() { return parseBinaryRhs(0, parseUnary()); }

ExprPtr Parser::parseBinaryRhs(int MinPrec, ExprPtr Lhs) {
  if (!Lhs)
    return Lhs;
  while (true) {
    int Prec = precedenceOf(Cur.Kind);
    if (Prec < MinPrec || Prec < 0)
      return Lhs;
    TokKind OpTok = Cur.Kind;
    uint32_t Line = Cur.Line, Col = Cur.Col;
    bump();
    ExprPtr Rhs = parseUnary();
    if (!Rhs)
      return Lhs;
    int NextPrec = precedenceOf(Cur.Kind);
    if (NextPrec > Prec)
      Rhs = parseBinaryRhs(Prec + 1, std::move(Rhs));
    auto Node = std::make_unique<Expr>();
    Node->K = Expr::Kind::Binary;
    Node->Line = Line;
    Node->Col = Col;
    Node->BOp = binaryOpOf(OpTok);
    Node->Sub.push_back(std::move(Lhs));
    Node->Sub.push_back(std::move(Rhs));
    Lhs = std::move(Node);
  }
}

ExprPtr Parser::parseUnary() {
  if (at(TokKind::Amp)) {
    // &name: the named function's id as a first-class value.
    auto Node = std::make_unique<Expr>();
    Node->K = Expr::Kind::FuncAddr;
    Node->Line = Cur.Line;
    Node->Col = Cur.Col;
    bump();
    if (!at(TokKind::Ident)) {
      error("expected a function name after '&'");
      return nullptr;
    }
    Node->Name = Cur.Text;
    bump();
    return Node;
  }
  if (at(TokKind::Minus) || at(TokKind::Bang)) {
    auto Node = std::make_unique<Expr>();
    Node->K = Expr::Kind::Unary;
    Node->Line = Cur.Line;
    Node->Col = Cur.Col;
    Node->UOp = at(TokKind::Minus) ? UnaryOp::Neg : UnaryOp::Not;
    bump();
    Node->Sub.push_back(parseUnary());
    if (!Node->Sub.back())
      return nullptr;
    return Node;
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  auto Make = [&](Expr::Kind K) {
    auto E = std::make_unique<Expr>();
    E->K = K;
    E->Line = Cur.Line;
    E->Col = Cur.Col;
    return E;
  };

  switch (Cur.Kind) {
  case TokKind::Number: {
    auto E = Make(Expr::Kind::IntLit);
    E->Value = Cur.Value;
    bump();
    return E;
  }
  case TokKind::LParen: {
    bump();
    ExprPtr E = parseExpr();
    expect(TokKind::RParen, "to close a parenthesized expression");
    return E;
  }
  case TokKind::Ident: {
    std::string Name = Cur.Text;
    uint32_t Line = Cur.Line, Col = Cur.Col;
    bump();
    if (at(TokKind::LParen)) {
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Call;
      E->Line = Line;
      E->Col = Col;
      E->Name = std::move(Name);
      bump();
      if (!at(TokKind::RParen)) {
        do {
          E->Sub.push_back(parseExpr());
        } while (accept(TokKind::Comma));
      }
      expect(TokKind::RParen, "after call arguments");
      return E;
    }
    if (at(TokKind::LBracket)) {
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::ArrayIndex;
      E->Line = Line;
      E->Col = Col;
      E->Name = std::move(Name);
      bump();
      E->Sub.push_back(parseExpr());
      expect(TokKind::RBracket, "after array index");
      return E;
    }
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::VarRef;
    E->Line = Line;
    E->Col = Col;
    E->Name = std::move(Name);
    return E;
  }
  default:
    error(std::string("expected an expression, found ") +
          tokKindName(Cur.Kind));
    return nullptr;
  }
}
