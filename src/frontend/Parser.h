//===--- Parser.h - MiniC recursive-descent parser --------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing the AST of frontend/Ast.h. Parse
/// errors are collected as diagnostics; the parser recovers at statement
/// and declaration boundaries so that several errors can be reported from
/// one run.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_FRONTEND_PARSER_H
#define OLPP_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Lexer.h"

namespace olpp {

class Parser {
public:
  explicit Parser(std::string_view Source);

  /// Parses a whole program. Check diags() before using the result.
  Program parseProgram();

  const std::vector<Diag> &diags() const { return Diags; }

private:
  // Token plumbing.
  const Token &cur() const { return Cur; }
  void bump();
  bool at(TokKind K) const { return Cur.Kind == K; }
  bool accept(TokKind K);
  bool expect(TokKind K, const char *Context);
  void error(const std::string &Msg);
  void syncToDeclBoundary();
  void syncToStmtBoundary();

  // Grammar productions.
  void parseGlobal(Program &P);
  void parseFunction(Program &P);
  StmtPtr parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseSimpleStmt(bool RequireSemi);
  ExprPtr parseExpr();
  ExprPtr parseBinaryRhs(int MinPrec, ExprPtr Lhs);
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  Lexer Lex;
  Token Cur;
  std::vector<Diag> Diags;
  uint64_t TokensConsumed = 0;
};

} // namespace olpp

#endif // OLPP_FRONTEND_PARSER_H
