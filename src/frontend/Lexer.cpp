//===--- Lexer.cpp - MiniC lexer ------------------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace olpp;

const char *olpp::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Error:
    return "invalid token";
  case TokKind::Ident:
    return "identifier";
  case TokKind::Number:
    return "number";
  case TokKind::KwGlobal:
    return "'global'";
  case TokKind::KwFn:
    return "'fn'";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwDo:
    return "'do'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Assign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  }
  return "?";
}

char Lexer::advance() {
  char Ch = Src[Pos++];
  if (Ch == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return Ch;
}

bool Lexer::skipTrivia(Token &ErrOut) {
  while (Pos < Src.size()) {
    char Ch = peek();
    if (Ch == ' ' || Ch == '\t' || Ch == '\r' || Ch == '\n') {
      advance();
      continue;
    }
    if (Ch == '/' && peek(1) == '/') {
      while (Pos < Src.size() && peek() != '\n')
        advance();
      continue;
    }
    if (Ch == '/' && peek(1) == '*') {
      uint32_t StartLine = Line, StartCol = Col;
      advance();
      advance();
      bool Closed = false;
      while (Pos < Src.size()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed) {
        ErrOut = {TokKind::Error, "unterminated block comment", 0, StartLine,
                  StartCol};
        return false;
      }
      continue;
    }
    break;
  }
  return true;
}

Token Lexer::next() {
  Token Err;
  if (!skipTrivia(Err))
    return Err;
  if (Pos >= Src.size())
    return {TokKind::Eof, "", 0, Line, Col};

  uint32_t StartLine = Line, StartCol = Col;
  char Ch = advance();
  auto Tok = [&](TokKind K) { return Token{K, "", 0, StartLine, StartCol}; };

  if (std::isdigit(static_cast<unsigned char>(Ch))) {
    int64_t Value = Ch - '0';
    bool Overflow = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      int Digit = advance() - '0';
      if (Value > (INT64_MAX - Digit) / 10)
        Overflow = true;
      else
        Value = Value * 10 + Digit;
    }
    if (Overflow)
      return {TokKind::Error, "integer literal too large", 0, StartLine,
              StartCol};
    Token T = Tok(TokKind::Number);
    T.Value = Value;
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(Ch)) || Ch == '_') {
    std::string Name(1, Ch);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Name.push_back(advance());
    static const std::unordered_map<std::string, TokKind> Keywords = {
        {"global", TokKind::KwGlobal},   {"fn", TokKind::KwFn},
        {"var", TokKind::KwVar},         {"if", TokKind::KwIf},
        {"else", TokKind::KwElse},       {"while", TokKind::KwWhile},
        {"do", TokKind::KwDo},           {"for", TokKind::KwFor},
        {"return", TokKind::KwReturn},   {"break", TokKind::KwBreak},
        {"continue", TokKind::KwContinue}};
    auto It = Keywords.find(Name);
    if (It != Keywords.end())
      return Tok(It->second);
    Token T = Tok(TokKind::Ident);
    T.Text = std::move(Name);
    return T;
  }

  switch (Ch) {
  case '(':
    return Tok(TokKind::LParen);
  case ')':
    return Tok(TokKind::RParen);
  case '{':
    return Tok(TokKind::LBrace);
  case '}':
    return Tok(TokKind::RBrace);
  case '[':
    return Tok(TokKind::LBracket);
  case ']':
    return Tok(TokKind::RBracket);
  case ',':
    return Tok(TokKind::Comma);
  case ';':
    return Tok(TokKind::Semi);
  case '+':
    return Tok(TokKind::Plus);
  case '-':
    return Tok(TokKind::Minus);
  case '*':
    return Tok(TokKind::Star);
  case '/':
    return Tok(TokKind::Slash);
  case '%':
    return Tok(TokKind::Percent);
  case '^':
    return Tok(TokKind::Caret);
  case '&':
    if (peek() == '&') {
      advance();
      return Tok(TokKind::AmpAmp);
    }
    return Tok(TokKind::Amp);
  case '|':
    if (peek() == '|') {
      advance();
      return Tok(TokKind::PipePipe);
    }
    return Tok(TokKind::Pipe);
  case '!':
    if (peek() == '=') {
      advance();
      return Tok(TokKind::NotEq);
    }
    return Tok(TokKind::Bang);
  case '=':
    if (peek() == '=') {
      advance();
      return Tok(TokKind::EqEq);
    }
    return Tok(TokKind::Assign);
  case '<':
    if (peek() == '<') {
      advance();
      return Tok(TokKind::Shl);
    }
    if (peek() == '=') {
      advance();
      return Tok(TokKind::Le);
    }
    return Tok(TokKind::Lt);
  case '>':
    if (peek() == '>') {
      advance();
      return Tok(TokKind::Shr);
    }
    if (peek() == '=') {
      advance();
      return Tok(TokKind::Ge);
    }
    return Tok(TokKind::Gt);
  default:
    return {TokKind::Error, std::string("unexpected character '") + Ch + "'",
            0, StartLine, StartCol};
  }
}
