//===--- Compiler.h - MiniC compilation facade ------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call frontend: source text -> verified IR module. This is the entry
/// point examples, workloads and tests use.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_FRONTEND_COMPILER_H
#define OLPP_FRONTEND_COMPILER_H

#include "frontend/Ast.h"
#include "ir/Module.h"

#include <memory>
#include <string_view>

namespace olpp {

struct CompileResult {
  /// Null when there were diagnostics.
  std::unique_ptr<Module> M;
  std::vector<Diag> Diags;

  bool ok() const { return M != nullptr; }
  /// All diagnostics joined by newlines (empty on success).
  std::string diagText() const {
    std::string Out;
    for (const Diag &D : Diags) {
      Out += D.str();
      Out.push_back('\n');
    }
    return Out;
  }
};

/// Parses, checks, lowers and verifies \p Source.
CompileResult compileMiniC(std::string_view Source);

} // namespace olpp

#endif // OLPP_FRONTEND_COMPILER_H
