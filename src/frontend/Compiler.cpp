//===--- Compiler.cpp - MiniC compilation facade -----------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"

#include "frontend/Lower.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/Verifier.h"

using namespace olpp;

CompileResult olpp::compileMiniC(std::string_view Source) {
  CompileResult Res;

  Parser P(Source);
  Program Prog = P.parseProgram();
  Res.Diags = P.diags();
  if (!Res.Diags.empty())
    return Res;

  std::vector<Diag> SemaDiags = checkProgram(Prog);
  if (!SemaDiags.empty()) {
    Res.Diags = std::move(SemaDiags);
    return Res;
  }

  std::unique_ptr<Module> M = lowerProgram(Prog);
  // Lowering bugs surface here rather than as crashes downstream.
  std::vector<std::string> VerifyErrors = verifyModule(*M);
  if (!VerifyErrors.empty()) {
    for (const std::string &E : VerifyErrors)
      Res.Diags.push_back({0, 0, "internal lowering error: " + E});
    return Res;
  }

  Res.M = std::move(M);
  return Res;
}
