//===--- Token.h - MiniC tokens ---------------------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for MiniC, the small imperative language the workloads are
/// written in. MiniC has 64-bit integers, global scalars/arrays, functions,
/// and structured control flow — exactly what the profiling algorithms need
/// (reducible loops and call sites).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_FRONTEND_TOKEN_H
#define OLPP_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

namespace olpp {

enum class TokKind : uint8_t {
  Eof,
  Error,
  Ident,
  Number,
  // keywords
  KwGlobal,
  KwFn,
  KwVar,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  // punctuation
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Assign, // =
  // operators
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  AmpAmp,
  PipePipe,
  Bang,
  Shl,
  Shr,
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;   // identifier spelling or error message
  int64_t Value = 0;  // Number payload
  uint32_t Line = 1;
  uint32_t Col = 1;
};

/// Returns a printable name for diagnostics.
const char *tokKindName(TokKind K);

} // namespace olpp

#endif // OLPP_FRONTEND_TOKEN_H
