//===--- Sema.h - MiniC semantic checking -----------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and semantic checks over the AST. On success every
/// VarRef/ArrayIndex/Call/Assign node carries its resolution (RefKind +
/// RefId) and each FuncDecl knows how many local variable slots it needs,
/// which is all the lowering requires.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_FRONTEND_SEMA_H
#define OLPP_FRONTEND_SEMA_H

#include "frontend/Ast.h"

namespace olpp {

/// Checks and annotates \p P in place. Returns the diagnostics; empty means
/// the program is well-formed and ready for lowering.
std::vector<Diag> checkProgram(Program &P);

} // namespace olpp

#endif // OLPP_FRONTEND_SEMA_H
