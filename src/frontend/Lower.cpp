//===--- Lower.cpp - AST to IR lowering -------------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"

#include "ir/IRBuilder.h"

#include <cassert>

using namespace olpp;

namespace {

class FunctionLowerer {
public:
  FunctionLowerer(const Program &P, Module &M, const FuncDecl &FD,
                  Function &F)
      : P(P), M(M), FD(FD), F(F), B(F) {}

  void run() {
    BasicBlock *Entry = F.addBlock("entry");
    B.setBlock(Entry);
    // One frame register per local variable id; params already occupy
    // [0, NumParams).
    F.NumRegs = std::max(F.NumRegs, FD.NumLocals);
    lowerStmt(*FD.Body);
    // Fall off the end of the function: implicit `return 0`.
    if (!B.block()->hasTerminator())
      B.ret(NoReg);
    F.renumberBlocks();
  }

private:
  /// Starts a new block and makes it current.
  BasicBlock *freshBlock(const char *Name) {
    BasicBlock *BB = F.addBlock(Name);
    return BB;
  }

  /// If the current block is unterminated, branch to \p Next; then continue
  /// lowering in \p Next.
  void fallInto(BasicBlock *Next) {
    if (!B.block()->hasTerminator())
      B.br(Next);
    B.setBlock(Next);
  }

  // --- expressions -------------------------------------------------------

  Reg lowerExpr(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      return B.constInt(E.Value);
    case Expr::Kind::VarRef:
      if (E.Ref == RefKind::Local)
        return static_cast<Reg>(E.RefId);
      assert(E.Ref == RefKind::Global && "unresolved variable reference");
      return B.loadGlobal(E.RefId);
    case Expr::Kind::ArrayIndex: {
      assert(E.Ref == RefKind::GlobalArray && "unresolved array reference");
      Reg Idx = lowerExpr(*E.Sub[0]);
      return B.loadArray(E.RefId, Idx);
    }
    case Expr::Kind::Unary: {
      Reg V = lowerExpr(*E.Sub[0]);
      return E.UOp == UnaryOp::Neg ? B.neg(V) : B.logicalNot(V);
    }
    case Expr::Kind::Binary:
      return lowerBinary(E);
    case Expr::Kind::FuncAddr:
      assert(E.Ref == RefKind::Func && "unresolved function address");
      return B.constInt(static_cast<int64_t>(E.RefId));
    case Expr::Kind::Call: {
      std::vector<Reg> Args;
      Args.reserve(E.Sub.size());
      for (const ExprPtr &A : E.Sub)
        Args.push_back(lowerExpr(*A));
      Reg Dst = F.newReg();
      if (E.Indirect) {
        Reg Target = E.Ref == RefKind::Local
                         ? static_cast<Reg>(E.RefId)
                         : B.loadGlobal(E.RefId);
        B.callIndirect(Dst, Target, std::move(Args));
      } else {
        assert(E.Ref == RefKind::Func && "unresolved call");
        B.call(Dst, E.RefId, std::move(Args));
      }
      // Invariant: a call ends its block.
      BasicBlock *Cont = freshBlock("post.call");
      B.br(Cont);
      B.setBlock(Cont);
      return Dst;
    }
    }
    assert(false && "unknown expression kind");
    return NoReg;
  }

  Reg lowerBinary(const Expr &E) {
    if (E.BOp == BinaryOp::LAnd || E.BOp == BinaryOp::LOr)
      return lowerShortCircuit(E);

    Reg L = lowerExpr(*E.Sub[0]);
    Reg R = lowerExpr(*E.Sub[1]);
    Opcode Op;
    switch (E.BOp) {
    case BinaryOp::Add:
      Op = Opcode::Add;
      break;
    case BinaryOp::Sub:
      Op = Opcode::Sub;
      break;
    case BinaryOp::Mul:
      Op = Opcode::Mul;
      break;
    case BinaryOp::Div:
      Op = Opcode::Div;
      break;
    case BinaryOp::Mod:
      Op = Opcode::Mod;
      break;
    case BinaryOp::BitAnd:
      Op = Opcode::And;
      break;
    case BinaryOp::BitOr:
      Op = Opcode::Or;
      break;
    case BinaryOp::BitXor:
      Op = Opcode::Xor;
      break;
    case BinaryOp::Shl:
      Op = Opcode::Shl;
      break;
    case BinaryOp::Shr:
      Op = Opcode::Shr;
      break;
    case BinaryOp::Eq:
      Op = Opcode::CmpEq;
      break;
    case BinaryOp::Ne:
      Op = Opcode::CmpNe;
      break;
    case BinaryOp::Lt:
      Op = Opcode::CmpLt;
      break;
    case BinaryOp::Le:
      Op = Opcode::CmpLe;
      break;
    case BinaryOp::Gt:
      Op = Opcode::CmpGt;
      break;
    case BinaryOp::Ge:
      Op = Opcode::CmpGe;
      break;
    default:
      assert(false && "short-circuit op handled above");
      Op = Opcode::Add;
    }
    return B.binop(Op, L, R);
  }

  /// Lowers `a && b` / `a || b` with real control flow, producing 0/1.
  Reg lowerShortCircuit(const Expr &E) {
    bool IsAnd = E.BOp == BinaryOp::LAnd;
    Reg Result = F.newReg();
    Reg Lhs = lowerExpr(*E.Sub[0]);

    BasicBlock *Rhs = freshBlock(IsAnd ? "and.rhs" : "or.rhs");
    BasicBlock *Short = freshBlock(IsAnd ? "and.short" : "or.short");
    BasicBlock *Done = freshBlock(IsAnd ? "and.done" : "or.done");

    if (IsAnd)
      B.condBr(Lhs, Rhs, Short);
    else
      B.condBr(Lhs, Short, Rhs);

    B.setBlock(Rhs);
    Reg RhsV = lowerExpr(*E.Sub[1]);
    Reg Zero = B.constInt(0);
    B.binopInto(Result, Opcode::CmpNe, RhsV, Zero);
    B.br(Done);

    B.setBlock(Short);
    B.constInto(Result, IsAnd ? 0 : 1);
    B.br(Done);

    B.setBlock(Done);
    return Result;
  }

  // --- statements ----------------------------------------------------------

  struct LoopCtx {
    BasicBlock *ContinueTarget;
    BasicBlock *BreakTarget;
  };

  void lowerStmt(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Block:
      for (const StmtPtr &Sub : S.Body)
        lowerStmt(*Sub);
      break;
    case Stmt::Kind::VarDecl: {
      assert(S.Ref == RefKind::Local && "unresolved var decl");
      Reg Slot = static_cast<Reg>(S.RefId);
      if (!S.E.empty()) {
        Reg V = lowerExpr(*S.E[0]);
        B.move(Slot, V);
      } else {
        B.constInto(Slot, 0);
      }
      break;
    }
    case Stmt::Kind::Assign: {
      Reg V = lowerExpr(*S.E[0]);
      if (S.Ref == RefKind::Local)
        B.move(static_cast<Reg>(S.RefId), V);
      else {
        assert(S.Ref == RefKind::Global && "unresolved assignment");
        B.storeGlobal(S.RefId, V);
      }
      break;
    }
    case Stmt::Kind::ArrayAssign: {
      assert(S.Ref == RefKind::GlobalArray && "unresolved array assignment");
      Reg Idx = lowerExpr(*S.E[0]);
      Reg V = lowerExpr(*S.E[1]);
      B.storeArray(S.RefId, Idx, V);
      break;
    }
    case Stmt::Kind::If: {
      Reg Cond = lowerExpr(*S.E[0]);
      BasicBlock *Then = freshBlock("if.then");
      BasicBlock *Merge = freshBlock("if.merge");
      BasicBlock *Else = S.SubStmt.size() > 1 && S.SubStmt[1]
                             ? freshBlock("if.else")
                             : Merge;
      B.condBr(Cond, Then, Else);

      B.setBlock(Then);
      lowerStmt(*S.SubStmt[0]);
      fallInto(Merge);

      if (Else != Merge) {
        B.setBlock(Else);
        lowerStmt(*S.SubStmt[1]);
        if (!B.block()->hasTerminator())
          B.br(Merge);
        B.setBlock(Merge);
      }
      break;
    }
    case Stmt::Kind::While: {
      BasicBlock *Header = freshBlock("while.header");
      BasicBlock *Body = freshBlock("while.body");
      BasicBlock *Latch = freshBlock("while.latch");
      BasicBlock *Exit = freshBlock("while.exit");

      B.br(Header);
      B.setBlock(Header);
      Reg Cond = lowerExpr(*S.E[0]);
      B.condBr(Cond, Body, Exit);

      B.setBlock(Body);
      Loops.push_back({Latch, Exit});
      lowerStmt(*S.SubStmt[0]);
      Loops.pop_back();
      fallInto(Latch);
      B.br(Header);

      B.setBlock(Exit);
      break;
    }
    case Stmt::Kind::DoWhile: {
      BasicBlock *Body = freshBlock("do.body");
      BasicBlock *CondBB = freshBlock("do.cond");
      BasicBlock *Exit = freshBlock("do.exit");

      B.br(Body);
      B.setBlock(Body);
      Loops.push_back({CondBB, Exit});
      lowerStmt(*S.SubStmt[0]);
      Loops.pop_back();
      fallInto(CondBB);
      Reg Cond = lowerExpr(*S.E[0]);
      B.condBr(Cond, Body, Exit);

      B.setBlock(Exit);
      break;
    }
    case Stmt::Kind::For: {
      if (S.SubStmt.size() > 1 && S.SubStmt[1])
        lowerStmt(*S.SubStmt[1]); // init

      BasicBlock *Header = freshBlock("for.header");
      BasicBlock *Body = freshBlock("for.body");
      BasicBlock *Step = freshBlock("for.step");
      BasicBlock *Exit = freshBlock("for.exit");

      B.br(Header);
      B.setBlock(Header);
      if (!S.E.empty() && S.E[0]) {
        Reg Cond = lowerExpr(*S.E[0]);
        B.condBr(Cond, Body, Exit);
      } else {
        B.br(Body);
      }

      B.setBlock(Body);
      Loops.push_back({Step, Exit});
      lowerStmt(*S.SubStmt[0]);
      Loops.pop_back();
      fallInto(Step);
      if (S.SubStmt.size() > 2 && S.SubStmt[2])
        lowerStmt(*S.SubStmt[2]); // step
      if (!B.block()->hasTerminator())
        B.br(Header);

      B.setBlock(Exit);
      break;
    }
    case Stmt::Kind::Return: {
      if (!S.E.empty() && S.E[0]) {
        Reg V = lowerExpr(*S.E[0]);
        B.ret(V);
      } else {
        B.ret(NoReg);
      }
      // Anything after the return lowers into an unreachable block.
      B.setBlock(freshBlock("dead"));
      break;
    }
    case Stmt::Kind::Break: {
      assert(!Loops.empty() && "break outside loop survived sema");
      B.br(Loops.back().BreakTarget);
      B.setBlock(freshBlock("dead"));
      break;
    }
    case Stmt::Kind::Continue: {
      assert(!Loops.empty() && "continue outside loop survived sema");
      B.br(Loops.back().ContinueTarget);
      B.setBlock(freshBlock("dead"));
      break;
    }
    case Stmt::Kind::ExprStmt:
      (void)lowerExpr(*S.E[0]);
      break;
    }
  }

  const Program &P;
  Module &M;
  const FuncDecl &FD;
  Function &F;
  IRBuilder B;
  std::vector<LoopCtx> Loops;
};

} // namespace

std::unique_ptr<Module> olpp::lowerProgram(const Program &P) {
  auto M = std::make_unique<Module>();
  for (const GlobalDecl &G : P.Globals)
    M->addGlobal(G.Name, G.Size);
  // Pre-register all functions so calls can reference them by id; Sema's
  // function ids are declaration indices, which addFunction reproduces.
  for (const FuncDecl &F : P.Funcs)
    M->addFunction(F.Name, static_cast<uint32_t>(F.Params.size()));
  for (uint32_t I = 0; I < P.Funcs.size(); ++I)
    FunctionLowerer(P, *M, P.Funcs[I], *M->function(I)).run();
  return M;
}
