//===--- Lower.h - AST to IR lowering ---------------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a checked MiniC program to the OLPP IR. Guarantees the structural
/// invariants the profilers rely on:
///   - only reducible control flow (structured statements),
///   - every loop has a single dedicated latch block,
///   - a Call is always immediately followed by the block terminator
///     (each call ends its block), so call sites are path-break points,
///   - CondBr targets are always distinct blocks.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_FRONTEND_LOWER_H
#define OLPP_FRONTEND_LOWER_H

#include "frontend/Ast.h"
#include "ir/Module.h"

#include <memory>

namespace olpp {

/// Lowers \p P, which must have passed checkProgram with no diagnostics.
std::unique_ptr<Module> lowerProgram(const Program &P);

} // namespace olpp

#endif // OLPP_FRONTEND_LOWER_H
