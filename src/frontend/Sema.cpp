//===--- Sema.cpp - MiniC semantic checking --------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include <cassert>
#include <unordered_map>
#include <vector>

using namespace olpp;

namespace {

class Checker {
public:
  explicit Checker(Program &P) : P(P) {}

  std::vector<Diag> run() {
    // Global symbol tables; variables and functions live in separate
    // namespaces (a call always resolves against functions).
    for (uint32_t G = 0; G < P.Globals.size(); ++G) {
      const GlobalDecl &GD = P.Globals[G];
      if (!GlobalIds.emplace(GD.Name, G).second)
        error(GD.Line, GD.Col, "redefinition of global '" + GD.Name + "'");
    }
    for (uint32_t F = 0; F < P.Funcs.size(); ++F) {
      const FuncDecl &FD = P.Funcs[F];
      if (!FuncIds.emplace(FD.Name, F).second)
        error(FD.Line, FD.Col, "redefinition of function '" + FD.Name + "'");
    }
    for (FuncDecl &F : P.Funcs)
      checkFunction(F);
    return std::move(Diags);
  }

private:
  void error(uint32_t Line, uint32_t Col, const std::string &Msg) {
    Diags.push_back({Line, Col, Msg});
  }

  // --- scope management -------------------------------------------------
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  /// Declares a local; returns its function-unique id.
  uint32_t declareLocal(const std::string &Name, uint32_t Line, uint32_t Col) {
    auto &Top = Scopes.back();
    if (Top.count(Name))
      error(Line, Col, "redefinition of '" + Name + "' in the same scope");
    uint32_t Id = NextLocal++;
    Top[Name] = Id;
    return Id;
  }

  /// Innermost local with this name, or UINT32_MAX.
  uint32_t lookupLocal(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return UINT32_MAX;
  }

  // --- per-function traversal -------------------------------------------
  void checkFunction(FuncDecl &F) {
    Scopes.clear();
    NextLocal = 0;
    LoopDepth = 0;
    pushScope();
    for (const std::string &Param : F.Params)
      declareLocal(Param, F.Line, F.Col);
    if (F.Body)
      checkStmt(*F.Body);
    popScope();
    F.NumLocals = NextLocal;
  }

  void checkStmt(Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Block:
      pushScope();
      for (StmtPtr &Sub : S.Body)
        if (Sub)
          checkStmt(*Sub);
      popScope();
      break;
    case Stmt::Kind::VarDecl:
      // Check the initializer before the name becomes visible.
      if (!S.E.empty() && S.E[0])
        checkExpr(*S.E[0]);
      S.Ref = RefKind::Local;
      S.RefId = declareLocal(S.Name, S.Line, S.Col);
      break;
    case Stmt::Kind::Assign: {
      if (!S.E.empty() && S.E[0])
        checkExpr(*S.E[0]);
      uint32_t Local = lookupLocal(S.Name);
      if (Local != UINT32_MAX) {
        S.Ref = RefKind::Local;
        S.RefId = Local;
        break;
      }
      auto G = GlobalIds.find(S.Name);
      if (G == GlobalIds.end()) {
        error(S.Line, S.Col, "assignment to undeclared variable '" + S.Name +
                                 "'");
        break;
      }
      if (P.Globals[G->second].Size > 1) {
        error(S.Line, S.Col,
              "array '" + S.Name + "' assigned without an index");
        break;
      }
      S.Ref = RefKind::Global;
      S.RefId = G->second;
      break;
    }
    case Stmt::Kind::ArrayAssign: {
      for (ExprPtr &E : S.E)
        if (E)
          checkExpr(*E);
      auto G = GlobalIds.find(S.Name);
      if (G == GlobalIds.end() || P.Globals[G->second].Size == 1) {
        error(S.Line, S.Col, "'" + S.Name + "' is not a global array");
        break;
      }
      if (lookupLocal(S.Name) != UINT32_MAX) {
        error(S.Line, S.Col,
              "local '" + S.Name + "' shadows the global array; rename it");
        break;
      }
      S.Ref = RefKind::GlobalArray;
      S.RefId = G->second;
      break;
    }
    case Stmt::Kind::If:
      if (!S.E.empty() && S.E[0])
        checkExpr(*S.E[0]);
      for (StmtPtr &Sub : S.SubStmt)
        if (Sub)
          checkStmt(*Sub);
      break;
    case Stmt::Kind::While:
    case Stmt::Kind::DoWhile:
      if (!S.E.empty() && S.E[0])
        checkExpr(*S.E[0]);
      ++LoopDepth;
      if (!S.SubStmt.empty() && S.SubStmt[0])
        checkStmt(*S.SubStmt[0]);
      --LoopDepth;
      break;
    case Stmt::Kind::For: {
      // Init/step see a dedicated scope so `for (var i = ...; ...)` works.
      pushScope();
      if (S.SubStmt.size() > 1 && S.SubStmt[1])
        checkStmt(*S.SubStmt[1]); // init
      if (!S.E.empty() && S.E[0])
        checkExpr(*S.E[0]); // condition
      ++LoopDepth;
      if (!S.SubStmt.empty() && S.SubStmt[0])
        checkStmt(*S.SubStmt[0]); // body
      --LoopDepth;
      if (S.SubStmt.size() > 2 && S.SubStmt[2])
        checkStmt(*S.SubStmt[2]); // step
      popScope();
      break;
    }
    case Stmt::Kind::Return:
      if (!S.E.empty() && S.E[0])
        checkExpr(*S.E[0]);
      break;
    case Stmt::Kind::Break:
      if (LoopDepth == 0)
        error(S.Line, S.Col, "'break' outside of a loop");
      break;
    case Stmt::Kind::Continue:
      if (LoopDepth == 0)
        error(S.Line, S.Col, "'continue' outside of a loop");
      break;
    case Stmt::Kind::ExprStmt:
      if (!S.E.empty() && S.E[0])
        checkExpr(*S.E[0]);
      break;
    }
  }

  void checkExpr(Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      break;
    case Expr::Kind::VarRef: {
      uint32_t Local = lookupLocal(E.Name);
      if (Local != UINT32_MAX) {
        E.Ref = RefKind::Local;
        E.RefId = Local;
        break;
      }
      auto G = GlobalIds.find(E.Name);
      if (G != GlobalIds.end()) {
        if (P.Globals[G->second].Size > 1) {
          error(E.Line, E.Col,
                "array '" + E.Name + "' read without an index");
          break;
        }
        E.Ref = RefKind::Global;
        E.RefId = G->second;
        break;
      }
      error(E.Line, E.Col, "use of undeclared variable '" + E.Name + "'");
      break;
    }
    case Expr::Kind::ArrayIndex: {
      if (!E.Sub.empty() && E.Sub[0])
        checkExpr(*E.Sub[0]);
      auto G = GlobalIds.find(E.Name);
      if (G == GlobalIds.end() || P.Globals[G->second].Size == 1) {
        error(E.Line, E.Col, "'" + E.Name + "' is not a global array");
        break;
      }
      E.Ref = RefKind::GlobalArray;
      E.RefId = G->second;
      break;
    }
    case Expr::Kind::Unary:
    case Expr::Kind::Binary:
      for (ExprPtr &Sub : E.Sub)
        if (Sub)
          checkExpr(*Sub);
      break;
    case Expr::Kind::FuncAddr: {
      auto F = FuncIds.find(E.Name);
      if (F == FuncIds.end()) {
        error(E.Line, E.Col, "'&" + E.Name + "' does not name a function");
        break;
      }
      E.Ref = RefKind::Func;
      E.RefId = F->second;
      break;
    }
    case Expr::Kind::Call: {
      for (ExprPtr &Sub : E.Sub)
        if (Sub)
          checkExpr(*Sub);
      auto F = FuncIds.find(E.Name);
      if (F == FuncIds.end()) {
        // Not a function: an indirect call through a variable holding a
        // function id (arity is checked at run time).
        uint32_t Local = lookupLocal(E.Name);
        if (Local != UINT32_MAX) {
          E.Indirect = true;
          E.Ref = RefKind::Local;
          E.RefId = Local;
          break;
        }
        auto G = GlobalIds.find(E.Name);
        if (G != GlobalIds.end() && P.Globals[G->second].Size == 1) {
          E.Indirect = true;
          E.Ref = RefKind::Global;
          E.RefId = G->second;
          break;
        }
        error(E.Line, E.Col, "call to undeclared function '" + E.Name + "'");
        break;
      }
      const FuncDecl &Callee = P.Funcs[F->second];
      if (Callee.Params.size() != E.Sub.size()) {
        error(E.Line, E.Col,
              "'" + E.Name + "' expects " +
                  std::to_string(Callee.Params.size()) + " arguments, got " +
                  std::to_string(E.Sub.size()));
        break;
      }
      E.Ref = RefKind::Func;
      E.RefId = F->second;
      break;
    }
    }
  }

  Program &P;
  std::vector<Diag> Diags;
  std::unordered_map<std::string, uint32_t> GlobalIds;
  std::unordered_map<std::string, uint32_t> FuncIds;
  std::vector<std::unordered_map<std::string, uint32_t>> Scopes;
  uint32_t NextLocal = 0;
  uint32_t LoopDepth = 0;
};

} // namespace

std::vector<Diag> olpp::checkProgram(Program &P) { return Checker(P).run(); }
