//===--- Lexer.h - MiniC lexer ----------------------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniC. Supports // line and /* block */ comments.
/// Malformed input produces an Error token carrying the diagnostic text.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_FRONTEND_LEXER_H
#define OLPP_FRONTEND_LEXER_H

#include "frontend/Token.h"

#include <string_view>

namespace olpp {

class Lexer {
public:
  explicit Lexer(std::string_view Source) : Src(Source) {}

  /// Produces the next token; returns Eof forever once exhausted.
  Token next();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance();
  bool skipTrivia(Token &ErrOut);

  std::string_view Src;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace olpp

#endif // OLPP_FRONTEND_LEXER_H
