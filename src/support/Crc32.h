//===--- Crc32.h - CRC-32 checksums -----------------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to
/// checksum `.olpp` profile-artifact sections. CRC-32 detects every
/// single-bit error and every burst up to 32 bits, which is exactly the
/// corruption model the fuzz round-trip oracle's mutation test exercises.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_SUPPORT_CRC32_H
#define OLPP_SUPPORT_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace olpp {

namespace detail {
constexpr std::array<uint32_t, 256> makeCrc32Table() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    Table[I] = C;
  }
  return Table;
}
inline constexpr std::array<uint32_t, 256> Crc32Table = makeCrc32Table();
} // namespace detail

/// CRC-32 of \p Len bytes at \p Data.
inline uint32_t crc32(const void *Data, size_t Len) {
  const auto *P = static_cast<const uint8_t *>(Data);
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I < Len; ++I)
    C = detail::Crc32Table[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

inline uint32_t crc32(const std::string &S) { return crc32(S.data(), S.size()); }

} // namespace olpp

#endif // OLPP_SUPPORT_CRC32_H
