#include "support/Framing.h"
#include "support/Crc32.h"

namespace olpp {

namespace {

void putU32LE(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(char((V >> (8 * I)) & 0xFF));
}

void putU64LE(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(char((V >> (8 * I)) & 0xFF));
}

uint32_t getU32LE(const char *P) {
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | uint8_t(P[I]);
  return V;
}

uint64_t getU64LE(const char *P) {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | uint8_t(P[I]);
  return V;
}

} // namespace

std::string encodeFrame(FrameType Type, std::string_view Payload) {
  std::string Out;
  Out.reserve(FrameHeaderSize + Payload.size());
  Out.push_back(char(Type));
  putU32LE(Out, crc32(Payload.data(), Payload.size()));
  putU64LE(Out, Payload.size());
  Out.append(Payload.data(), Payload.size());
  return Out;
}

void FrameReader::feed(std::string_view Bytes) {
  if (Poisoned)
    return;
  Buf.append(Bytes.data(), Bytes.size());
}

FrameStatus FrameReader::next(Frame &Out) {
  if (Poisoned)
    return FrameStatus::Error;
  if (Buf.size() < FrameHeaderSize)
    return FrameStatus::NeedMore;

  // Header complete: validate the declared length before touching (or
  // waiting for) any payload byte. A hostile 2^60 length must fail here,
  // not in an allocator.
  const uint64_t Len = getU64LE(Buf.data() + 5);
  if (Len > MaxPayload) {
    Poisoned = true;
    ErrorMsg = "declared payload length " + std::to_string(Len) +
               " exceeds cap " + std::to_string(MaxPayload);
    Buf.clear();
    Buf.shrink_to_fit();
    return FrameStatus::Error;
  }
  if (Buf.size() - FrameHeaderSize < Len)
    return FrameStatus::NeedMore;

  const uint32_t WantCrc = getU32LE(Buf.data() + 1);
  const uint32_t GotCrc = crc32(Buf.data() + FrameHeaderSize, size_t(Len));
  if (WantCrc != GotCrc) {
    Poisoned = true;
    ErrorMsg = "payload crc mismatch";
    Buf.clear();
    Buf.shrink_to_fit();
    return FrameStatus::Error;
  }

  Out.Type = FrameType(uint8_t(Buf[0]));
  Out.Payload.assign(Buf.data() + FrameHeaderSize, size_t(Len));
  Buf.erase(0, FrameHeaderSize + size_t(Len));
  return FrameStatus::Frame;
}

} // namespace olpp
