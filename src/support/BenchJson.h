//===--- BenchJson.h - Engine benchmark report JSON -------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The BENCH_engine.json report written by bench/perf_engine and
/// `olpp bench`: per-workload wall time and steps/sec for the fast and
/// reference engines, the fast/reference speedup, and the interval solver's
/// effort counters (worklist evaluations vs whole-set sweeps). The schema
/// tag is "olpp.bench.engine/v1"; validateEngineBenchJson structurally
/// checks a rendered report against it (the perf_smoke ctest target and
/// --validate use this), with a dependency-free JSON parser.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_SUPPORT_BENCHJSON_H
#define OLPP_SUPPORT_BENCHJSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace olpp {

inline constexpr const char *EngineBenchSchema = "olpp.bench.engine/v1";

/// One engine's measurement of one workload.
struct EngineSample {
  double WallSeconds = 0.0;
  uint64_t Steps = 0;
  double StepsPerSec = 0.0;
};

/// One workload's row of the report.
struct WorkloadBench {
  std::string Name;
  EngineSample Fast;
  EngineSample Reference;
  /// Fast steps/sec over reference steps/sec.
  double Speedup = 0.0;
  /// Interval-solver effort on this workload's estimation system.
  uint64_t SolverEvaluationsWorklist = 0;
  uint64_t SolverEvaluationsSweep = 0;
  bool SolverConverged = true;
};

struct EngineBenchReport {
  unsigned Jobs = 1;
  double WallSeconds = 0.0; ///< whole batch, wall clock
  std::vector<WorkloadBench> Workloads;

  /// Geometric mean of the per-workload speedups (0 if empty).
  double geomeanSpeedup() const;
};

/// Renders \p R as pretty-printed JSON (trailing newline included).
std::string renderEngineBenchJson(const EngineBenchReport &R);

/// Renders and writes to \p Path. Returns false and sets \p Error on I/O
/// failure.
bool writeEngineBenchJson(const std::string &Path, const EngineBenchReport &R,
                          std::string &Error);

/// Structurally validates \p Text against the v1 schema: parses the JSON,
/// checks the schema tag, the required keys and their types, and that
/// numeric fields are non-negative. Returns false and sets \p Error on the
/// first violation.
bool validateEngineBenchJson(const std::string &Text, std::string &Error);

} // namespace olpp

#endif // OLPP_SUPPORT_BENCHJSON_H
