//===--- BenchJson.h - Engine benchmark report JSON -------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark report JSON the project commits at the repo root, in two
/// schemas:
///
///   "olpp.bench.engine/v1"   (BENCH_engine.json, bench/perf_engine and
///                            `olpp bench`): per-workload wall time and
///                            steps/sec for the fast and reference engines,
///                            the fast/reference speedup, and the interval
///                            solver's effort counters (worklist evaluations
///                            vs whole-set sweeps).
///
///   "olpp.bench.pipeline/v1" (BENCH_pipeline.json, bench/perf_pipeline):
///                            the parallel pipeline's jobs-scaling curve —
///                            per job count, the sharded collect / tree
///                            merge / component solve phase times and the
///                            profiles/sec throughput — plus the shared
///                            ExecPlan cache's hit statistics.
///
///   "olpp.bench.profdata/v1" (BENCH_profdata.json, bench/perf_profdata):
///                            the .olpp artifact pipeline — per workload the
///                            serialized artifact size vs the raw fixed-width
///                            counter-dump size, and the write / checked-read
///                            / merge throughputs.
///
///   "olpp.bench.analyze/v1"  (BENCH_analyze.json, bench/perf_analyze):
///                            the static feasibility analysis — per workload
///                            the per-function analysis time, the share of
///                            path ids proven infeasible, and the
///                            bound-tightening ratio the facts buy the
///                            interval solver.
///
///   "olpp.bench.opt/v1"      (BENCH_opt.json, bench/perf_opt): the closed
///                            profile->optimize loop — per workload the
///                            baseline-vs-optimized wall time and speedup,
///                            the inline/superblock transform counts, and
///                            the agreement bit (both modules returned the
///                            same result).
///
///   "olpp.bench.serve/v1"    (BENCH_serve.json, bench/perf_serve): the
///                            streaming aggregation daemon — fleet upload
///                            throughput, p50/p95/p99 ingest latency, the
///                            snapshot-vs-offline-merge bit-identity gate,
///                            and the ingest jobs-scaling curve (capped at
///                            hardware_threads).
///
/// Every schema carries the same provenance pair so reports from different
/// machines and commits stay comparable: "hardware_threads" (the box's
/// concurrency) and "git_rev" (the commit the binary was built from,
/// "unknown" outside a git checkout).
///
/// validate*BenchJson structurally checks a rendered report against its
/// schema with a dependency-free JSON parser (the perf_smoke ctest target
/// and `olpp bench --validate` use this); validateBenchJson sniffs the
/// schema tag and dispatches.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_SUPPORT_BENCHJSON_H
#define OLPP_SUPPORT_BENCHJSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace olpp {

/// The provenance pair every benchmark report embeds.
struct BenchProvenance {
  unsigned HardwareThreads = 1;
  std::string GitRev = "unknown";
};

/// This build's provenance: std::thread::hardware_concurrency() and the
/// compiled-in OLPP_GIT_REV (the commit the support library was configured
/// against; "unknown" when the source tree was not a git checkout).
BenchProvenance benchProvenance();

inline constexpr const char *EngineBenchSchema = "olpp.bench.engine/v1";

/// One engine's measurement of one workload.
struct EngineSample {
  double WallSeconds = 0.0;
  uint64_t Steps = 0;
  double StepsPerSec = 0.0;
};

/// One workload's row of the report.
struct WorkloadBench {
  std::string Name;
  EngineSample Fast;
  EngineSample Reference;
  /// Fast steps/sec over reference steps/sec.
  double Speedup = 0.0;
  /// Interval-solver effort on this workload's estimation system.
  uint64_t SolverEvaluationsWorklist = 0;
  uint64_t SolverEvaluationsSweep = 0;
  bool SolverConverged = true;
  /// Tracing-tier activity of the fast run (interp/TraceTier.h): traces
  /// recorded, share of executed steps spent inside traces, and deopts per
  /// trace entry.
  uint64_t TracesRecorded = 0;
  double TraceStepPercent = 0.0;
  double DeoptRate = 0.0;
  /// Bridge traces stitched onto side exits across the measurement
  /// (trace-tree linking), and entry-guard rejects per trace entry on the
  /// final timed run (cheap bounces, reported separately from mid-pass
  /// deopts).
  uint64_t Bridges = 0;
  double EntryRejectRate = 0.0;
  /// Fast-with-optimizer steps/sec over fast-without (the --no-trace-opt
  /// A/B lane); 0 when the harness did not measure the A/B lane.
  double TraceOptSpeedup = 0.0;
};

struct EngineBenchReport {
  BenchProvenance Prov = benchProvenance();
  unsigned Jobs = 1;
  double WallSeconds = 0.0; ///< whole batch, wall clock
  std::vector<WorkloadBench> Workloads;

  /// Geometric mean of the per-workload speedups (0 if empty).
  double geomeanSpeedup() const;
};

/// Renders \p R as pretty-printed JSON (trailing newline included).
std::string renderEngineBenchJson(const EngineBenchReport &R);

/// Renders and writes to \p Path. Returns false and sets \p Error on I/O
/// failure.
bool writeEngineBenchJson(const std::string &Path, const EngineBenchReport &R,
                          std::string &Error);

/// Structurally validates \p Text against the v1 schema: parses the JSON,
/// checks the schema tag, the required keys and their types, and that
/// numeric fields are non-negative. Returns false and sets \p Error on the
/// first violation.
bool validateEngineBenchJson(const std::string &Text, std::string &Error);

//===----------------------------------------------------------------------===//
// Pipeline scaling report ("olpp.bench.pipeline/v1")
//===----------------------------------------------------------------------===//

inline constexpr const char *PipelineBenchSchema = "olpp.bench.pipeline/v1";

/// One job count's measurement of the whole pipeline (collect -> merge ->
/// solve) over the workload suite.
struct PipelinePoint {
  unsigned Jobs = 1;
  /// Instrumented profile runs collected at this point (reps x workloads).
  uint64_t Profiles = 0;
  double CollectSeconds = 0.0; ///< sharded profile collection
  double MergeSeconds = 0.0;   ///< deterministic tree merge
  double SolveSeconds = 0.0;   ///< component-partitioned interval solve
  double TotalSeconds = 0.0;
  double ProfilesPerSec = 0.0;
  /// This point's pipeline throughput over the jobs=1 point's (1.0 for the
  /// jobs=1 row itself).
  double SpeedupVs1 = 0.0;
};

/// The ExecPlan cache's counters over the whole run (delta, not absolute).
struct PlanCacheBench {
  uint64_t MemoHits = 0;
  uint64_t ContentHits = 0;
  uint64_t Misses = 0;
};

struct PipelineBenchReport {
  BenchProvenance Prov = benchProvenance();
  unsigned Workloads = 0; ///< workloads in the suite each point ran
  unsigned Reps = 0;      ///< profile runs per workload per point
  double WallSeconds = 0.0;
  PlanCacheBench PlanCache;
  std::vector<PipelinePoint> Points;
};

/// Renders \p R as pretty-printed JSON (trailing newline included).
std::string renderPipelineBenchJson(const PipelineBenchReport &R);

/// Renders and writes to \p Path. Returns false and sets \p Error on I/O
/// failure.
bool writePipelineBenchJson(const std::string &Path,
                            const PipelineBenchReport &R, std::string &Error);

/// Structurally validates \p Text against the pipeline v1 schema.
bool validatePipelineBenchJson(const std::string &Text, std::string &Error);

//===----------------------------------------------------------------------===//
// Profile-artifact report ("olpp.bench.profdata/v1")
//===----------------------------------------------------------------------===//

inline constexpr const char *ProfdataBenchSchema = "olpp.bench.profdata/v1";

/// One workload's measurement of the .olpp artifact pipeline.
struct ProfdataWorkloadBench {
  std::string Name;
  uint64_t Records = 0;       ///< (slot, count) records in the artifact
  uint64_t ArtifactBytes = 0; ///< serialized .olpp size
  /// The same counters as a naive fixed-width dump (16 bytes per path
  /// record, 40 per interprocedural tuple) — the size the delta/varint
  /// encoding is up against.
  uint64_t RawDumpBytes = 0;
  double WriteSeconds = 0.0; ///< serialize, summed over the reps
  double ReadSeconds = 0.0;  ///< checked read, summed over the reps
  double MergeSeconds = 0.0; ///< merging MergeInputs copies, one pass
  double WriteMBPerSec = 0.0;
  double ReadMBPerSec = 0.0;
  double MergeRecordsPerSec = 0.0;
};

struct ProfdataBenchReport {
  BenchProvenance Prov = benchProvenance();
  unsigned Reps = 0;        ///< serialize/read repetitions per workload
  unsigned MergeInputs = 0; ///< artifacts folded by the merge measurement
  double WallSeconds = 0.0;
  std::vector<ProfdataWorkloadBench> Workloads;
};

/// Renders \p R as pretty-printed JSON (trailing newline included).
std::string renderProfdataBenchJson(const ProfdataBenchReport &R);

/// Renders and writes to \p Path. Returns false and sets \p Error on I/O
/// failure.
bool writeProfdataBenchJson(const std::string &Path,
                            const ProfdataBenchReport &R, std::string &Error);

/// Structurally validates \p Text against the profdata v1 schema.
bool validateProfdataBenchJson(const std::string &Text, std::string &Error);

//===----------------------------------------------------------------------===//
// Static-analysis report ("olpp.bench.analyze/v1")
//===----------------------------------------------------------------------===//

inline constexpr const char *AnalyzeBenchSchema = "olpp.bench.analyze/v1";

/// One workload's measurement of the static feasibility pipeline.
struct AnalyzeWorkloadBench {
  std::string Name;
  unsigned Functions = 0;
  uint64_t PathIds = 0;          ///< acyclic path ids across all functions
  uint64_t InfeasibleIds = 0;    ///< ids proven statically infeasible
  double InfeasiblePercent = 0.0;
  double SummarySeconds = 0.0;   ///< call graph + bottom-up summaries
  double EnumerateSeconds = 0.0; ///< infeasible-id DFS over every function
  double SecondsPerFunction = 0.0;
  /// Interval-solver tightening the facts buy: (potential - definite)
  /// with facts over without, <= 1; 1.0 when nothing was prunable.
  double TighteningRatio = 1.0;
  uint64_t InfeasiblePairs = 0; ///< solver cells pinned to zero
};

struct AnalyzeBenchReport {
  BenchProvenance Prov = benchProvenance();
  unsigned Reps = 0; ///< analysis repetitions per workload (times are sums)
  double WallSeconds = 0.0;
  std::vector<AnalyzeWorkloadBench> Workloads;
};

/// Renders \p R as pretty-printed JSON (trailing newline included).
std::string renderAnalyzeBenchJson(const AnalyzeBenchReport &R);

/// Renders and writes to \p Path. Returns false and sets \p Error on I/O
/// failure.
bool writeAnalyzeBenchJson(const std::string &Path,
                           const AnalyzeBenchReport &R, std::string &Error);

/// Structurally validates \p Text against the analyze v1 schema.
bool validateAnalyzeBenchJson(const std::string &Text, std::string &Error);

//===----------------------------------------------------------------------===//
// Profile-guided optimization report ("olpp.bench.opt/v1")
//===----------------------------------------------------------------------===//

inline constexpr const char *OptBenchSchema = "olpp.bench.opt/v1";

/// One workload's profiled-then-optimized measurement: the pristine module
/// vs the module `olpp opt` produced from its own .olpp artifact, both
/// uninstrumented on the fast engine.
struct OptWorkloadBench {
  std::string Name;
  unsigned InlinedSites = 0;
  unsigned Superblocks = 0;
  uint64_t BaselineSteps = 0;
  uint64_t OptimizedSteps = 0;
  uint64_t BaselineCalls = 0;
  uint64_t OptimizedCalls = 0;
  double BaselineSeconds = 0.0;  ///< best-of-reps wall time, pristine
  double OptimizedSeconds = 0.0; ///< best-of-reps wall time, optimized
  double Speedup = 0.0;          ///< baseline/optimized wall time; >1 wins
  /// Both modules returned the same result (a report with a disagreement
  /// is invalid: the optimizer broke the program, timing it is meaningless).
  bool Agree = false;
};

struct OptBenchReport {
  BenchProvenance Prov = benchProvenance();
  unsigned Reps = 0; ///< timed repetitions per module (best-of)
  double WallSeconds = 0.0;
  std::vector<OptWorkloadBench> Workloads;
};

/// Renders \p R as pretty-printed JSON (trailing newline included).
std::string renderOptBenchJson(const OptBenchReport &R);

/// Renders and writes to \p Path. Returns false and sets \p Error on I/O
/// failure.
bool writeOptBenchJson(const std::string &Path, const OptBenchReport &R,
                       std::string &Error);

/// Structurally validates \p Text against the opt v1 schema.
bool validateOptBenchJson(const std::string &Text, std::string &Error);

//===----------------------------------------------------------------------===//
// Streaming-aggregation report ("olpp.bench.serve/v1")
//===----------------------------------------------------------------------===//

inline constexpr const char *ServeBenchSchema = "olpp.bench.serve/v1";

/// One job count's ingest-throughput measurement (the daemon's TaskPool
/// sized to Jobs workers; the fleet re-runs the same upload batch).
struct ServeScalingPoint {
  unsigned Jobs = 1;
  uint64_t Uploads = 0;
  double WallSeconds = 0.0;
  double UploadsPerSec = 0.0;
  /// This point's throughput over the jobs=1 point's (1.0 for jobs=1).
  double SpeedupVs1 = 0.0;
};

struct ServeBenchReport {
  BenchProvenance Prov = benchProvenance();
  std::string Workload;         ///< workload the corpus derives from
  unsigned CorpusArtifacts = 0; ///< distinct artifacts in the corpus
  uint64_t CorpusBytes = 0;     ///< their total serialized size
  unsigned Clients = 0;         ///< concurrent fleet connections
  unsigned UploadsPerClient = 0;
  uint64_t Uploads = 0; ///< acked uploads in the latency measurement
  double WallSeconds = 0.0;       ///< whole harness, wall clock
  double IngestWallSeconds = 0.0; ///< the timed fleet run
  double UploadsPerSec = 0.0;
  double MBPerSec = 0.0; ///< acked payload bytes over the timed run
  /// Per-upload round-trip (send to ack) percentiles, microseconds.
  double P50LatencyUs = 0.0;
  double P95LatencyUs = 0.0;
  double P99LatencyUs = 0.0;
  uint64_t SnapshotEpoch = 0;
  /// The in-harness gate: the final snapshot was bit-identical to the
  /// offline `profdata merge` fold of exactly the acked uploads. A report
  /// without this property is invalid — its throughput numbers describe a
  /// server that loses or duplicates data.
  bool BitIdentity = false;
  std::vector<ServeScalingPoint> JobsScaling;
};

/// Renders \p R as pretty-printed JSON (trailing newline included).
std::string renderServeBenchJson(const ServeBenchReport &R);

/// Renders and writes to \p Path. Returns false and sets \p Error on I/O
/// failure.
bool writeServeBenchJson(const std::string &Path, const ServeBenchReport &R,
                         std::string &Error);

/// Structurally validates \p Text against the serve v1 schema.
bool validateServeBenchJson(const std::string &Text, std::string &Error);

/// Sniffs the report's schema tag and validates against the matching
/// schema. Returns false and sets \p Error for unparseable input, an
/// unknown schema tag, or a schema violation.
bool validateBenchJson(const std::string &Text, std::string &Error);

} // namespace olpp

#endif // OLPP_SUPPORT_BENCHJSON_H
