//===--- TableWriter.h - Aligned text/CSV table output ---------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small helper that accumulates rows of strings and renders them either as
/// an aligned plain-text table (for the bench binaries that mirror the
/// paper's tables) or as CSV (for plotting the figure sweeps).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_SUPPORT_TABLEWRITER_H
#define OLPP_SUPPORT_TABLEWRITER_H

#include <string>
#include <vector>

namespace olpp {

/// Accumulates a rectangular table of cells and renders it.
class TableWriter {
public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> Headers);

  /// Appends one row; its arity must match the header arity.
  void addRow(std::vector<std::string> Cells);

  /// Renders an aligned plain-text table with a header separator line.
  std::string renderText() const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string renderCsv() const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace olpp

#endif // OLPP_SUPPORT_TABLEWRITER_H
