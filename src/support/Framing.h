//===- Framing.h - length-prefixed frame protocol for olpp serve ----------===//
//
// Wire format shared by `olpp serve`, `olpp serve-bench`, the serve tests
// and fuzz oracle 11. Every message on a serve connection is one frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     1  type          (FrameType, u8)
//        1     4  payload crc32 (little endian, over the payload bytes)
//        5     8  payload len   (little endian u64)
//       13     N  payload
//
// The reader is incremental: bytes arrive in arbitrary slices (a slow
// client may deliver one byte per read), and `next` yields complete
// frames as they materialize. Two properties matter for robustness:
//
//  * Oversized declared lengths are rejected when the 13-byte header
//    completes, BEFORE any payload allocation — a hostile length field
//    can never drive the server into bad_alloc.
//  * Any framing violation (bad length, CRC mismatch) puts the reader in
//    a sticky Error state; the connection owner replies with a structured
//    error and closes. No resynchronization is attempted.
//
//===----------------------------------------------------------------------===//
#ifndef OLPP_SUPPORT_FRAMING_H
#define OLPP_SUPPORT_FRAMING_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace olpp {

/// Frame type tags. Client-originated tags have the high bit clear,
/// server replies have it set; `FrameReader` itself is direction-agnostic
/// and accepts any tag (type validation is the session's job).
enum class FrameType : uint8_t {
  // Client -> server.
  Upload = 0x01,   ///< payload: raw .olpp artifact bytes
  Snapshot = 0x02, ///< payload: empty, or u64 LE fingerprint selector
  Stats = 0x03,    ///< payload: empty
  Quit = 0x04,     ///< payload: empty; orderly connection shutdown
  // Server -> client.
  Ack = 0x81,          ///< payload: u64 seq | u64 epoch tag | u64 fingerprint
  Err = 0x82,          ///< payload: u32 code | utf-8 message
  SnapshotData = 0x83, ///< payload: u64 epoch | artifact bytes
  StatsData = 0x84,    ///< payload: utf-8 JSON
};

/// A completed frame. The payload is an owned copy: frames outlive the
/// reader's internal buffer (they are handed to TaskPool folds).
struct Frame {
  FrameType Type = FrameType::Upload;
  std::string Payload;
};

/// Result of FrameReader::next().
enum class FrameStatus : uint8_t {
  Frame,    ///< a complete frame was produced
  NeedMore, ///< no complete frame buffered; feed more bytes
  Error,    ///< framing violation; reader is permanently poisoned
};

/// Byte size of the fixed frame header (type + crc + length).
inline constexpr size_t FrameHeaderSize = 13;

/// Default cap on a single frame's payload. Artifacts from the embedded
/// workload suite are a few KiB; 64 MiB leaves three orders of magnitude
/// of headroom while bounding per-connection memory.
inline constexpr uint64_t DefaultMaxFramePayload = 64ull << 20;

/// Encode one frame (header + payload) ready to write to a socket.
std::string encodeFrame(FrameType Type, std::string_view Payload);

/// Incremental decoder for a stream of frames.
class FrameReader {
public:
  explicit FrameReader(uint64_t MaxPayload = DefaultMaxFramePayload)
      : MaxPayload(MaxPayload) {}

  /// Append raw bytes received from the peer.
  void feed(std::string_view Bytes);

  /// Try to decode the next complete frame. On FrameStatus::Frame, `Out`
  /// holds the frame; otherwise `Out` is untouched.
  FrameStatus next(Frame &Out);

  /// True once a framing violation was seen; all further next() calls
  /// return Error and feed() becomes a no-op.
  bool poisoned() const { return Poisoned; }

  /// Human-readable description of the violation (empty when clean).
  const std::string &error() const { return ErrorMsg; }

  /// True if the buffer ends mid-frame: a partial header, or a complete
  /// header whose payload has not fully arrived. Used to detect clients
  /// that disconnect mid-upload.
  bool midFrame() const { return !Poisoned && !Buf.empty(); }

  /// Bytes currently buffered (diagnostics / budget accounting).
  size_t buffered() const { return Buf.size(); }

private:
  uint64_t MaxPayload;
  std::string Buf;
  bool Poisoned = false;
  std::string ErrorMsg;
};

} // namespace olpp

#endif // OLPP_SUPPORT_FRAMING_H
