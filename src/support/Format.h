//===--- Format.h - Small string formatting helpers ------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny formatting helpers shared by the table writer, the benches and the
/// textual IR printer. Kept deliberately small; no iostreams in headers.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_SUPPORT_FORMAT_H
#define OLPP_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace olpp {

/// Formats \p Value with \p Decimals digits after the decimal point.
std::string formatFixed(double Value, int Decimals);

/// Formats \p Value as a signed percentage, e.g. "-33.6 %" or "+4.4 %".
std::string formatSignedPercent(double Value, int Decimals = 1);

/// Formats an integer with thousands separators, e.g. "3539310" -> "3539310".
/// (Separators intentionally omitted from machine-readable output; this adds
/// them only when \p Grouped is true.)
std::string formatInt(int64_t Value, bool Grouped = false);

/// Left-pads \p S with spaces to at least \p Width characters.
std::string padLeft(const std::string &S, size_t Width);

/// Right-pads \p S with spaces to at least \p Width characters.
std::string padRight(const std::string &S, size_t Width);

} // namespace olpp

#endif // OLPP_SUPPORT_FORMAT_H
