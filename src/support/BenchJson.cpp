//===--- BenchJson.cpp - Engine benchmark report JSON ---------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/BenchJson.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <thread>

using namespace olpp;

// The build system compiles the short HEAD revision in; a tarball build
// falls back to "unknown" so the field is always present and non-empty.
#ifndef OLPP_GIT_REV
#define OLPP_GIT_REV "unknown"
#endif

BenchProvenance olpp::benchProvenance() {
  BenchProvenance P;
  unsigned N = std::thread::hardware_concurrency();
  P.HardwareThreads = N ? N : 1;
  P.GitRev = OLPP_GIT_REV;
  if (P.GitRev.empty())
    P.GitRev = "unknown";
  return P;
}

double EngineBenchReport::geomeanSpeedup() const {
  if (Workloads.empty())
    return 0.0;
  double LogSum = 0.0;
  for (const WorkloadBench &W : Workloads)
    LogSum += std::log(W.Speedup > 0 ? W.Speedup : 1e-9);
  return std::exp(LogSum / static_cast<double>(Workloads.size()));
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

std::string jsonNum(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

std::string jsonStr(const std::string &S) {
  std::string Out = "\"";
  for (char Ch : S) {
    if (Ch == '"' || Ch == '\\')
      Out += '\\';
    Out += Ch;
  }
  return Out + "\"";
}

/// The provenance pair every schema leads with, right after the tag.
void renderProvenance(std::string &Out, const BenchProvenance &P) {
  Out += "  \"hardware_threads\": " + std::to_string(P.HardwareThreads) +
         ",\n";
  Out += "  \"git_rev\": " + jsonStr(P.GitRev.empty() ? "unknown" : P.GitRev) +
         ",\n";
}

void renderSample(std::string &Out, const char *Name, const EngineSample &S,
                  const char *Indent) {
  Out += Indent;
  Out += jsonStr(Name) + ": {";
  Out += "\"wall_seconds\": " + jsonNum(S.WallSeconds);
  Out += ", \"steps\": " + std::to_string(S.Steps);
  Out += ", \"steps_per_sec\": " + jsonNum(S.StepsPerSec);
  Out += "}";
}

} // namespace

std::string olpp::renderEngineBenchJson(const EngineBenchReport &R) {
  std::string Out = "{\n";
  Out += "  \"schema\": " + jsonStr(EngineBenchSchema) + ",\n";
  renderProvenance(Out, R.Prov);
  Out += "  \"jobs\": " + std::to_string(R.Jobs) + ",\n";
  Out += "  \"wall_seconds\": " + jsonNum(R.WallSeconds) + ",\n";
  Out += "  \"geomean_speedup\": " + jsonNum(R.geomeanSpeedup()) + ",\n";
  Out += "  \"workloads\": [";
  for (size_t I = 0; I < R.Workloads.size(); ++I) {
    const WorkloadBench &W = R.Workloads[I];
    Out += I ? ",\n" : "\n";
    Out += "    {\n";
    Out += "      \"name\": " + jsonStr(W.Name) + ",\n";
    renderSample(Out, "fast", W.Fast, "      ");
    Out += ",\n";
    renderSample(Out, "reference", W.Reference, "      ");
    Out += ",\n";
    Out += "      \"speedup\": " + jsonNum(W.Speedup) + ",\n";
    Out += "      \"traces_recorded\": " + std::to_string(W.TracesRecorded) +
           ",\n";
    Out += "      \"trace_step_percent\": " + jsonNum(W.TraceStepPercent) +
           ",\n";
    Out += "      \"deopt_rate\": " + jsonNum(W.DeoptRate) + ",\n";
    Out += "      \"bridges\": " + std::to_string(W.Bridges) + ",\n";
    Out += "      \"entry_reject_rate\": " + jsonNum(W.EntryRejectRate) +
           ",\n";
    Out += "      \"trace_opt_speedup\": " + jsonNum(W.TraceOptSpeedup) +
           ",\n";
    Out += "      \"solver\": {\"evaluations_worklist\": " +
           std::to_string(W.SolverEvaluationsWorklist) +
           ", \"evaluations_sweep\": " +
           std::to_string(W.SolverEvaluationsSweep) + ", \"converged\": " +
           (W.SolverConverged ? "true" : "false") + "}\n";
    Out += "    }";
  }
  Out += R.Workloads.empty() ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

namespace {

bool writeTextFile(const std::string &Path, const std::string &Text,
                   std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok &= std::fclose(F) == 0;
  if (!Ok)
    Error = "write to '" + Path + "' failed";
  return Ok;
}

} // namespace

bool olpp::writeEngineBenchJson(const std::string &Path,
                                const EngineBenchReport &R,
                                std::string &Error) {
  return writeTextFile(Path, renderEngineBenchJson(R), Error);
}

std::string olpp::renderPipelineBenchJson(const PipelineBenchReport &R) {
  std::string Out = "{\n";
  Out += "  \"schema\": " + jsonStr(PipelineBenchSchema) + ",\n";
  renderProvenance(Out, R.Prov);
  Out += "  \"workloads\": " + std::to_string(R.Workloads) + ",\n";
  Out += "  \"reps\": " + std::to_string(R.Reps) + ",\n";
  Out += "  \"wall_seconds\": " + jsonNum(R.WallSeconds) + ",\n";
  Out += "  \"plan_cache\": {\"memo_hits\": " +
         std::to_string(R.PlanCache.MemoHits) +
         ", \"content_hits\": " + std::to_string(R.PlanCache.ContentHits) +
         ", \"misses\": " + std::to_string(R.PlanCache.Misses) + "},\n";
  Out += "  \"points\": [";
  for (size_t I = 0; I < R.Points.size(); ++I) {
    const PipelinePoint &P = R.Points[I];
    Out += I ? ",\n" : "\n";
    Out += "    {\n";
    Out += "      \"jobs\": " + std::to_string(P.Jobs) + ",\n";
    Out += "      \"profiles\": " + std::to_string(P.Profiles) + ",\n";
    Out += "      \"collect_seconds\": " + jsonNum(P.CollectSeconds) + ",\n";
    Out += "      \"merge_seconds\": " + jsonNum(P.MergeSeconds) + ",\n";
    Out += "      \"solve_seconds\": " + jsonNum(P.SolveSeconds) + ",\n";
    Out += "      \"total_seconds\": " + jsonNum(P.TotalSeconds) + ",\n";
    Out += "      \"profiles_per_sec\": " + jsonNum(P.ProfilesPerSec) + ",\n";
    Out += "      \"speedup_vs_1\": " + jsonNum(P.SpeedupVs1) + "\n";
    Out += "    }";
  }
  Out += R.Points.empty() ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

bool olpp::writePipelineBenchJson(const std::string &Path,
                                  const PipelineBenchReport &R,
                                  std::string &Error) {
  return writeTextFile(Path, renderPipelineBenchJson(R), Error);
}

//===----------------------------------------------------------------------===//
// Validation: a tiny recursive-descent JSON parser, then schema checks
//===----------------------------------------------------------------------===//

namespace {

/// Just enough of a JSON value for structural validation.
struct JValue {
  enum Kind { Null, Bool, Num, Str, Arr, Obj } K = Null;
  bool B = false;
  double N = 0.0;
  std::string S;
  std::vector<JValue> Elems;
  std::map<std::string, JValue> Fields;
};

class JParser {
public:
  JParser(const std::string &Text, std::string &Error)
      : T(Text), Error(Error) {}

  bool parse(JValue &Out) {
    if (!value(Out))
      return false;
    skipWs();
    if (Pos != T.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    Error = "JSON parse error at offset " + std::to_string(Pos) + ": " + Msg;
    return false;
  }

  void skipWs() {
    while (Pos < T.size() && std::isspace(static_cast<unsigned char>(T[Pos])))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t Len = std::string(Lit).size();
    if (T.compare(Pos, Len, Lit) != 0)
      return fail(std::string("expected '") + Lit + "'");
    Pos += Len;
    return true;
  }

  bool string(std::string &Out) {
    if (Pos >= T.size() || T[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < T.size() && T[Pos] != '"') {
      if (T[Pos] == '\\') {
        ++Pos;
        if (Pos >= T.size())
          return fail("truncated escape");
      }
      Out += T[Pos++];
    }
    if (Pos >= T.size())
      return fail("unterminated string");
    ++Pos;
    return true;
  }

  bool value(JValue &Out) {
    skipWs();
    if (Pos >= T.size())
      return fail("unexpected end of input");
    char Ch = T[Pos];
    if (Ch == '{') {
      Out.K = JValue::Obj;
      ++Pos;
      skipWs();
      if (Pos < T.size() && T[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!string(Key))
          return false;
        skipWs();
        if (Pos >= T.size() || T[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        JValue V;
        if (!value(V))
          return false;
        Out.Fields.emplace(std::move(Key), std::move(V));
        skipWs();
        if (Pos < T.size() && T[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < T.size() && T[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (Ch == '[') {
      Out.K = JValue::Arr;
      ++Pos;
      skipWs();
      if (Pos < T.size() && T[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        JValue V;
        if (!value(V))
          return false;
        Out.Elems.push_back(std::move(V));
        skipWs();
        if (Pos < T.size() && T[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < T.size() && T[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (Ch == '"') {
      Out.K = JValue::Str;
      return string(Out.S);
    }
    if (Ch == 't') {
      Out.K = JValue::Bool;
      Out.B = true;
      return literal("true");
    }
    if (Ch == 'f') {
      Out.K = JValue::Bool;
      Out.B = false;
      return literal("false");
    }
    if (Ch == 'n') {
      Out.K = JValue::Null;
      return literal("null");
    }
    // Number.
    size_t Start = Pos;
    if (Pos < T.size() && (T[Pos] == '-' || T[Pos] == '+'))
      ++Pos;
    while (Pos < T.size() &&
           (std::isdigit(static_cast<unsigned char>(T[Pos])) ||
            T[Pos] == '.' || T[Pos] == 'e' || T[Pos] == 'E' ||
            T[Pos] == '-' || T[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    Out.K = JValue::Num;
    Out.N = std::strtod(T.substr(Start, Pos - Start).c_str(), nullptr);
    return true;
  }

  const std::string &T;
  std::string &Error;
  size_t Pos = 0;
};

bool checkNum(const JValue &Obj, const std::string &Path, const char *Key,
              std::string &Error) {
  auto It = Obj.Fields.find(Key);
  if (It == Obj.Fields.end()) {
    Error = Path + ": missing key \"" + Key + "\"";
    return false;
  }
  if (It->second.K != JValue::Num) {
    Error = Path + "." + Key + ": expected a number";
    return false;
  }
  if (It->second.N < 0) {
    Error = Path + "." + Key + ": must be non-negative";
    return false;
  }
  return true;
}

/// Every schema's provenance pair: a non-negative "hardware_threads" and a
/// non-empty "git_rev" string.
bool checkProvenance(const JValue &Root, std::string &Error) {
  if (!checkNum(Root, "top level", "hardware_threads", Error))
    return false;
  auto Rev = Root.Fields.find("git_rev");
  if (Rev == Root.Fields.end() || Rev->second.K != JValue::Str ||
      Rev->second.S.empty()) {
    Error = "top level: missing non-empty string \"git_rev\"";
    return false;
  }
  return true;
}

bool checkSample(const JValue &Row, const std::string &Path, const char *Key,
                 std::string &Error) {
  auto It = Row.Fields.find(Key);
  if (It == Row.Fields.end() || It->second.K != JValue::Obj) {
    Error = Path + ": missing engine object \"" + std::string(Key) + "\"";
    return false;
  }
  const std::string P = Path + "." + Key;
  return checkNum(It->second, P, "wall_seconds", Error) &&
         checkNum(It->second, P, "steps", Error) &&
         checkNum(It->second, P, "steps_per_sec", Error);
}

} // namespace

bool olpp::validateEngineBenchJson(const std::string &Text,
                                   std::string &Error) {
  JValue Root;
  if (!JParser(Text, Error).parse(Root))
    return false;
  if (Root.K != JValue::Obj) {
    Error = "top level: expected an object";
    return false;
  }
  auto Schema = Root.Fields.find("schema");
  if (Schema == Root.Fields.end() || Schema->second.K != JValue::Str ||
      Schema->second.S != EngineBenchSchema) {
    Error = std::string("schema: expected \"") + EngineBenchSchema + "\"";
    return false;
  }
  if (!checkProvenance(Root, Error) ||
      !checkNum(Root, "top level", "jobs", Error) ||
      !checkNum(Root, "top level", "wall_seconds", Error) ||
      !checkNum(Root, "top level", "geomean_speedup", Error))
    return false;
  auto WL = Root.Fields.find("workloads");
  if (WL == Root.Fields.end() || WL->second.K != JValue::Arr) {
    Error = "workloads: missing or not an array";
    return false;
  }
  for (size_t I = 0; I < WL->second.Elems.size(); ++I) {
    const JValue &Row = WL->second.Elems[I];
    const std::string Path = "workloads[" + std::to_string(I) + "]";
    if (Row.K != JValue::Obj) {
      Error = Path + ": expected an object";
      return false;
    }
    auto Name = Row.Fields.find("name");
    if (Name == Row.Fields.end() || Name->second.K != JValue::Str ||
        Name->second.S.empty()) {
      Error = Path + ": missing non-empty \"name\"";
      return false;
    }
    if (!checkSample(Row, Path, "fast", Error) ||
        !checkSample(Row, Path, "reference", Error) ||
        !checkNum(Row, Path, "speedup", Error) ||
        !checkNum(Row, Path, "traces_recorded", Error) ||
        !checkNum(Row, Path, "trace_step_percent", Error) ||
        !checkNum(Row, Path, "deopt_rate", Error) ||
        !checkNum(Row, Path, "bridges", Error) ||
        !checkNum(Row, Path, "entry_reject_rate", Error) ||
        !checkNum(Row, Path, "trace_opt_speedup", Error))
      return false;
    auto Solver = Row.Fields.find("solver");
    if (Solver == Row.Fields.end() || Solver->second.K != JValue::Obj) {
      Error = Path + ": missing \"solver\" object";
      return false;
    }
    const std::string SP = Path + ".solver";
    if (!checkNum(Solver->second, SP, "evaluations_worklist", Error) ||
        !checkNum(Solver->second, SP, "evaluations_sweep", Error))
      return false;
    auto Conv = Solver->second.Fields.find("converged");
    if (Conv == Solver->second.Fields.end() ||
        Conv->second.K != JValue::Bool) {
      Error = SP + ": missing boolean \"converged\"";
      return false;
    }
  }
  return true;
}

bool olpp::validatePipelineBenchJson(const std::string &Text,
                                     std::string &Error) {
  JValue Root;
  if (!JParser(Text, Error).parse(Root))
    return false;
  if (Root.K != JValue::Obj) {
    Error = "top level: expected an object";
    return false;
  }
  auto Schema = Root.Fields.find("schema");
  if (Schema == Root.Fields.end() || Schema->second.K != JValue::Str ||
      Schema->second.S != PipelineBenchSchema) {
    Error = std::string("schema: expected \"") + PipelineBenchSchema + "\"";
    return false;
  }
  if (!checkProvenance(Root, Error) ||
      !checkNum(Root, "top level", "workloads", Error) ||
      !checkNum(Root, "top level", "reps", Error) ||
      !checkNum(Root, "top level", "wall_seconds", Error))
    return false;
  auto Cache = Root.Fields.find("plan_cache");
  if (Cache == Root.Fields.end() || Cache->second.K != JValue::Obj) {
    Error = "plan_cache: missing or not an object";
    return false;
  }
  if (!checkNum(Cache->second, "plan_cache", "memo_hits", Error) ||
      !checkNum(Cache->second, "plan_cache", "content_hits", Error) ||
      !checkNum(Cache->second, "plan_cache", "misses", Error))
    return false;
  auto Pts = Root.Fields.find("points");
  if (Pts == Root.Fields.end() || Pts->second.K != JValue::Arr) {
    Error = "points: missing or not an array";
    return false;
  }
  if (Pts->second.Elems.empty()) {
    Error = "points: must have at least one entry";
    return false;
  }
  for (size_t I = 0; I < Pts->second.Elems.size(); ++I) {
    const JValue &Row = Pts->second.Elems[I];
    const std::string Path = "points[" + std::to_string(I) + "]";
    if (Row.K != JValue::Obj) {
      Error = Path + ": expected an object";
      return false;
    }
    if (!checkNum(Row, Path, "jobs", Error) ||
        !checkNum(Row, Path, "profiles", Error) ||
        !checkNum(Row, Path, "collect_seconds", Error) ||
        !checkNum(Row, Path, "merge_seconds", Error) ||
        !checkNum(Row, Path, "solve_seconds", Error) ||
        !checkNum(Row, Path, "total_seconds", Error) ||
        !checkNum(Row, Path, "profiles_per_sec", Error) ||
        !checkNum(Row, Path, "speedup_vs_1", Error))
      return false;
    // The jobs=1 anchor is its own baseline by definition.
    auto Jobs = Row.Fields.find("jobs");
    auto Sp = Row.Fields.find("speedup_vs_1");
    if (Jobs->second.N == 1.0 && Sp->second.N != 1.0) {
      Error = Path + ": jobs=1 point must have speedup_vs_1 == 1";
      return false;
    }
    // A scaling point the hardware cannot execute concurrently measures
    // scheduler interleaving, not pipeline scaling; such curves are not
    // comparable across machines and the report is rejected wholesale.
    auto HW = Root.Fields.find("hardware_threads");
    if (Jobs->second.N > HW->second.N) {
      Error = Path + ": jobs exceeds hardware_threads (" +
              std::to_string(static_cast<unsigned>(Jobs->second.N)) + " > " +
              std::to_string(static_cast<unsigned>(HW->second.N)) +
              "); oversubscribed points do not measure scaling";
      return false;
    }
  }
  return true;
}

std::string olpp::renderProfdataBenchJson(const ProfdataBenchReport &R) {
  std::string Out = "{\n";
  Out += "  \"schema\": " + jsonStr(ProfdataBenchSchema) + ",\n";
  renderProvenance(Out, R.Prov);
  Out += "  \"reps\": " + std::to_string(R.Reps) + ",\n";
  Out += "  \"merge_inputs\": " + std::to_string(R.MergeInputs) + ",\n";
  Out += "  \"wall_seconds\": " + jsonNum(R.WallSeconds) + ",\n";
  Out += "  \"workloads\": [";
  for (size_t I = 0; I < R.Workloads.size(); ++I) {
    const ProfdataWorkloadBench &W = R.Workloads[I];
    Out += I ? ",\n" : "\n";
    Out += "    {\n";
    Out += "      \"name\": " + jsonStr(W.Name) + ",\n";
    Out += "      \"records\": " + std::to_string(W.Records) + ",\n";
    Out += "      \"artifact_bytes\": " + std::to_string(W.ArtifactBytes) +
           ",\n";
    Out += "      \"raw_dump_bytes\": " + std::to_string(W.RawDumpBytes) +
           ",\n";
    Out += "      \"write_seconds\": " + jsonNum(W.WriteSeconds) + ",\n";
    Out += "      \"read_seconds\": " + jsonNum(W.ReadSeconds) + ",\n";
    Out += "      \"merge_seconds\": " + jsonNum(W.MergeSeconds) + ",\n";
    Out += "      \"write_mb_per_sec\": " + jsonNum(W.WriteMBPerSec) + ",\n";
    Out += "      \"read_mb_per_sec\": " + jsonNum(W.ReadMBPerSec) + ",\n";
    Out += "      \"merge_records_per_sec\": " +
           jsonNum(W.MergeRecordsPerSec) + "\n";
    Out += "    }";
  }
  Out += R.Workloads.empty() ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

bool olpp::writeProfdataBenchJson(const std::string &Path,
                                  const ProfdataBenchReport &R,
                                  std::string &Error) {
  return writeTextFile(Path, renderProfdataBenchJson(R), Error);
}

bool olpp::validateProfdataBenchJson(const std::string &Text,
                                     std::string &Error) {
  JValue Root;
  if (!JParser(Text, Error).parse(Root))
    return false;
  if (Root.K != JValue::Obj) {
    Error = "top level: expected an object";
    return false;
  }
  auto Schema = Root.Fields.find("schema");
  if (Schema == Root.Fields.end() || Schema->second.K != JValue::Str ||
      Schema->second.S != ProfdataBenchSchema) {
    Error = std::string("schema: expected \"") + ProfdataBenchSchema + "\"";
    return false;
  }
  if (!checkProvenance(Root, Error) ||
      !checkNum(Root, "top level", "reps", Error) ||
      !checkNum(Root, "top level", "merge_inputs", Error) ||
      !checkNum(Root, "top level", "wall_seconds", Error))
    return false;
  auto WL = Root.Fields.find("workloads");
  if (WL == Root.Fields.end() || WL->second.K != JValue::Arr) {
    Error = "workloads: missing or not an array";
    return false;
  }
  if (WL->second.Elems.empty()) {
    Error = "workloads: must have at least one entry";
    return false;
  }
  for (size_t I = 0; I < WL->second.Elems.size(); ++I) {
    const JValue &Row = WL->second.Elems[I];
    const std::string Path = "workloads[" + std::to_string(I) + "]";
    if (Row.K != JValue::Obj) {
      Error = Path + ": expected an object";
      return false;
    }
    auto Name = Row.Fields.find("name");
    if (Name == Row.Fields.end() || Name->second.K != JValue::Str ||
        Name->second.S.empty()) {
      Error = Path + ": missing non-empty \"name\"";
      return false;
    }
    if (!checkNum(Row, Path, "records", Error) ||
        !checkNum(Row, Path, "artifact_bytes", Error) ||
        !checkNum(Row, Path, "raw_dump_bytes", Error) ||
        !checkNum(Row, Path, "write_seconds", Error) ||
        !checkNum(Row, Path, "read_seconds", Error) ||
        !checkNum(Row, Path, "merge_seconds", Error) ||
        !checkNum(Row, Path, "write_mb_per_sec", Error) ||
        !checkNum(Row, Path, "read_mb_per_sec", Error) ||
        !checkNum(Row, Path, "merge_records_per_sec", Error))
      return false;
    // An artifact is never empty: the header + four required sections alone
    // take bytes, so a zero size means the benchmark measured nothing.
    auto Bytes = Row.Fields.find("artifact_bytes");
    if (Bytes->second.N <= 0) {
      Error = Path + ": artifact_bytes must be positive";
      return false;
    }
  }
  return true;
}

std::string olpp::renderAnalyzeBenchJson(const AnalyzeBenchReport &R) {
  std::string Out = "{\n";
  Out += "  \"schema\": " + jsonStr(AnalyzeBenchSchema) + ",\n";
  renderProvenance(Out, R.Prov);
  Out += "  \"reps\": " + std::to_string(R.Reps) + ",\n";
  Out += "  \"wall_seconds\": " + jsonNum(R.WallSeconds) + ",\n";
  Out += "  \"workloads\": [";
  for (size_t I = 0; I < R.Workloads.size(); ++I) {
    const AnalyzeWorkloadBench &W = R.Workloads[I];
    Out += I ? ",\n" : "\n";
    Out += "    {\n";
    Out += "      \"name\": " + jsonStr(W.Name) + ",\n";
    Out += "      \"functions\": " + std::to_string(W.Functions) + ",\n";
    Out += "      \"path_ids\": " + std::to_string(W.PathIds) + ",\n";
    Out += "      \"infeasible_ids\": " + std::to_string(W.InfeasibleIds) +
           ",\n";
    Out += "      \"infeasible_percent\": " + jsonNum(W.InfeasiblePercent) +
           ",\n";
    Out += "      \"summary_seconds\": " + jsonNum(W.SummarySeconds) + ",\n";
    Out += "      \"enumerate_seconds\": " + jsonNum(W.EnumerateSeconds) +
           ",\n";
    Out += "      \"seconds_per_function\": " +
           jsonNum(W.SecondsPerFunction) + ",\n";
    Out += "      \"tightening_ratio\": " + jsonNum(W.TighteningRatio) +
           ",\n";
    Out += "      \"infeasible_pairs\": " + std::to_string(W.InfeasiblePairs) +
           "\n";
    Out += "    }";
  }
  Out += R.Workloads.empty() ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

bool olpp::writeAnalyzeBenchJson(const std::string &Path,
                                 const AnalyzeBenchReport &R,
                                 std::string &Error) {
  return writeTextFile(Path, renderAnalyzeBenchJson(R), Error);
}

bool olpp::validateAnalyzeBenchJson(const std::string &Text,
                                    std::string &Error) {
  JValue Root;
  if (!JParser(Text, Error).parse(Root))
    return false;
  if (Root.K != JValue::Obj) {
    Error = "top level: expected an object";
    return false;
  }
  auto Schema = Root.Fields.find("schema");
  if (Schema == Root.Fields.end() || Schema->second.K != JValue::Str ||
      Schema->second.S != AnalyzeBenchSchema) {
    Error = std::string("schema: expected \"") + AnalyzeBenchSchema + "\"";
    return false;
  }
  if (!checkProvenance(Root, Error) ||
      !checkNum(Root, "top level", "reps", Error) ||
      !checkNum(Root, "top level", "wall_seconds", Error))
    return false;
  auto WL = Root.Fields.find("workloads");
  if (WL == Root.Fields.end() || WL->second.K != JValue::Arr) {
    Error = "workloads: missing or not an array";
    return false;
  }
  if (WL->second.Elems.empty()) {
    Error = "workloads: must have at least one entry";
    return false;
  }
  for (size_t I = 0; I < WL->second.Elems.size(); ++I) {
    const JValue &Row = WL->second.Elems[I];
    const std::string Path = "workloads[" + std::to_string(I) + "]";
    if (Row.K != JValue::Obj) {
      Error = Path + ": expected an object";
      return false;
    }
    auto Name = Row.Fields.find("name");
    if (Name == Row.Fields.end() || Name->second.K != JValue::Str ||
        Name->second.S.empty()) {
      Error = Path + ": missing non-empty \"name\"";
      return false;
    }
    if (!checkNum(Row, Path, "functions", Error) ||
        !checkNum(Row, Path, "path_ids", Error) ||
        !checkNum(Row, Path, "infeasible_ids", Error) ||
        !checkNum(Row, Path, "infeasible_percent", Error) ||
        !checkNum(Row, Path, "summary_seconds", Error) ||
        !checkNum(Row, Path, "enumerate_seconds", Error) ||
        !checkNum(Row, Path, "seconds_per_function", Error) ||
        !checkNum(Row, Path, "tightening_ratio", Error) ||
        !checkNum(Row, Path, "infeasible_pairs", Error))
      return false;
    // Facts are hard zero constraints in a monotone solver: they can only
    // shrink the definite..potential gap, so the ratio never exceeds 1.
    auto Ratio = Row.Fields.find("tightening_ratio");
    if (Ratio->second.N > 1.0) {
      Error = Path + ": tightening_ratio must be <= 1";
      return false;
    }
    auto Ids = Row.Fields.find("infeasible_ids");
    auto Space = Row.Fields.find("path_ids");
    if (Ids->second.N > Space->second.N) {
      Error = Path + ": infeasible_ids must not exceed path_ids";
      return false;
    }
  }
  return true;
}

std::string olpp::renderOptBenchJson(const OptBenchReport &R) {
  std::string Out = "{\n";
  Out += "  \"schema\": " + jsonStr(OptBenchSchema) + ",\n";
  renderProvenance(Out, R.Prov);
  Out += "  \"reps\": " + std::to_string(R.Reps) + ",\n";
  Out += "  \"wall_seconds\": " + jsonNum(R.WallSeconds) + ",\n";
  Out += "  \"workloads\": [";
  for (size_t I = 0; I < R.Workloads.size(); ++I) {
    const OptWorkloadBench &W = R.Workloads[I];
    Out += I ? ",\n" : "\n";
    Out += "    {\n";
    Out += "      \"name\": " + jsonStr(W.Name) + ",\n";
    Out += "      \"inlined_sites\": " + std::to_string(W.InlinedSites) +
           ",\n";
    Out += "      \"superblocks\": " + std::to_string(W.Superblocks) + ",\n";
    Out += "      \"baseline_steps\": " + std::to_string(W.BaselineSteps) +
           ",\n";
    Out += "      \"optimized_steps\": " + std::to_string(W.OptimizedSteps) +
           ",\n";
    Out += "      \"baseline_calls\": " + std::to_string(W.BaselineCalls) +
           ",\n";
    Out += "      \"optimized_calls\": " + std::to_string(W.OptimizedCalls) +
           ",\n";
    Out += "      \"baseline_seconds\": " + jsonNum(W.BaselineSeconds) +
           ",\n";
    Out += "      \"optimized_seconds\": " + jsonNum(W.OptimizedSeconds) +
           ",\n";
    Out += "      \"speedup\": " + jsonNum(W.Speedup) + ",\n";
    Out += std::string("      \"agree\": ") + (W.Agree ? "true" : "false") +
           "\n";
    Out += "    }";
  }
  Out += R.Workloads.empty() ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

bool olpp::writeOptBenchJson(const std::string &Path, const OptBenchReport &R,
                             std::string &Error) {
  return writeTextFile(Path, renderOptBenchJson(R), Error);
}

bool olpp::validateOptBenchJson(const std::string &Text, std::string &Error) {
  JValue Root;
  if (!JParser(Text, Error).parse(Root))
    return false;
  if (Root.K != JValue::Obj) {
    Error = "top level: expected an object";
    return false;
  }
  auto Schema = Root.Fields.find("schema");
  if (Schema == Root.Fields.end() || Schema->second.K != JValue::Str ||
      Schema->second.S != OptBenchSchema) {
    Error = std::string("schema: expected \"") + OptBenchSchema + "\"";
    return false;
  }
  if (!checkProvenance(Root, Error) ||
      !checkNum(Root, "top level", "reps", Error) ||
      !checkNum(Root, "top level", "wall_seconds", Error))
    return false;
  auto WL = Root.Fields.find("workloads");
  if (WL == Root.Fields.end() || WL->second.K != JValue::Arr) {
    Error = "workloads: missing or not an array";
    return false;
  }
  if (WL->second.Elems.empty()) {
    Error = "workloads: must have at least one entry";
    return false;
  }
  for (size_t I = 0; I < WL->second.Elems.size(); ++I) {
    const JValue &Row = WL->second.Elems[I];
    const std::string Path = "workloads[" + std::to_string(I) + "]";
    if (Row.K != JValue::Obj) {
      Error = Path + ": expected an object";
      return false;
    }
    auto Name = Row.Fields.find("name");
    if (Name == Row.Fields.end() || Name->second.K != JValue::Str ||
        Name->second.S.empty()) {
      Error = Path + ": missing non-empty \"name\"";
      return false;
    }
    if (!checkNum(Row, Path, "inlined_sites", Error) ||
        !checkNum(Row, Path, "superblocks", Error) ||
        !checkNum(Row, Path, "baseline_steps", Error) ||
        !checkNum(Row, Path, "optimized_steps", Error) ||
        !checkNum(Row, Path, "baseline_calls", Error) ||
        !checkNum(Row, Path, "optimized_calls", Error) ||
        !checkNum(Row, Path, "baseline_seconds", Error) ||
        !checkNum(Row, Path, "optimized_seconds", Error) ||
        !checkNum(Row, Path, "speedup", Error))
      return false;
    // A disagreement means the optimizer broke the program; the timing
    // columns of such a row are meaningless and the report is invalid.
    auto Agree = Row.Fields.find("agree");
    if (Agree == Row.Fields.end() || Agree->second.K != JValue::Bool) {
      Error = Path + ": missing boolean \"agree\"";
      return false;
    }
    if (!Agree->second.B) {
      Error = Path + ": agree must be true (the optimized module diverged "
                     "from the baseline)";
      return false;
    }
    // Timing a module that never ran is the other way to lie.
    auto Secs = Row.Fields.find("optimized_seconds");
    if (Secs->second.N <= 0) {
      Error = Path + ": optimized_seconds must be positive";
      return false;
    }
  }
  return true;
}

std::string olpp::renderServeBenchJson(const ServeBenchReport &R) {
  std::string Out = "{\n";
  Out += "  \"schema\": " + jsonStr(ServeBenchSchema) + ",\n";
  renderProvenance(Out, R.Prov);
  Out += "  \"workload\": " + jsonStr(R.Workload) + ",\n";
  Out += "  \"corpus_artifacts\": " + std::to_string(R.CorpusArtifacts) +
         ",\n";
  Out += "  \"corpus_bytes\": " + std::to_string(R.CorpusBytes) + ",\n";
  Out += "  \"clients\": " + std::to_string(R.Clients) + ",\n";
  Out += "  \"uploads_per_client\": " + std::to_string(R.UploadsPerClient) +
         ",\n";
  Out += "  \"uploads\": " + std::to_string(R.Uploads) + ",\n";
  Out += "  \"wall_seconds\": " + jsonNum(R.WallSeconds) + ",\n";
  Out += "  \"ingest_wall_seconds\": " + jsonNum(R.IngestWallSeconds) + ",\n";
  Out += "  \"uploads_per_sec\": " + jsonNum(R.UploadsPerSec) + ",\n";
  Out += "  \"mb_per_sec\": " + jsonNum(R.MBPerSec) + ",\n";
  Out += "  \"p50_latency_us\": " + jsonNum(R.P50LatencyUs) + ",\n";
  Out += "  \"p95_latency_us\": " + jsonNum(R.P95LatencyUs) + ",\n";
  Out += "  \"p99_latency_us\": " + jsonNum(R.P99LatencyUs) + ",\n";
  Out += "  \"snapshot_epoch\": " + std::to_string(R.SnapshotEpoch) + ",\n";
  Out += std::string("  \"bit_identity\": ") +
         (R.BitIdentity ? "true" : "false") + ",\n";
  Out += "  \"jobs_scaling\": [";
  for (size_t I = 0; I < R.JobsScaling.size(); ++I) {
    const ServeScalingPoint &P = R.JobsScaling[I];
    Out += I ? ",\n" : "\n";
    Out += "    {\n";
    Out += "      \"jobs\": " + std::to_string(P.Jobs) + ",\n";
    Out += "      \"uploads\": " + std::to_string(P.Uploads) + ",\n";
    Out += "      \"wall_seconds\": " + jsonNum(P.WallSeconds) + ",\n";
    Out += "      \"uploads_per_sec\": " + jsonNum(P.UploadsPerSec) + ",\n";
    Out += "      \"speedup_vs_1\": " + jsonNum(P.SpeedupVs1) + "\n";
    Out += "    }";
  }
  Out += R.JobsScaling.empty() ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

bool olpp::writeServeBenchJson(const std::string &Path,
                               const ServeBenchReport &R,
                               std::string &Error) {
  return writeTextFile(Path, renderServeBenchJson(R), Error);
}

bool olpp::validateServeBenchJson(const std::string &Text,
                                  std::string &Error) {
  JValue Root;
  if (!JParser(Text, Error).parse(Root))
    return false;
  if (Root.K != JValue::Obj) {
    Error = "top level: expected an object";
    return false;
  }
  auto Schema = Root.Fields.find("schema");
  if (Schema == Root.Fields.end() || Schema->second.K != JValue::Str ||
      Schema->second.S != ServeBenchSchema) {
    Error = std::string("schema: expected \"") + ServeBenchSchema + "\"";
    return false;
  }
  if (!checkProvenance(Root, Error))
    return false;
  auto WName = Root.Fields.find("workload");
  if (WName == Root.Fields.end() || WName->second.K != JValue::Str ||
      WName->second.S.empty()) {
    Error = "top level: missing non-empty string \"workload\"";
    return false;
  }
  if (!checkNum(Root, "top level", "corpus_artifacts", Error) ||
      !checkNum(Root, "top level", "corpus_bytes", Error) ||
      !checkNum(Root, "top level", "clients", Error) ||
      !checkNum(Root, "top level", "uploads_per_client", Error) ||
      !checkNum(Root, "top level", "uploads", Error) ||
      !checkNum(Root, "top level", "wall_seconds", Error) ||
      !checkNum(Root, "top level", "ingest_wall_seconds", Error) ||
      !checkNum(Root, "top level", "uploads_per_sec", Error) ||
      !checkNum(Root, "top level", "mb_per_sec", Error) ||
      !checkNum(Root, "top level", "p50_latency_us", Error) ||
      !checkNum(Root, "top level", "p95_latency_us", Error) ||
      !checkNum(Root, "top level", "p99_latency_us", Error) ||
      !checkNum(Root, "top level", "snapshot_epoch", Error))
    return false;
  // Throughput from a run that acked nothing is meaningless.
  if (Root.Fields.find("uploads")->second.N <= 0 ||
      Root.Fields.find("uploads_per_sec")->second.N <= 0) {
    Error = "top level: uploads and uploads_per_sec must be positive";
    return false;
  }
  // Percentiles of one latency distribution are monotone by definition;
  // an inversion means the harness mislabeled its numbers.
  const double P50 = Root.Fields.find("p50_latency_us")->second.N;
  const double P95 = Root.Fields.find("p95_latency_us")->second.N;
  const double P99 = Root.Fields.find("p99_latency_us")->second.N;
  if (P50 > P95 || P95 > P99) {
    Error = "top level: latency percentiles must satisfy p50 <= p95 <= p99";
    return false;
  }
  // The bit-identity gate: a snapshot that is not the exact fold of the
  // acked uploads describes a server that loses or duplicates profiles —
  // its throughput numbers are not worth committing.
  auto Bit = Root.Fields.find("bit_identity");
  if (Bit == Root.Fields.end() || Bit->second.K != JValue::Bool) {
    Error = "top level: missing boolean \"bit_identity\"";
    return false;
  }
  if (!Bit->second.B) {
    Error = "top level: bit_identity must be true (snapshot diverged from "
            "the offline fold of the acked uploads)";
    return false;
  }
  auto Pts = Root.Fields.find("jobs_scaling");
  if (Pts == Root.Fields.end() || Pts->second.K != JValue::Arr) {
    Error = "jobs_scaling: missing or not an array";
    return false;
  }
  if (Pts->second.Elems.empty()) {
    Error = "jobs_scaling: must have at least one entry";
    return false;
  }
  for (size_t I = 0; I < Pts->second.Elems.size(); ++I) {
    const JValue &Row = Pts->second.Elems[I];
    const std::string Path = "jobs_scaling[" + std::to_string(I) + "]";
    if (Row.K != JValue::Obj) {
      Error = Path + ": expected an object";
      return false;
    }
    if (!checkNum(Row, Path, "jobs", Error) ||
        !checkNum(Row, Path, "uploads", Error) ||
        !checkNum(Row, Path, "wall_seconds", Error) ||
        !checkNum(Row, Path, "uploads_per_sec", Error) ||
        !checkNum(Row, Path, "speedup_vs_1", Error))
      return false;
    auto Jobs = Row.Fields.find("jobs");
    auto Sp = Row.Fields.find("speedup_vs_1");
    if (Jobs->second.N == 1.0 && Sp->second.N != 1.0) {
      Error = Path + ": jobs=1 point must have speedup_vs_1 == 1";
      return false;
    }
    // Same rule as the pipeline schema: a point the hardware cannot run
    // concurrently measures scheduler interleaving, not ingest scaling.
    auto HW = Root.Fields.find("hardware_threads");
    if (Jobs->second.N > HW->second.N) {
      Error = Path + ": jobs exceeds hardware_threads (" +
              std::to_string(static_cast<unsigned>(Jobs->second.N)) + " > " +
              std::to_string(static_cast<unsigned>(HW->second.N)) +
              "); oversubscribed points do not measure scaling";
      return false;
    }
  }
  return true;
}

bool olpp::validateBenchJson(const std::string &Text, std::string &Error) {
  JValue Root;
  if (!JParser(Text, Error).parse(Root))
    return false;
  if (Root.K != JValue::Obj) {
    Error = "top level: expected an object";
    return false;
  }
  auto Schema = Root.Fields.find("schema");
  if (Schema == Root.Fields.end() || Schema->second.K != JValue::Str) {
    Error = "schema: missing string tag";
    return false;
  }
  if (Schema->second.S == EngineBenchSchema)
    return validateEngineBenchJson(Text, Error);
  if (Schema->second.S == PipelineBenchSchema)
    return validatePipelineBenchJson(Text, Error);
  if (Schema->second.S == ProfdataBenchSchema)
    return validateProfdataBenchJson(Text, Error);
  if (Schema->second.S == AnalyzeBenchSchema)
    return validateAnalyzeBenchJson(Text, Error);
  if (Schema->second.S == OptBenchSchema)
    return validateOptBenchJson(Text, Error);
  if (Schema->second.S == ServeBenchSchema)
    return validateServeBenchJson(Text, Error);
  Error = "schema: unknown tag \"" + Schema->second.S + "\"";
  return false;
}
