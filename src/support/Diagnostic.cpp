//===--- Diagnostic.cpp - Structured analysis diagnostics --------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostic.h"

using namespace olpp;

const char *olpp::severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out = severityName(Sev);
  Out += ": [";
  Out += Pass;
  Out += "]";
  if (!Loc.Function.empty()) {
    Out += " ";
    Out += Loc.Function;
  }
  if (Loc.hasBlock()) {
    Out += " ^" + std::to_string(Loc.Block);
    if (!Loc.BlockName.empty())
      Out += "(" + Loc.BlockName + ")";
  }
  if (Loc.hasInstr())
    Out += " #" + std::to_string(Loc.Instr);
  Out += ": ";
  Out += Message;
  return Out;
}

Diagnostic olpp::makeDiag(Severity Sev, std::string Pass,
                          std::string Function, std::string Message) {
  Diagnostic D;
  D.Sev = Sev;
  D.Pass = std::move(Pass);
  D.Loc.Function = std::move(Function);
  D.Message = std::move(Message);
  return D;
}

Diagnostic olpp::makeDiagAt(Severity Sev, std::string Pass,
                            std::string Function, uint32_t Block,
                            std::string BlockName, std::string Message,
                            uint32_t Instr) {
  Diagnostic D = makeDiag(Sev, std::move(Pass), std::move(Function),
                          std::move(Message));
  D.Loc.Block = Block;
  D.Loc.BlockName = std::move(BlockName);
  D.Loc.Instr = Instr;
  return D;
}

bool olpp::anySeverityAtLeast(const std::vector<Diagnostic> &Diags,
                              Severity Min) {
  for (const Diagnostic &D : Diags)
    if (D.Sev >= Min)
      return true;
  return false;
}

std::string olpp::renderDiagnosticsText(const std::vector<Diagnostic> &Diags) {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out.push_back('\n');
  }
  return Out;
}

std::string olpp::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xF];
        Out += Hex[C & 0xF];
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

std::string olpp::renderDiagnosticsJson(const std::vector<Diagnostic> &Diags) {
  std::string Out = "[";
  bool First = true;
  for (const Diagnostic &D : Diags) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  {";
    Out += "\"severity\": \"" + std::string(severityName(D.Sev)) + "\", ";
    Out += "\"pass\": \"" + jsonEscape(D.Pass) + "\", ";
    Out += "\"function\": ";
    Out += D.Loc.Function.empty()
               ? "null"
               : "\"" + jsonEscape(D.Loc.Function) + "\"";
    Out += ", \"block\": ";
    Out += D.Loc.hasBlock() ? std::to_string(D.Loc.Block) : "null";
    Out += ", \"blockName\": ";
    Out += D.Loc.hasBlock() && !D.Loc.BlockName.empty()
               ? "\"" + jsonEscape(D.Loc.BlockName) + "\""
               : "null";
    Out += ", \"instr\": ";
    Out += D.Loc.hasInstr() ? std::to_string(D.Loc.Instr) : "null";
    Out += ", \"message\": \"" + jsonEscape(D.Message) + "\"";
    Out += "}";
  }
  Out += Diags.empty() ? "]" : "\n]";
  Out.push_back('\n');
  return Out;
}
