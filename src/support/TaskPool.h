//===--- TaskPool.h - Work-stealing task pool -------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent work-stealing task pool: the shared concurrency primitive
/// behind the parallel profiling pipeline (sharded bench collection, the
/// component-partitioned interval solver, `olpp fuzz --jobs`). Unlike
/// support/ThreadPool.h's parallelFor — which spawns and joins fresh
/// threads per batch — a TaskPool keeps its workers alive, so fine-grained
/// work (one solver component, one fuzz seed) can be submitted without
/// paying thread start-up per item.
///
/// Design:
///   - every worker owns a deque; local submissions push to its bottom
///     (LIFO, cache-friendly for nested fork/join), idle workers steal from
///     the top of a victim's deque,
///   - Task::wait() *helps*: while its task is unfinished the waiting
///     thread executes other pending tasks, so tasks may submit subtasks
///     and wait on them without deadlocking even on a one-worker pool,
///   - exceptions escaping a task are captured and rethrown by wait(),
///   - the destructor drains every queued task, then joins the workers.
///
/// Determinism contract: the pool promises nothing about execution order.
/// Callers that need deterministic results must make tasks independent
/// (disjoint outputs) and combine results in a fixed order afterwards —
/// the pattern every pipeline stage in this repo follows.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_SUPPORT_TASKPOOL_H
#define OLPP_SUPPORT_TASKPOOL_H

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace olpp {

class TaskPool {
  struct TaskState {
    std::function<void()> Fn;
    std::atomic<bool> Done{false};
    std::exception_ptr Error;
    std::mutex Mu;
    std::condition_variable Cv;
  };

  struct WorkerQueue {
    std::mutex Mu;
    std::deque<std::shared_ptr<TaskState>> Deque;
  };

public:
  /// A handle to one submitted task. Copyable; wait() may be called from
  /// any thread (including pool workers) and from multiple threads.
  class Task {
  public:
    Task() = default;

    /// Blocks until the task finished, executing other pending pool tasks
    /// while waiting (so nested submit-and-wait cannot deadlock). Rethrows
    /// the task's exception if it threw.
    void wait() {
      if (!S)
        return;
      while (!S->Done.load(std::memory_order_acquire)) {
        if (!Pool->tryRunOneTask()) {
          std::unique_lock<std::mutex> Lock(S->Mu);
          // A short timed wait instead of a pure cv wait: new stealable
          // work may appear while we sleep, and helping it is how nested
          // waits make progress on saturated pools.
          S->Cv.wait_for(Lock, std::chrono::milliseconds(1), [&] {
            return S->Done.load(std::memory_order_acquire);
          });
        }
      }
      if (S->Error)
        std::rethrow_exception(S->Error);
    }

    bool valid() const { return S != nullptr; }

  private:
    friend class TaskPool;
    Task(TaskPool *Pool, std::shared_ptr<TaskState> S)
        : Pool(Pool), S(std::move(S)) {}
    TaskPool *Pool = nullptr;
    std::shared_ptr<TaskState> S;
  };

  /// \p Threads == 0 picks one worker per hardware thread (at least 1).
  explicit TaskPool(unsigned Threads = 0) {
    if (Threads == 0) {
      Threads = std::thread::hardware_concurrency();
      if (Threads == 0)
        Threads = 4;
    }
    Queues.reserve(Threads);
    for (unsigned W = 0; W < Threads; ++W)
      Queues.push_back(std::make_unique<WorkerQueue>());
    Workers.reserve(Threads);
    for (unsigned W = 0; W < Threads; ++W)
      Workers.emplace_back([this, W] { workerLoop(W); });
  }

  /// Drains every queued task (they all run), then joins the workers.
  ~TaskPool() {
    {
      std::lock_guard<std::mutex> Lock(SleepMu);
      ShuttingDown = true;
    }
    SleepCv.notify_all();
    for (std::thread &T : Workers)
      T.join();
    // Workers only exit once every deque is empty, but run the invariant
    // check in debug builds anyway.
    for ([[maybe_unused]] auto &Q : Queues)
      assert(Q->Deque.empty() && "task leaked past shutdown");
  }

  TaskPool(const TaskPool &) = delete;
  TaskPool &operator=(const TaskPool &) = delete;

  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Fn. From a worker thread the task lands on that worker's
  /// own deque (LIFO); external submissions round-robin across workers.
  Task submit(std::function<void()> Fn) {
    auto S = std::make_shared<TaskState>();
    S->Fn = std::move(Fn);
    unsigned Q = currentWorkerOf(this) != kNotAWorker
                     ? currentWorkerOf(this)
                     : NextQueue.fetch_add(1, std::memory_order_relaxed) %
                           Queues.size();
    {
      std::lock_guard<std::mutex> Lock(Queues[Q]->Mu);
      Queues[Q]->Deque.push_back(S);
    }
    Pending.fetch_add(1, std::memory_order_release);
    SleepCv.notify_one();
    return Task(this, std::move(S));
  }

  /// Runs Body(Index, Slot) for every Index in [0, Count) across
  /// min(numWorkers(), Count) slots. Each slot is owned by exactly one
  /// task for the whole call, so Body may keep per-slot state (a counter
  /// shard, a solver arena) without locking; Slot is a *task* identity,
  /// not a thread identity — the slot task may migrate between threads but
  /// never runs concurrently with itself. Blocks until every item ran;
  /// rethrows the first slot exception. Count <= 1 or a one-worker pool
  /// degenerates to an inline loop on the calling thread.
  void parallelFor(size_t Count,
                   const std::function<void(size_t, unsigned)> &Body) {
    if (Count == 0)
      return;
    unsigned Slots = numWorkers();
    if (Slots > Count)
      Slots = static_cast<unsigned>(Count);
    if (Slots <= 1) {
      for (size_t I = 0; I < Count; ++I)
        Body(I, 0);
      return;
    }
    auto Next = std::make_shared<std::atomic<size_t>>(0);
    std::vector<Task> Tasks;
    Tasks.reserve(Slots);
    for (unsigned Slot = 0; Slot < Slots; ++Slot)
      Tasks.push_back(submit([Next, Count, Slot, &Body] {
        for (size_t I = Next->fetch_add(1, std::memory_order_relaxed);
             I < Count; I = Next->fetch_add(1, std::memory_order_relaxed))
          Body(I, Slot);
      }));
    std::exception_ptr First;
    for (Task &T : Tasks) {
      try {
        T.wait();
      } catch (...) {
        if (!First)
          First = std::current_exception();
      }
    }
    if (First)
      std::rethrow_exception(First);
  }

  /// The process-wide pool the pipeline stages default to, sized to the
  /// hardware. Built on first use; lives until process exit.
  static TaskPool &shared() {
    static TaskPool Pool(0);
    return Pool;
  }

private:
  static constexpr unsigned kNotAWorker = ~0u;

  /// Which worker of which pool the current thread is (threads can only
  /// ever belong to one pool).
  static unsigned &tlsWorkerIndex() {
    thread_local unsigned Index = kNotAWorker;
    return Index;
  }
  static TaskPool *&tlsWorkerPool() {
    thread_local TaskPool *Pool = nullptr;
    return Pool;
  }
  static unsigned currentWorkerOf(TaskPool *P) {
    return tlsWorkerPool() == P ? tlsWorkerIndex() : kNotAWorker;
  }

  std::shared_ptr<TaskState> popTask(unsigned Self) {
    // Own deque first (bottom: newest, the nested-fork hot end) ...
    if (Self != kNotAWorker) {
      WorkerQueue &Q = *Queues[Self];
      std::lock_guard<std::mutex> Lock(Q.Mu);
      if (!Q.Deque.empty()) {
        auto S = Q.Deque.back();
        Q.Deque.pop_back();
        return S;
      }
    }
    // ... then steal from the top of the others, round robin.
    unsigned N = static_cast<unsigned>(Queues.size());
    unsigned Start = Self == kNotAWorker ? 0 : Self + 1;
    for (unsigned K = 0; K < N; ++K) {
      WorkerQueue &Q = *Queues[(Start + K) % N];
      std::lock_guard<std::mutex> Lock(Q.Mu);
      if (!Q.Deque.empty()) {
        auto S = Q.Deque.front();
        Q.Deque.pop_front();
        return S;
      }
    }
    return nullptr;
  }

  void runTask(TaskState &S) {
    try {
      S.Fn();
    } catch (...) {
      S.Error = std::current_exception();
    }
    S.Fn = nullptr; // release captures before signalling completion
    {
      std::lock_guard<std::mutex> Lock(S.Mu);
      S.Done.store(true, std::memory_order_release);
    }
    S.Cv.notify_all();
    Pending.fetch_sub(1, std::memory_order_release);
  }

  /// Executes one pending task if any exists. Used by workers and by
  /// helping waiters (which may be external threads: Self == kNotAWorker).
  bool tryRunOneTask() {
    auto S = popTask(currentWorkerOf(this));
    if (!S)
      return false;
    runTask(*S);
    return true;
  }

  void workerLoop(unsigned Self) {
    tlsWorkerIndex() = Self;
    tlsWorkerPool() = this;
    while (true) {
      if (auto S = popTask(Self)) {
        runTask(*S);
        continue;
      }
      std::unique_lock<std::mutex> Lock(SleepMu);
      if (ShuttingDown && Pending.load(std::memory_order_acquire) == 0)
        return;
      SleepCv.wait_for(Lock, std::chrono::milliseconds(1), [&] {
        return ShuttingDown || Pending.load(std::memory_order_acquire) > 0;
      });
    }
  }

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;
  std::atomic<size_t> Pending{0};
  std::atomic<unsigned> NextQueue{0};
  std::mutex SleepMu;
  std::condition_variable SleepCv;
  bool ShuttingDown = false;
};

} // namespace olpp

#endif // OLPP_SUPPORT_TASKPOOL_H
