//===--- Format.cpp - Small string formatting helpers --------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cmath>
#include <cstdio>

using namespace olpp;

std::string olpp::formatFixed(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string olpp::formatSignedPercent(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%+.*f %%", Decimals, Value);
  return Buf;
}

std::string olpp::formatInt(int64_t Value, bool Grouped) {
  std::string Raw = std::to_string(Value);
  if (!Grouped)
    return Raw;
  std::string Out;
  size_t Start = Raw[0] == '-' ? 1 : 0;
  Out.append(Raw, 0, Start);
  size_t Digits = Raw.size() - Start;
  for (size_t I = 0; I < Digits; ++I) {
    if (I != 0 && (Digits - I) % 3 == 0)
      Out.push_back(',');
    Out.push_back(Raw[Start + I]);
  }
  return Out;
}

std::string olpp::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string olpp::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}
