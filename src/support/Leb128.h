//===--- Leb128.h - Variable-length integer coding --------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ULEB128 and zigzag-SLEB encodings used by the `.olpp` profile artifact
/// format (profdata/ProfData.h). Encodings are canonical: the encoder never
/// emits a redundant trailing 0x00 continuation group, and the decoder
/// rejects inputs longer than the 10 groups a 64-bit value can need, so a
/// value has exactly one byte representation — which is what lets the golden
/// format tests require re-encoded artifacts to be byte-identical.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_SUPPORT_LEB128_H
#define OLPP_SUPPORT_LEB128_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace olpp {

/// Appends the ULEB128 encoding of \p V to \p Out.
inline void appendUleb(std::string &Out, uint64_t V) {
  do {
    uint8_t Byte = V & 0x7F;
    V >>= 7;
    if (V)
      Byte |= 0x80;
    Out.push_back(static_cast<char>(Byte));
  } while (V);
}

/// Zigzag-maps a signed value so small magnitudes stay small unsigned.
inline uint64_t zigzagEncode(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}

inline int64_t zigzagDecode(uint64_t V) {
  return static_cast<int64_t>((V >> 1) ^ (~(V & 1) + 1));
}

/// Appends the zigzag-SLEB encoding of \p V to \p Out.
inline void appendSleb(std::string &Out, int64_t V) {
  appendUleb(Out, zigzagEncode(V));
}

/// Reads one ULEB128 value from \p Data at \p Pos, advancing \p Pos.
/// Returns false (leaving \p Pos unspecified) on truncation, on more than
/// 10 groups, or on a non-canonical redundant final group.
inline bool readUleb(const std::string &Data, size_t &Pos, uint64_t &Out) {
  uint64_t V = 0;
  unsigned Shift = 0;
  for (unsigned I = 0; I < 10; ++I) {
    if (Pos >= Data.size())
      return false; // truncated mid-value
    uint8_t Byte = static_cast<uint8_t>(Data[Pos++]);
    if (I == 9 && (Byte & 0xFE))
      return false; // 64-bit overflow in the 10th group
    V |= static_cast<uint64_t>(Byte & 0x7F) << Shift;
    if (!(Byte & 0x80)) {
      if (I > 0 && Byte == 0)
        return false; // non-canonical: redundant trailing zero group
      Out = V;
      return true;
    }
    Shift += 7;
  }
  return false; // 11th continuation group
}

/// Reads one zigzag-SLEB value.
inline bool readSleb(const std::string &Data, size_t &Pos, int64_t &Out) {
  uint64_t U;
  if (!readUleb(Data, Pos, U))
    return false;
  Out = zigzagDecode(U);
  return true;
}

} // namespace olpp

#endif // OLPP_SUPPORT_LEB128_H
