//===--- Diagnostic.h - Structured analysis diagnostics ---------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured diagnostic type shared by the IR verifier, the lint
/// passes and the instrumentation-invariant checker: a severity, the pass
/// that produced it, an optional function/block/instruction location, and
/// a message. Renderers produce either a human-readable text listing or a
/// JSON array (one object per diagnostic) for tooling.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_SUPPORT_DIAGNOSTIC_H
#define OLPP_SUPPORT_DIAGNOSTIC_H

#include <cstdint>
#include <string>
#include <vector>

namespace olpp {

enum class Severity : uint8_t { Note, Warning, Error };

/// Printable name of \p S ("note" / "warning" / "error").
const char *severityName(Severity S);

/// Where a diagnostic points. Every level is optional: a module-level
/// problem has an empty Function, a function-level one leaves Block unset.
struct DiagLocation {
  std::string Function;           ///< empty = module level
  uint32_t Block = UINT32_MAX;    ///< block id; UINT32_MAX = function level
  std::string BlockName;          ///< block name when Block is set
  uint32_t Instr = UINT32_MAX;    ///< instruction index within the block

  bool hasBlock() const { return Block != UINT32_MAX; }
  bool hasInstr() const { return Instr != UINT32_MAX; }
};

/// One finding of a static check.
struct Diagnostic {
  Severity Sev = Severity::Warning;
  std::string Pass; ///< short pass slug, e.g. "lint-uninit", "instr-check"
  DiagLocation Loc;
  std::string Message;

  /// One-line text rendering:
  ///   error: [instr-check] f ^3(P2): message
  std::string str() const;
};

/// Convenience builder used by the passes.
Diagnostic makeDiag(Severity Sev, std::string Pass, std::string Function,
                    std::string Message);
Diagnostic makeDiagAt(Severity Sev, std::string Pass, std::string Function,
                      uint32_t Block, std::string BlockName,
                      std::string Message, uint32_t Instr = UINT32_MAX);

/// True if any diagnostic has severity >= \p Min.
bool anySeverityAtLeast(const std::vector<Diagnostic> &Diags, Severity Min);

/// All diagnostics as text, one per line (empty string for none).
std::string renderDiagnosticsText(const std::vector<Diagnostic> &Diags);

/// All diagnostics as a JSON array. Each element carries the keys
/// "severity", "pass", "function", "block", "blockName", "instr" and
/// "message"; unset locations render as null.
std::string renderDiagnosticsJson(const std::vector<Diagnostic> &Diags);

/// Escapes \p S for inclusion inside a JSON string literal (quotes,
/// backslashes and control characters).
std::string jsonEscape(const std::string &S);

} // namespace olpp

#endif // OLPP_SUPPORT_DIAGNOSTIC_H
