//===--- ThreadPool.h - Minimal fixed-size thread pool ----------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool used by the parallel bench harness
/// (`olpp bench --jobs N`). Work items are indices into a shared counter, so
/// batches need no per-item allocation; each worker owns its slot of any
/// per-thread output (the harness merges ProfileRuntimes afterwards).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_SUPPORT_THREADPOOL_H
#define OLPP_SUPPORT_THREADPOOL_H

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace olpp {

/// Runs Body(Index, Worker) for every Index in [0, Count) on \p Jobs
/// threads (clamped to [1, Count]); Worker in [0, Jobs) identifies the
/// executing thread so callers can keep per-thread state without locking.
/// Blocks until every item finished. Jobs == 1 degenerates to a plain loop
/// on the calling thread (no threads spawned), which keeps single-job runs
/// deterministic and debuggable.
inline void parallelFor(size_t Count, unsigned Jobs,
                        const std::function<void(size_t, unsigned)> &Body) {
  if (Count == 0)
    return;
  if (Jobs > Count)
    Jobs = static_cast<unsigned>(Count);
  if (Jobs <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Body(I, 0);
    return;
  }

  std::atomic<size_t> Next{0};
  std::vector<std::thread> Workers;
  Workers.reserve(Jobs);
  for (unsigned W = 0; W < Jobs; ++W)
    Workers.emplace_back([&, W] {
      for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
           I < Count; I = Next.fetch_add(1, std::memory_order_relaxed))
        Body(I, W);
    });
  for (std::thread &T : Workers)
    T.join();
}

/// A sensible default for --jobs 0 ("auto").
inline unsigned defaultJobCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 4;
}

} // namespace olpp

#endif // OLPP_SUPPORT_THREADPOOL_H
