//===--- Saturate.h - Saturating counter arithmetic -------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Saturating unsigned adds for profile counters. A counter that wraps is
/// strictly worse than one that clamps: a wrapped count silently reports a
/// tiny frequency for the hottest path, while a saturated count stays a
/// correct lower bound and keeps the "live counters are positive" invariant
/// the open-addressed stores depend on.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_SUPPORT_SATURATE_H
#define OLPP_SUPPORT_SATURATE_H

#include <cstdint>
#include <limits>

namespace olpp {

/// A + B clamped to UINT64_MAX.
inline uint64_t saturatingAdd(uint64_t A, uint64_t B) {
  uint64_t Sum = A + B;
  return Sum < A ? std::numeric_limits<uint64_t>::max() : Sum;
}

/// Counter += Delta clamped to UINT64_MAX, in place.
inline void saturatingBump(uint64_t &Counter, uint64_t Delta = 1) {
  Counter = saturatingAdd(Counter, Delta);
}

/// A * B clamped to UINT64_MAX. Repeating N saturating adds of C converges
/// to min(N*C, MAX), so a weighted profile merge using saturatingMul is
/// bit-identical to replaying the run N times (profdata/Merge.h relies on
/// this equivalence).
inline uint64_t saturatingMul(uint64_t A, uint64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > std::numeric_limits<uint64_t>::max() / B)
    return std::numeric_limits<uint64_t>::max();
  return A * B;
}

} // namespace olpp

#endif // OLPP_SUPPORT_SATURATE_H
