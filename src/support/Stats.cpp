//===--- Stats.cpp - Summary statistics helpers --------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace olpp;

double olpp::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double olpp::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double olpp::minOf(const std::vector<double> &Values) {
  assert(!Values.empty() && "minOf requires a non-empty input");
  return *std::min_element(Values.begin(), Values.end());
}

double olpp::maxOf(const std::vector<double> &Values) {
  assert(!Values.empty() && "maxOf requires a non-empty input");
  return *std::max_element(Values.begin(), Values.end());
}
