//===--- TableWriter.cpp - Aligned text/CSV table output -----------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/TableWriter.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace olpp;

TableWriter::TableWriter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {
  assert(!this->Headers.empty() && "a table needs at least one column");
}

void TableWriter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row arity mismatch");
  Rows.push_back(std::move(Cells));
}

std::string TableWriter::renderText() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  std::string Out;
  auto EmitRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C < Cells.size(); ++C) {
      if (C != 0)
        Out += "  ";
      Out += padRight(Cells[C], Widths[C]);
    }
    // Trim trailing spaces for tidy diffs.
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out.push_back('\n');
  };

  EmitRow(Headers);
  size_t Total = 0;
  for (size_t C = 0; C < Widths.size(); ++C)
    Total += Widths[C] + (C == 0 ? 0 : 2);
  Out += std::string(Total, '-');
  Out.push_back('\n');
  for (const auto &Row : Rows)
    EmitRow(Row);
  return Out;
}

static std::string csvEscape(const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos)
    return Cell;
  std::string Out = "\"";
  for (char Ch : Cell) {
    if (Ch == '"')
      Out += "\"\"";
    else
      Out.push_back(Ch);
  }
  Out.push_back('"');
  return Out;
}

std::string TableWriter::renderCsv() const {
  std::string Out;
  auto EmitRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C < Cells.size(); ++C) {
      if (C != 0)
        Out.push_back(',');
      Out += csvEscape(Cells[C]);
    }
    Out.push_back('\n');
  };
  EmitRow(Headers);
  for (const auto &Row : Rows)
    EmitRow(Row);
  return Out;
}
