//===--- Stats.h - Summary statistics helpers ------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mean/min/max/geomean helpers used when aggregating per-benchmark results
/// into the "Average" rows that the paper's tables report.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_SUPPORT_STATS_H
#define OLPP_SUPPORT_STATS_H

#include <vector>

namespace olpp {

/// Arithmetic mean; returns 0 for an empty input.
double mean(const std::vector<double> &Values);

/// Geometric mean of positive values; returns 0 for an empty input.
double geomean(const std::vector<double> &Values);

/// Population minimum / maximum; inputs must be non-empty.
double minOf(const std::vector<double> &Values);
double maxOf(const std::vector<double> &Values);

} // namespace olpp

#endif // OLPP_SUPPORT_STATS_H
