//===--- Rng.h - Deterministic random number generation --------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic pseudo-random number generator (SplitMix64) used by
/// the workload generator and the property tests. Determinism across
/// platforms matters more than statistical quality here: the same seed must
/// regenerate the same program and the same execution on every machine.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_SUPPORT_RNG_H
#define OLPP_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace olpp {

/// Deterministic SplitMix64 generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Multiply-shift reduction; bias is negligible for our bounds and, more
    // importantly, deterministic.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns a value in the inclusive range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) {
    assert(Den > 0 && Num <= Den && "probability out of range");
    return nextBelow(Den) < Num;
  }

  /// Picks a uniformly random element of \p Choices.
  template <typename T> const T &pick(const std::vector<T> &Choices) {
    assert(!Choices.empty() && "cannot pick from an empty vector");
    return Choices[nextBelow(Choices.size())];
  }

private:
  uint64_t State;
};

} // namespace olpp

#endif // OLPP_SUPPORT_RNG_H
