//===--- RegionNumbering.h - Path numbering of an overlap region -*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ball-Larus numbering of the paths of one OverlapRegion in isolation:
/// paths start at the anchor and end at a dummy of some flush node. Used for
/// the interprocedural Type I (callee prefix) and Type II (caller
/// continuation) id spaces, which the paper keys by a four-tuple rather than
/// folding into the function's main path graph. Loop overlap regions are
/// instead numbered inside the function's PathGraph.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_OVERLAP_REGIONNUMBERING_H
#define OLPP_OVERLAP_REGIONNUMBERING_H

#include "overlap/OverlapRegion.h"

#include <cassert>
#include <memory>
#include <string>

namespace olpp {

class RegionNumbering {
public:
  /// Numbers \p R (which must outlive the numbering). Returns null and sets
  /// \p Error if the region has more than \p MaxPaths paths.
  static std::unique_ptr<RegionNumbering>
  build(const OverlapRegion &R, std::string &Error,
        uint64_t MaxPaths = uint64_t(1) << 62);

  const OverlapRegion &region() const { return *R; }

  /// Total number of region paths.
  uint64_t numPaths() const { return NumPathsOf[0]; }

  /// Value of region edge \p EdgeIdx (index into region().edges()).
  int64_t edgeVal(uint32_t EdgeIdx) const { return EdgeVals[EdgeIdx]; }

  /// Value of the dummy edge of region node \p NodeIdx; the node must need
  /// a dummy.
  int64_t dummyVal(uint32_t NodeIdx) const {
    assert(R->nodes()[NodeIdx].needsDummy() && "node has no dummy");
    return DummyVals[NodeIdx];
  }

  /// Decodes \p Id into the region-node index sequence of its path
  /// (starting at node 0, the anchor; ending at the flush node).
  std::vector<uint32_t> decode(int64_t Id) const;

  /// Id of the path visiting \p NodeSeq (must start at the anchor, follow
  /// region edges, and end at a node with a dummy).
  int64_t encode(const std::vector<uint32_t> &NodeSeq) const;

private:
  RegionNumbering() = default;

  const OverlapRegion *R = nullptr;
  std::vector<uint64_t> NumPathsOf; // per region node
  std::vector<int64_t> EdgeVals;    // per region edge
  std::vector<int64_t> DummyVals;   // per region node (valid if dummy)
};

} // namespace olpp

#endif // OLPP_OVERLAP_REGIONNUMBERING_H
