//===--- Projection.h - Project a block walk through a region ---*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays the dynamic overlap-region semantics over a known block sequence:
/// given the blocks a path visits starting at the region's anchor, returns
/// the region nodes the overlap walk traverses before it flushes (at the
/// (k+1)-th predicate, or when the sequence takes an edge the region
/// excludes — a backedge, a loop exit, a call break — or simply ends).
///
/// Both the estimators (to map a full path to its overlap prefix class) and
/// the trace-replay ground truth (to predict the exact counter an
/// instrumented run must produce) use this single definition, which is what
/// makes the instrumentation-exactness property test meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_OVERLAP_PROJECTION_H
#define OLPP_OVERLAP_PROJECTION_H

#include "overlap/OverlapRegion.h"

#include <vector>

namespace olpp {

/// Projects \p Blocks (which must start at the region's anchor) through
/// \p R. Returns the region-node index sequence ending at the flush node.
std::vector<uint32_t> projectThroughRegion(const OverlapRegion &R,
                                           const std::vector<uint32_t> &Blocks);

} // namespace olpp

#endif // OLPP_OVERLAP_PROJECTION_H
