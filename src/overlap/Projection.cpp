//===--- Projection.cpp - Project a block walk through a region -------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "overlap/Projection.h"

#include <cassert>

using namespace olpp;

std::vector<uint32_t>
olpp::projectThroughRegion(const OverlapRegion &R,
                           const std::vector<uint32_t> &Blocks) {
  assert(!Blocks.empty() && "empty walk");
  uint32_t Cur = R.nodeForBlock(Blocks[0]);
  assert(Cur == 0 && "walk must start at the region anchor");

  uint32_t K = R.params().Degree;
  std::vector<uint32_t> Seq{Cur};
  // Predicates entered so far, the anchor included (the runtime `ol`).
  uint32_t Ol = R.nodes()[Cur].IsPredicate ? 1 : 0;

  for (size_t I = 1; I < Blocks.size(); ++I) {
    if (Ol == K + 1)
      break; // flushed on entering the (k+1)-th predicate
    if (!R.nodes()[Cur].Extendable)
      break; // region cannot continue past this node
    uint32_t NextNode = UINT32_MAX;
    for (uint32_t E : R.outEdges(Cur))
      if (R.nodes()[R.edges()[E].To].Block == Blocks[I]) {
        NextNode = R.edges()[E].To;
        break;
      }
    if (NextNode == UINT32_MAX)
      break; // the walk took an edge the region excludes: flush at Cur
    Cur = NextNode;
    Seq.push_back(Cur);
    if (R.nodes()[Cur].IsPredicate)
      ++Ol;
  }

  assert(R.nodes()[Seq.back()].needsDummy() &&
         "projection ended at a node with no flush site");
  return Seq;
}
