//===--- OverlapRegion.cpp - Overlapping-graph region computation ----------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "overlap/OverlapRegion.h"

#include "ir/Function.h"

#include <algorithm>
#include <cassert>

using namespace olpp;

bool olpp::isCallBlock(const Function &F, uint32_t B) {
  for (const Instruction &I : F.block(B)->Instrs)
    if (I.Op == Opcode::Call || I.Op == Opcode::CallInd)
      return true;
  return false;
}

OverlapRegion OverlapRegion::compute(const Function &F, const CfgView &Cfg,
                                     const LoopInfo &LI,
                                     const OverlapRegionParams &Params) {
  OverlapRegion R;
  R.Params = Params;
  uint32_t N = Cfg.numBlocks();
  uint32_t K = Params.Degree;
  uint32_t Cap = K + 1;

  bool Restricted = !Params.Restrict.empty();
  assert((!Restricted || Params.Restrict[Params.Anchor]) &&
         "anchor outside its own restriction");
  assert(Cfg.isReachable(Params.Anchor) && "anchor unreachable");

  // Per-block accumulators while sweeping in RPO (region edges are forward
  // edges, so RPO is a topological order of the region DAG).
  std::vector<bool> InRegion(N, false);
  std::vector<uint32_t> MinExcl(N, UINT32_MAX);
  std::vector<uint32_t> MaxExcl(N, 0);
  InRegion[Params.Anchor] = true;
  MinExcl[Params.Anchor] = 0;
  MaxExcl[Params.Anchor] = 0;

  R.BlockToNode.assign(N, UINT32_MAX);

  struct PendingEdge {
    uint32_t FromBlock, ToBlock;
    OverlapEdgeClass Cls;
  };
  std::vector<PendingEdge> PendingEdges;

  uint32_t AnchorRpo = Cfg.rpoIndex(Params.Anchor);
  for (uint32_t Pos = AnchorRpo; Pos < Cfg.rpo().size(); ++Pos) {
    uint32_t B = Cfg.rpo()[Pos];
    if (!InRegion[B])
      continue;

    OverlapRegionNode Node;
    Node.Block = B;
    Node.MinPredsExcl = MinExcl[B];
    Node.MaxPredsExcl = std::min(MaxExcl[B], Cap);
    Node.IsPredicate = F.block(B)->isPredicate();

    bool IsRet = F.block(B)->isExit();
    bool CallTerminal =
        Params.BreakAtCalls && isCallBlock(F, B) &&
        !(Params.AnchorExemptFromCallBreak && B == Params.Anchor);

    uint32_t PredsThrough =
        Node.MinPredsExcl + (Node.IsPredicate ? 1 : 0);
    Node.Extendable = !IsRet && !CallTerminal && PredsThrough <= K;

    if (Node.IsPredicate && Node.MinPredsExcl <= K && Node.MaxPredsExcl >= K)
      Node.DummyReasons |= DR_TerminalPredicate;
    if (IsRet)
      Node.DummyReasons |= DR_Return;
    if (CallTerminal)
      Node.DummyReasons |= DR_CallBreak;

    if (Node.Extendable) {
      bool FromDI = Node.MaxPredsExcl + (Node.IsPredicate ? 1 : 0) <= K;
      for (uint32_t S : Cfg.succs(B)) {
        if (LI.isBackedge(B, S)) {
          Node.DummyReasons |= DR_Backedge;
          continue;
        }
        if (Restricted && !Params.Restrict[S]) {
          Node.DummyReasons |= DR_LeavesRestriction;
          continue;
        }
        // Region edge B -> S.
        InRegion[S] = true;
        uint32_t NewMin = Node.MinPredsExcl + (Node.IsPredicate ? 1 : 0);
        uint32_t NewMax =
            std::min(Node.MaxPredsExcl + (Node.IsPredicate ? 1u : 0u), Cap);
        MinExcl[S] = std::min(MinExcl[S], NewMin);
        MaxExcl[S] = std::max(MaxExcl[S], NewMax);
        PendingEdges.push_back(
            {B, S, FromDI ? OverlapEdgeClass::DI : OverlapEdgeClass::PI});
      }
    }

    R.BlockToNode[B] = static_cast<uint32_t>(R.Nodes.size());
    R.Nodes.push_back(Node);
  }

  // Materialise edges with node indices, preserving discovery order (which
  // follows CFG successor order per node).
  R.OutEdges.resize(R.Nodes.size());
  for (const PendingEdge &E : PendingEdges) {
    uint32_t FromN = R.BlockToNode[E.FromBlock];
    uint32_t ToN = R.BlockToNode[E.ToBlock];
    assert(FromN != UINT32_MAX && ToN != UINT32_MAX && "dangling region edge");
    R.OutEdges[FromN].push_back(static_cast<uint32_t>(R.Edges.size()));
    R.Edges.push_back({FromN, ToN, E.Cls});
  }

  // Every region node must be able to end the region somewhere: either it
  // extends or it carries a dummy.
  for (const OverlapRegionNode &Node : R.Nodes)
    assert((Node.Extendable || Node.needsDummy()) &&
           "region node with no continuation and no flush site");

  return R;
}

uint32_t olpp::maxOverlapDegree(const Function &F, const CfgView &Cfg,
                                const LoopInfo &LI,
                                const OverlapRegionParams &Base,
                                uint32_t Cap) {
  uint32_t N = Cfg.numBlocks();
  bool Restricted = !Base.Restrict.empty();

  // The smallest degree at which no region path is truncated. A degree-k
  // walk flushes upon *entering* its (k+1)-th predicate, which cuts off any
  // blocks after that predicate. So a path P requires
  //   k = #preds(P) - 1   if P ends exactly at its last predicate, and
  //   k = #preds(P)       if blocks follow the last predicate.
  // With requiredK([b]) = 0 and requiredK(b::rest) = isPred(b) +
  // requiredK(rest), this is a longest-path DP over the region DAG:
  //   A(b) = max(0, isPred(b) + max over region successors A(s)).
  // Process in reverse RPO (sinks first).
  std::vector<uint32_t> A(N, 0);
  std::vector<bool> Eligible(N, false);
  for (uint32_t B = 0; B < N; ++B)
    Eligible[B] = Cfg.isReachable(B) && (!Restricted || Base.Restrict[B]);

  uint32_t AnchorRpo = Cfg.rpoIndex(Base.Anchor);
  for (uint32_t Pos = static_cast<uint32_t>(Cfg.rpo().size());
       Pos-- > AnchorRpo;) {
    uint32_t B = Cfg.rpo()[Pos];
    if (!Eligible[B])
      continue;
    bool IsRet = F.block(B)->isExit();
    bool CallTerminal = Base.BreakAtCalls && isCallBlock(F, B) &&
                        !(Base.AnchorExemptFromCallBreak && B == Base.Anchor);
    bool HasSucc = false;
    uint32_t Best = 0;
    if (!IsRet && !CallTerminal)
      for (uint32_t S : Cfg.succs(B)) {
        if (LI.isBackedge(B, S) || !Eligible[S])
          continue;
        HasSucc = true;
        Best = std::max(Best, A[S]);
      }
    uint32_t Self = F.block(B)->isPredicate() && HasSucc ? 1 : 0;
    A[B] = std::min(Best + Self, Cap);
  }
  return A[Base.Anchor];
}
