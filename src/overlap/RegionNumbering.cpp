//===--- RegionNumbering.cpp - Path numbering of an overlap region ----------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "overlap/RegionNumbering.h"

using namespace olpp;

std::unique_ptr<RegionNumbering> RegionNumbering::build(const OverlapRegion &R,
                                                        std::string &Error,
                                                        uint64_t MaxPaths) {
  std::unique_ptr<RegionNumbering> N(new RegionNumbering());
  N->R = &R;
  size_t NN = R.nodes().size();
  N->NumPathsOf.assign(NN, 0);
  N->EdgeVals.assign(R.edges().size(), 0);
  N->DummyVals.assign(NN, 0);

  // Region nodes were created in RPO, so reverse index order is a
  // topological order with successors first (all region edges go from a
  // lower to a higher node index).
  for (uint32_t I = static_cast<uint32_t>(NN); I-- > 0;) {
    const OverlapRegionNode &Node = R.nodes()[I];
    uint64_t Sum = 0;
    for (uint32_t E : R.outEdges(I)) {
      assert(R.edges()[E].To > I && "region edges must go index-forward");
      uint64_t T = N->NumPathsOf[R.edges()[E].To];
      if (Sum > MaxPaths - T) {
        Error = "overlap region has more than " + std::to_string(MaxPaths) +
                " paths";
        return nullptr;
      }
      N->EdgeVals[E] = static_cast<int64_t>(Sum);
      Sum += T;
    }
    if (Node.needsDummy()) {
      N->DummyVals[I] = static_cast<int64_t>(Sum);
      Sum += 1;
    }
    assert(Sum > 0 && "region node with no way to end a path");
    N->NumPathsOf[I] = Sum;
  }
  return N;
}

std::vector<uint32_t> RegionNumbering::decode(int64_t Id) const {
  assert(Id >= 0 && static_cast<uint64_t>(Id) < numPaths() &&
         "region path id out of range");
  std::vector<uint32_t> Seq;
  uint64_t Rem = static_cast<uint64_t>(Id);
  uint32_t Node = 0;
  while (true) {
    Seq.push_back(Node);
    const OverlapRegionNode &ND = R->nodes()[Node];
    uint32_t Next = UINT32_MAX;
    for (uint32_t E : R->outEdges(Node)) {
      uint64_t Lo = static_cast<uint64_t>(EdgeVals[E]);
      uint64_t Width = NumPathsOf[R->edges()[E].To];
      if (Lo <= Rem && Rem < Lo + Width) {
        Next = R->edges()[E].To;
        Rem -= Lo;
        break;
      }
    }
    if (Next == UINT32_MAX) {
      assert(ND.needsDummy() &&
             Rem == static_cast<uint64_t>(DummyVals[Node]) &&
             "region id does not decode to a path");
      return Seq;
    }
    Node = Next;
  }
}

int64_t RegionNumbering::encode(const std::vector<uint32_t> &NodeSeq) const {
  assert(!NodeSeq.empty() && NodeSeq.front() == 0 &&
         "region paths start at the anchor");
  uint64_t Sum = 0;
  for (size_t I = 0; I + 1 < NodeSeq.size(); ++I) {
    bool Found = false;
    for (uint32_t E : R->outEdges(NodeSeq[I])) {
      if (R->edges()[E].To == NodeSeq[I + 1]) {
        Sum += static_cast<uint64_t>(EdgeVals[E]);
        Found = true;
        break;
      }
    }
    assert(Found && "node sequence is not a region path");
    (void)Found;
  }
  Sum += static_cast<uint64_t>(DummyVals[NodeSeq.back()]);
  return static_cast<int64_t>(Sum);
}
