//===--- OverlapRegion.h - Overlapping-graph region computation -*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the *overlapping graph* (paper §2.3 and §3.3): the set of blocks
/// reachable from an anchor while at most k+1 predicate blocks have been
/// entered, together with the paper's DI/PI/DNI edge classification and the
/// set of nodes that need a dummy edge to Exit (flush sites).
///
/// The same computation serves all three uses:
///   - loop overlap: anchor = loop header, region restricted to the loop
///     body, loop-exit edges are flush triggers;
///   - interprocedural Type I: anchor = callee entry, whole function;
///   - interprocedural Type II: anchor = the call-site block (exempt from
///     call truncation because the continuation resumes inside it).
///
/// Region paths never cross a backedge (interesting paths cross theirs
/// exactly once), and in call-breaking mode they never cross a call block.
/// Every dynamic way a region can end has a dummy at the node where it ends:
/// entering the (k+1)-th predicate, leaving the restriction (loop exit),
/// taking any backedge, reaching a call block, or returning.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_OVERLAP_OVERLAPREGION_H
#define OLPP_OVERLAP_OVERLAPREGION_H

#include "analysis/LoopInfo.h"

#include <cstdint>
#include <vector>

namespace olpp {

class Function;

/// The paper's instrumentation classes for region edges.
enum class OverlapEdgeClass : uint8_t {
  DI, ///< definitely instrumented: every path to the edge has <= k predicates
  PI, ///< possibly instrumented: only some paths have <= k predicates
};

/// Why a region node needs a dummy edge to Exit (bitmask).
enum DummyReason : uint8_t {
  DR_None = 0,
  DR_TerminalPredicate = 1 << 0, ///< can be entered as the (k+1)-th predicate
  DR_LeavesRestriction = 1 << 1, ///< has a loop-exit edge
  DR_Backedge = 1 << 2,          ///< has an outgoing backedge
  DR_CallBreak = 1 << 3,         ///< is a call block in call-breaking mode
  DR_Return = 1 << 4,            ///< ends in Ret
};

struct OverlapRegionNode {
  uint32_t Block = 0;
  /// Min/max number of predicate blocks on region paths from the anchor to
  /// this node, *excluding* the node itself; capped at Degree + 1.
  uint32_t MinPredsExcl = 0;
  uint32_t MaxPredsExcl = 0;
  bool IsPredicate = false;
  /// True if the region continues past this node along some path.
  bool Extendable = false;
  uint8_t DummyReasons = DR_None;

  bool needsDummy() const { return DummyReasons != DR_None; }
};

struct OverlapRegionEdge {
  /// Indices into OverlapRegion::Nodes.
  uint32_t From = 0;
  uint32_t To = 0;
  OverlapEdgeClass Cls = OverlapEdgeClass::DI;
};

struct OverlapRegionParams {
  uint32_t Anchor = 0;
  uint32_t Degree = 0; ///< the paper's k
  /// Block-id bitmap restricting the region (the loop body); empty means the
  /// whole function.
  std::vector<bool> Restrict;
  /// Region paths end at call blocks (call-breaking mode).
  bool BreakAtCalls = false;
  /// The anchor itself is not truncated by BreakAtCalls (Type II regions).
  bool AnchorExemptFromCallBreak = false;
};

/// The computed region. Node 0 is always the anchor.
class OverlapRegion {
public:
  static OverlapRegion compute(const Function &F, const CfgView &Cfg,
                               const LoopInfo &LI,
                               const OverlapRegionParams &Params);

  const OverlapRegionParams &params() const { return Params; }
  const std::vector<OverlapRegionNode> &nodes() const { return Nodes; }
  const std::vector<OverlapRegionEdge> &edges() const { return Edges; }

  /// Region node index of CFG block \p B, or UINT32_MAX.
  uint32_t nodeForBlock(uint32_t B) const {
    return B < BlockToNode.size() ? BlockToNode[B] : UINT32_MAX;
  }
  bool containsBlock(uint32_t B) const {
    return nodeForBlock(B) != UINT32_MAX;
  }

  /// Out-edge indices of region node \p N, in CFG successor order.
  const std::vector<uint32_t> &outEdges(uint32_t N) const {
    return OutEdges[N];
  }

private:
  OverlapRegionParams Params;
  std::vector<OverlapRegionNode> Nodes;
  std::vector<OverlapRegionEdge> Edges;
  std::vector<std::vector<uint32_t>> OutEdges;
  std::vector<uint32_t> BlockToNode;
};

/// True if \p B contains a Call instruction.
bool isCallBlock(const Function &F, uint32_t B);

/// The maximum possible overlap degree from \p Anchor: the largest number of
/// predicates on any region path minus one (the paper's "k max"). Paths are
/// capped at \p Cap to keep this finite on large functions.
uint32_t maxOverlapDegree(const Function &F, const CfgView &Cfg,
                          const LoopInfo &LI, const OverlapRegionParams &Base,
                          uint32_t Cap = 64);

} // namespace olpp

#endif // OLPP_OVERLAP_OVERLAPREGION_H
