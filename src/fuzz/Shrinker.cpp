//===--- Shrinker.cpp - Greedy structural MiniC reducer ------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Shrinker.h"

#include <cctype>
#include <string>
#include <vector>

using namespace olpp;

namespace {

std::vector<std::string> splitLines(const std::string &Source) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Source) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const auto &L : Lines) {
    Out += L;
    Out.push_back('\n');
  }
  return Out;
}

bool isBlank(const std::string &L) {
  for (char C : L)
    if (!std::isspace(static_cast<unsigned char>(C)))
      return false;
  return true;
}

bool isComment(const std::string &L) {
  size_t I = L.find_first_not_of(" \t");
  return I != std::string::npos && L.compare(I, 2, "//") == 0;
}

/// Net brace depth change of one line ('{' opens, '}' closes). The generator
/// never emits braces inside string literals, so plain counting is exact.
int braceDelta(const std::string &L) {
  int D = 0;
  for (char C : L)
    D += C == '{' ? 1 : C == '}' ? -1 : 0;
  return D;
}

/// Index of the line where the block opened on line \p Open returns to its
/// entry depth, or npos. `} else {` lines are depth-neutral, so an if/else
/// matches its final `}`.
size_t matchingClose(const std::vector<std::string> &Lines, size_t Open) {
  int Depth = 0;
  for (size_t I = Open; I < Lines.size(); ++I) {
    Depth += braceDelta(Lines[I]);
    if (Depth <= 0 && I > Open)
      return I;
    if (Depth <= 0 && I == Open)
      return std::string::npos; // line did not open a block
  }
  return std::string::npos;
}

bool isFnHeader(const std::string &L) {
  size_t I = L.find_first_not_of(" \t");
  return I != std::string::npos && L.compare(I, 3, "fn ") == 0;
}

bool isMainHeader(const std::string &L) {
  return L.find("fn main") != std::string::npos;
}

bool isLoopHeader(const std::string &L) {
  size_t I = L.find_first_not_of(" \t");
  if (I == std::string::npos)
    return false;
  return L.compare(I, 6, "while ") == 0 || L.compare(I, 7, "while(") == 0 ||
         L.compare(I, 4, "for ") == 0 || L.compare(I, 4, "for(") == 0 ||
         L.compare(I, 2, "do") == 0;
}

/// The shrinker state: a line vector plus the acceptance bookkeeping. Each
/// try* method builds one candidate, asks the predicate, and commits the
/// edit only on success.
class Shrinker {
public:
  Shrinker(const std::string &Source, const ShrinkPredicate &StillFails,
           uint32_t MaxAttempts)
      : Lines(splitLines(Source)), StillFails(StillFails),
        MaxAttempts(MaxAttempts) {}

  ShrinkResult run() {
    bool Progress = true;
    while (Progress && Attempts < MaxAttempts) {
      Progress = false;
      Progress |= passStubFunctions();
      Progress |= passDropBlocks();
      Progress |= passUnrollLoops();
      Progress |= passDropStatements();
      Progress |= passShrinkConstants();
      ++Rounds;
    }
    ShrinkResult R;
    R.Source = joinLines(Lines);
    R.Rounds = Rounds;
    R.Attempts = Attempts;
    R.Accepted = Accepted;
    return R;
  }

private:
  bool accept(std::vector<std::string> Candidate) {
    if (Attempts >= MaxAttempts)
      return false;
    ++Attempts;
    if (!StillFails(joinLines(Candidate)))
      return false;
    Lines = std::move(Candidate);
    ++Accepted;
    return true;
  }

  /// Replace every non-main function body with `return 0;`, largest win
  /// first. Call sites keep compiling because the signature survives.
  bool passStubFunctions() {
    bool Any = false;
    for (size_t I = 0; I < Lines.size(); ++I) {
      if (!isFnHeader(Lines[I]) || isMainHeader(Lines[I]))
        continue;
      size_t Close = matchingClose(Lines, I);
      if (Close == std::string::npos || Close <= I + 2)
        continue; // already a stub (header, one line, close)
      std::vector<std::string> Cand(Lines.begin(), Lines.begin() + I + 1);
      Cand.push_back("  return 0;");
      Cand.insert(Cand.end(), Lines.begin() + Close, Lines.end());
      Any |= accept(std::move(Cand));
    }
    return Any;
  }

  /// Delete whole brace-balanced regions: an if/loop header line together
  /// with everything through its matching close.
  bool passDropBlocks() {
    bool Any = false;
    for (size_t I = 0; I < Lines.size(); ++I) {
      if (braceDelta(Lines[I]) <= 0 || isFnHeader(Lines[I]))
        continue;
      size_t Close = matchingClose(Lines, I);
      if (Close == std::string::npos)
        continue;
      std::vector<std::string> Cand(Lines.begin(), Lines.begin() + I);
      Cand.insert(Cand.end(), Lines.begin() + Close + 1, Lines.end());
      if (accept(std::move(Cand)))
        Any = true; // Lines shrank; the line now at I is unvisited
    }
    return Any;
  }

  /// Delete just a loop's header and closing line, leaving one straight-line
  /// copy of the body ("unrolling" the loop to a single iteration).
  bool passUnrollLoops() {
    bool Any = false;
    for (size_t I = 0; I < Lines.size(); ++I) {
      if (!isLoopHeader(Lines[I]) || braceDelta(Lines[I]) <= 0)
        continue;
      size_t Close = matchingClose(Lines, I);
      if (Close == std::string::npos)
        continue;
      std::vector<std::string> Cand(Lines.begin(), Lines.begin() + I);
      Cand.insert(Cand.end(), Lines.begin() + I + 1, Lines.begin() + Close);
      Cand.insert(Cand.end(), Lines.begin() + Close + 1, Lines.end());
      Any |= accept(std::move(Cand));
    }
    return Any;
  }

  /// Delete single statement lines (`...;` with no brace structure).
  bool passDropStatements() {
    bool Any = false;
    for (size_t I = 0; I < Lines.size(); ++I) {
      const std::string &L = Lines[I];
      if (isBlank(L) || isComment(L) || braceDelta(L) != 0 ||
          L.find('{') != std::string::npos)
        continue;
      size_t Last = L.find_last_not_of(" \t");
      if (Last == std::string::npos || L[Last] != ';')
        continue;
      std::vector<std::string> Cand(Lines.begin(), Lines.begin() + I);
      Cand.insert(Cand.end(), Lines.begin() + I + 1, Lines.end());
      if (accept(std::move(Cand)))
        Any = true;
    }
    return Any;
  }

  /// Rewrite integer literals >= 2 down to 1, one literal per attempt.
  bool passShrinkConstants() {
    bool Any = false;
    for (size_t I = 0; I < Lines.size(); ++I) {
      if (isComment(Lines[I]))
        continue;
      for (size_t P = 0; P < Lines[I].size();) {
        const std::string &L = Lines[I];
        if (!std::isdigit(static_cast<unsigned char>(L[P]))) {
          ++P;
          continue;
        }
        // Skip digits glued to an identifier (v12, f3, buf indices are fine
        // to shrink but names are not).
        if (P > 0 && (std::isalnum(static_cast<unsigned char>(L[P - 1])) ||
                      L[P - 1] == '_')) {
          ++P;
          continue;
        }
        size_t End = P;
        while (End < L.size() &&
               std::isdigit(static_cast<unsigned char>(L[End])))
          ++End;
        std::string Lit = L.substr(P, End - P);
        if (Lit.size() == 1 && (Lit == "0" || Lit == "1")) {
          P = End;
          continue;
        }
        std::vector<std::string> Cand = Lines;
        Cand[I] = L.substr(0, P) + "1" + L.substr(End);
        if (accept(std::move(Cand))) {
          Any = true;
          ++P; // literal is now "1"; move past it
        } else {
          P = End;
        }
      }
    }
    return Any;
  }

  std::vector<std::string> Lines;
  const ShrinkPredicate &StillFails;
  uint32_t MaxAttempts;
  uint32_t Rounds = 0;
  uint32_t Attempts = 0;
  uint32_t Accepted = 0;
};

} // namespace

ShrinkResult olpp::shrinkProgram(const std::string &Source,
                                 const ShrinkPredicate &StillFails,
                                 uint32_t MaxAttempts) {
  return Shrinker(Source, StillFails, MaxAttempts).run();
}

size_t olpp::countCodeLines(const std::string &Source) {
  size_t N = 0;
  for (const auto &L : splitLines(Source))
    if (!isBlank(L) && !isComment(L))
      ++N;
  return N;
}
