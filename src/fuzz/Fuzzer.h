//===--- Fuzzer.h - Differential fuzzing of the profiling stack -*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential fuzzing harness behind `olpp fuzz`. One master seed
/// deterministically derives a whole case: generator options (program
/// shape + program seed), the arguments main runs with, and the
/// instrumentation configuration. Each generated program is then
/// cross-checked against every redundant oracle pair the project owns:
///
///   engine-diff    fast engine vs reference engine (return value, dynamic
///                  counts, and every raw counter, bit for bit),
///   counter-store  dense/spill PathCounterStore + flat interproc table vs
///                  a re-run into an unconfigured (pure hash map) runtime,
///   decode         raw counters vs the counters recomputed by definition
///                  from the control-flow trace (ExpectedCounters), plus
///                  the checked profile decoder accepting the live records,
///   solver-diff    worklist interval solver vs the dense sweep solver,
///   bounds         eq. 1-18 invariant: definite <= real <= potential and
///                  no per-path soundness violation,
///   abort          both engines aborted mid-run (fuel) must agree exactly,
///                  and a runtime reused across aborted runs must equal
///                  fresh runtimes merged (resetTransient correctness),
///   roundtrip      the profile serialized to the .olpp container, read back
///                  by the checked reader, must compare artifact-equal and
///                  reproduce the solver's bounds exactly; additionally every
///                  deterministic byte mutation (bit flips, truncations) of
///                  the serialized artifact must be rejected wholesale,
///   feasibility    no path id the program just executed may be classified
///                  statically infeasible (one concrete run refutes a
///                  universal proof), and feeding the proven-infeasible
///                  pairs to the interval solver must only tighten the
///                  definite/potential bounds while still bracketing the
///                  ground truth,
///   trace          the tracing tier (interp/TraceTier.h) forced hot with a
///                  recording threshold of 1 vs the reference engine: return
///                  value, dynamic counts and every raw counter must stay
///                  bit-exact, and an abort landing mid-trace (half budget)
///                  must fail with the identical error and counters,
///   opt            the profile-guided optimizer (opt/Optimizer.h) fed the
///                  artifact the case just recorded: the optimized module
///                  must verify, re-instrument with a clean audit, and agree
///                  with the base program's return value on both engines
///                  with bit-identical dynamic counts between them.
///
/// Failures are reported as structured Diagnostics (pass "fuzz-<oracle>")
/// with a replay hint, and optionally minimized by the structural shrinker
/// (fuzz/Shrinker.h) before reporting.
///
/// FaultKind exists for the harness's own mutation test: it injects a
/// deliberate counter defect into one comparison so the test suite can
/// prove the fuzzer both catches and shrinks a real bug.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_FUZZ_FUZZER_H
#define OLPP_FUZZ_FUZZER_H

#include "profile/Instrumenter.h"
#include "support/Diagnostic.h"
#include "workloads/Generator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace olpp {

enum class FuzzOracle : uint8_t {
  Generate,     ///< generated program failed to compile (generator bug)
  EngineDiff,   ///< fast vs reference engine divergence
  CounterStore, ///< dense/flat stores vs unconfigured hash-map runtime
  Decode,       ///< profile counters vs trace-derived expectation
  SolverDiff,   ///< worklist vs sweep interval solver
  Bounds,       ///< definite <= real <= potential violated
  Abort,        ///< aborted-run divergence or runtime-reuse inconsistency
  Roundtrip,    ///< .olpp serialize/read mismatch or silent mutant acceptance
  Feasibility,  ///< executed path classified infeasible, or facts widened
                ///< the solver's bounds
  Trace,        ///< trace-enabled fast engine diverged from the reference
                ///< (terminating or aborted mid-trace)
  Opt,          ///< profile-guided optimizer broke the program: the
                ///< optimized module failed verification, re-instrumentation
                ///< or the instrumentation audit, or disagreed with the
                ///< reference engine on return value or dynamic counts
  Serve,        ///< streamed-upload aggregation diverged: a serve snapshot
                ///< was not bit-identical to the offline fold of the acked
                ///< uploads, or a malformed/truncated frame altered state
};

const char *fuzzOracleName(FuzzOracle O);

/// Deliberate defects the harness can inject into its own comparisons.
/// Used by the mutation test to prove the oracles have teeth; never enabled
/// from the CLI.
enum class FaultKind : uint8_t {
  None,
  DropTypeI,       ///< lose one Type I tuple from the fast engine's table
  SkewPathCounter, ///< off-by-one on one fast-engine path counter
  SkewArtifactRoundtrip, ///< bump one decoded counter between read and compare
  ArtifactCrcOff,  ///< read mutated artifacts with CRC verification disabled
  MisclassifyFeasible, ///< claim one executed path id is statically infeasible
  MisinlineCallee, ///< drop the return-value move of every inlined callee
  DropTraceGuard,  ///< trace optimizer deletes the body's last branch guard
  DropFrameAck,    ///< serve store acks one upload without folding it
};

struct FuzzOptions {
  /// First master seed; case I uses SeedBase + I.
  uint64_t SeedBase = 1;
  uint32_t NumSeeds = 100;
  /// Minimize failing programs before reporting.
  bool Shrink = false;
  /// Step budget for the uninstrumented probe run. Instrumented runs get
  /// 8x this (probes are counted instructions, and the paper's worst-case
  /// overhead stays well under that factor).
  uint64_t MaxSteps = 2'000'000;
  /// Predicate-evaluation budget per shrink.
  uint32_t MaxShrinkAttempts = 3000;
  FaultKind Fault = FaultKind::None;
  /// Worker threads checking seeds concurrently (`olpp fuzz --jobs`);
  /// 0 = one per core. Seeds are independent and the report aggregates
  /// outcomes in seed order, so the output is identical for every job
  /// count — parallelism changes wall-clock, never the report.
  unsigned Jobs = 1;
};

struct FuzzFailure {
  uint64_t MasterSeed = 0;
  FuzzOracle Oracle = FuzzOracle::EngineDiff;
  GeneratorOptions GenOpts;
  InstrumentOptions InstrOpts;
  std::vector<int64_t> Args;
  std::string Detail;         ///< what diverged, first mismatch spelled out
  std::string Source;         ///< the failing program (shrunk when Shrunk)
  std::string OriginalSource; ///< pre-shrink program ("" when !Shrunk)
  bool Shrunk = false;
};

struct FuzzReport {
  uint32_t SeedsRun = 0;
  uint32_t Clean = 0;
  /// Seeds whose program exhausts the step budget even uninstrumented.
  /// They still exercise the abort oracle but skip the terminating-run
  /// oracles.
  uint32_t Skipped = 0;
  std::vector<FuzzFailure> Failures;

  bool ok() const { return Failures.empty(); }
  /// Failures as structured diagnostics (pass "fuzz-<oracle>", message
  /// includes the replay seed) plus a trailing summary note.
  std::vector<Diagnostic> toDiagnostics() const;
  /// Human-readable multi-line report (failures with sources + summary).
  std::string str() const;
};

/// Runs generated programs through every oracle pair. Deterministic: the
/// same FuzzOptions always produce the same report.
class DifferentialRunner {
public:
  explicit DifferentialRunner(const FuzzOptions &Opts) : Opts(Opts) {}

  /// Fuzzes Opts.NumSeeds cases, shrinking failures when Opts.Shrink.
  FuzzReport run() const;

  enum class CaseStatus : uint8_t { Clean, Skipped, Failed };

  /// Everything one master seed derives besides the program text.
  struct CaseSetup {
    GeneratorOptions GenOpts;
    InstrumentOptions InstrOpts;
    std::vector<int64_t> Args;
  };
  static CaseSetup deriveSetup(uint64_t MasterSeed);

  /// Checks one case end to end. \p Failure is filled on Failed.
  CaseStatus checkCase(uint64_t MasterSeed, FuzzFailure *Failure) const;

  /// Checks \p Source under a fixed setup (the shrinker re-enters here with
  /// candidate programs; the setup must stay pinned so the failure is
  /// chased, not the program shape).
  CaseStatus checkProgram(const std::string &Source, const CaseSetup &Setup,
                          FuzzFailure *Failure) const;

private:
  FuzzOptions Opts;
};

} // namespace olpp

#endif // OLPP_FUZZ_FUZZER_H
