//===--- Shrinker.h - Greedy structural MiniC reducer -----------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy structural minimizer for failing fuzz programs. Works on MiniC
/// source text (one statement per line, the shape generateProgram emits)
/// and repeatedly tries semantic-shrinking edits, keeping each edit only if
/// the caller's predicate says the original failure still reproduces:
///
///   - drop functions: replace a non-main function body with `return 0;`
///     (the signature stays, so call sites keep compiling),
///   - drop blocks: delete a brace-balanced line range (an if/loop with its
///     whole body) or a single statement line,
///   - unroll loops: delete just a loop's header and closing line, leaving
///     one straight-line copy of the body,
///   - shrink constants: rewrite integer literals >= 2 down to 1.
///
/// Edits that no longer compile are rejected by the predicate like any
/// other non-reproducing candidate, so the shrinker needs no language
/// smarts beyond line/brace structure.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_FUZZ_SHRINKER_H
#define OLPP_FUZZ_SHRINKER_H

#include <cstdint>
#include <functional>
#include <string>

namespace olpp {

/// Returns true when \p Source still compiles and still exhibits the
/// original failure. Called once per candidate edit.
using ShrinkPredicate = std::function<bool(const std::string &Source)>;

struct ShrinkResult {
  std::string Source;    ///< the minimized program (== input if nothing held)
  uint32_t Rounds = 0;   ///< full passes over the edit kinds
  uint32_t Attempts = 0; ///< candidate edits tried
  uint32_t Accepted = 0; ///< candidate edits kept
};

/// Greedily minimizes \p Source under \p StillFails. \p MaxAttempts bounds
/// the total number of predicate evaluations (each one re-runs the failing
/// oracle, which is the expensive part).
ShrinkResult shrinkProgram(const std::string &Source,
                           const ShrinkPredicate &StillFails,
                           uint32_t MaxAttempts = 3000);

/// Number of non-empty, non-comment lines of \p Source (the "30 lines of
/// MiniC" metric failure reports quote).
size_t countCodeLines(const std::string &Source);

} // namespace olpp

#endif // OLPP_FUZZ_SHRINKER_H
