//===--- Fuzzer.cpp - Differential fuzzing of the profiling stack --------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "analysis/Feasibility.h"
#include "analysis/Summary.h"
#include "driver/Pipeline.h"
#include "estimate/Estimators.h"
#include "estimate/IntervalSolver.h"
#include "frontend/Compiler.h"
#include "fuzz/Shrinker.h"
#include "interp/Interpreter.h"
#include "interp/TraceOpt.h"
#include "ir/Module.h"
#include "opt/Optimizer.h"
#include "profdata/Merge.h"
#include "profdata/ProfData.h"
#include "profile/InfeasiblePaths.h"
#include "serve/Session.h"
#include "serve/ShardStore.h"
#include "profile/InstrCheck.h"
#include "profile/ProfileDecode.h"
#include "support/Rng.h"
#include "support/TaskPool.h"
#include "wpp/ExpectedCounters.h"

#include <algorithm>
#include <string>
#include <vector>

using namespace olpp;

const char *olpp::fuzzOracleName(FuzzOracle O) {
  switch (O) {
  case FuzzOracle::Generate:
    return "generate";
  case FuzzOracle::EngineDiff:
    return "engine-diff";
  case FuzzOracle::CounterStore:
    return "counter-store";
  case FuzzOracle::Decode:
    return "decode";
  case FuzzOracle::SolverDiff:
    return "solver-diff";
  case FuzzOracle::Bounds:
    return "bounds";
  case FuzzOracle::Abort:
    return "abort";
  case FuzzOracle::Roundtrip:
    return "roundtrip";
  case FuzzOracle::Feasibility:
    return "feasibility";
  case FuzzOracle::Trace:
    return "trace";
  case FuzzOracle::Opt:
    return "opt";
  case FuzzOracle::Serve:
    return "serve";
  }
  return "?";
}

namespace {

std::string describeInstrOpts(const InstrumentOptions &O) {
  std::string S;
  if (O.Interproc)
    S = "interproc k=" + std::to_string(O.InterprocDegree);
  else if (O.LoopOverlap)
    S = "overlap k=" + std::to_string(O.LoopDegree);
  else
    S = "plain-bl";
  if (O.LoopOverlap && O.Interproc)
    S += " loop-k=" + std::to_string(O.LoopDegree);
  S += O.UseChords ? " chords" : " naive";
  return S;
}

bool keyLess(const InterprocKey &A, const InterprocKey &B) {
  if (A.Callee != B.Callee)
    return A.Callee < B.Callee;
  if (A.CallSite != B.CallSite)
    return A.CallSite < B.CallSite;
  if (A.Inner != B.Inner)
    return A.Inner < B.Inner;
  return A.Outer < B.Outer;
}

std::string renderKey(const InterprocKey &K) {
  return "(callee=" + std::to_string(K.Callee) +
         " cs=" + std::to_string(K.CallSite) +
         " inner=" + std::to_string(K.Inner) +
         " outer=" + std::to_string(K.Outer) + ")";
}

/// First mismatch between two path-count maps, or "" if equal. Keys are
/// sorted so the report is deterministic.
std::string diffPathMaps(const PathCounterStore::Map &A,
                         const PathCounterStore::Map &B,
                         const std::string &What) {
  std::vector<int64_t> Keys;
  for (const auto &KV : A)
    Keys.push_back(KV.first);
  for (const auto &KV : B)
    Keys.push_back(KV.first);
  std::sort(Keys.begin(), Keys.end());
  Keys.erase(std::unique(Keys.begin(), Keys.end()), Keys.end());
  for (int64_t K : Keys) {
    auto IA = A.find(K), IB = B.find(K);
    uint64_t VA = IA == A.end() ? 0 : IA->second;
    uint64_t VB = IB == B.end() ? 0 : IB->second;
    if (VA != VB)
      return What + ": path id " + std::to_string(K) + " counts " +
             std::to_string(VA) + " vs " + std::to_string(VB);
  }
  return "";
}

std::string diffInterprocMaps(const FlatInterprocTable::Map &A,
                              const FlatInterprocTable::Map &B,
                              const std::string &What) {
  std::vector<InterprocKey> Keys;
  for (const auto &KV : A)
    Keys.push_back(KV.first);
  for (const auto &KV : B)
    Keys.push_back(KV.first);
  std::sort(Keys.begin(), Keys.end(), keyLess);
  Keys.erase(std::unique(Keys.begin(), Keys.end(),
                         [](const InterprocKey &X, const InterprocKey &Y) {
                           return X == Y;
                         }),
             Keys.end());
  for (const InterprocKey &K : Keys) {
    auto IA = A.find(K), IB = B.find(K);
    uint64_t VA = IA == A.end() ? 0 : IA->second;
    uint64_t VB = IB == B.end() ? 0 : IB->second;
    if (VA != VB)
      return What + ": tuple " + renderKey(K) + " counts " +
             std::to_string(VA) + " vs " + std::to_string(VB);
  }
  return "";
}

/// The raw counters of one runtime, lifted to maps so differently
/// represented runtimes (dense vs spill, flat table vs hash map) compare by
/// value.
struct CounterSnapshot {
  std::vector<PathCounterStore::Map> PathCounts;
  FlatInterprocTable::Map TypeI, TypeII;

  static CounterSnapshot of(const ProfileRuntime &P) {
    CounterSnapshot S;
    for (const auto &Store : P.PathCounts)
      S.PathCounts.push_back(Store.toMap());
    S.TypeI = P.TypeICounts.toMap();
    S.TypeII = P.TypeIICounts.toMap();
    return S;
  }

  /// "" when equal, else the first mismatch.
  std::string diff(const CounterSnapshot &O, const std::string &AName,
                   const std::string &BName) const {
    std::string Tag = AName + " vs " + BName;
    size_t N = std::max(PathCounts.size(), O.PathCounts.size());
    static const PathCounterStore::Map EmptyPaths;
    for (size_t F = 0; F < N; ++F) {
      const auto &A = F < PathCounts.size() ? PathCounts[F] : EmptyPaths;
      const auto &B = F < O.PathCounts.size() ? O.PathCounts[F] : EmptyPaths;
      std::string D =
          diffPathMaps(A, B, Tag + ", function " + std::to_string(F));
      if (!D.empty())
        return D;
    }
    std::string D = diffInterprocMaps(TypeI, O.TypeI, Tag + ", Type I");
    if (!D.empty())
      return D;
    return diffInterprocMaps(TypeII, O.TypeII, Tag + ", Type II");
  }
};

/// Applies the injected defect to a snapshot (the mutation test's hook;
/// FaultKind::None leaves it untouched).
void applyFault(FaultKind Fault, CounterSnapshot &S) {
  switch (Fault) {
  case FaultKind::None:
    return;
  case FaultKind::DropTypeI: {
    if (S.TypeI.empty())
      return;
    auto Min = S.TypeI.begin();
    for (auto It = S.TypeI.begin(); It != S.TypeI.end(); ++It)
      if (keyLess(It->first, Min->first))
        Min = It;
    S.TypeI.erase(Min);
    return;
  }
  case FaultKind::SkewPathCounter: {
    for (auto &M : S.PathCounts) {
      if (M.empty())
        continue;
      auto Min = M.begin();
      for (auto It = M.begin(); It != M.end(); ++It)
        if (It->first < Min->first)
          Min = It;
      ++Min->second;
      return;
    }
    return;
  }
  case FaultKind::SkewArtifactRoundtrip:
  case FaultKind::ArtifactCrcOff:
  case FaultKind::MisclassifyFeasible:
  case FaultKind::MisinlineCallee:
  case FaultKind::DropTraceGuard:
  case FaultKind::DropFrameAck:
    return; // applied inside their own oracles, not here
  }
}

bool isFuelError(const std::string &E) {
  return E.find("fuel exhausted") != std::string::npos;
}

/// RAII restore of the thread's interval-solver implementation.
struct SolverImplGuard {
  SolverImpl Saved;
  SolverImplGuard() : Saved(threadSolverImpl()) {}
  ~SolverImplGuard() { setThreadSolverImpl(Saved); }
};

} // namespace

// --- report rendering ----------------------------------------------------

std::vector<Diagnostic> FuzzReport::toDiagnostics() const {
  std::vector<Diagnostic> Diags;
  for (const FuzzFailure &F : Failures) {
    std::string Msg = F.Detail + " [" + describeGeneratorOptions(F.GenOpts) +
                      "; " + describeInstrOpts(F.InstrOpts) +
                      "]; replay: olpp fuzz --seed " +
                      std::to_string(F.MasterSeed);
    Diags.push_back(makeDiag(Severity::Error,
                             std::string("fuzz-") + fuzzOracleName(F.Oracle),
                             "", std::move(Msg)));
  }
  Diags.push_back(makeDiag(
      Severity::Note, "fuzz", "",
      std::to_string(SeedsRun) + " seed(s): " + std::to_string(Clean) +
          " clean, " + std::to_string(Skipped) + " skipped (step budget), " +
          std::to_string(Failures.size()) + " failing"));
  return Diags;
}

std::string FuzzReport::str() const {
  std::string Out;
  for (const FuzzFailure &F : Failures) {
    Out += "FAILURE seed " + std::to_string(F.MasterSeed) + " [" +
           fuzzOracleName(F.Oracle) + "]\n";
    Out += "  " + F.Detail + "\n";
    Out += "  setup: " + describeGeneratorOptions(F.GenOpts) + "; " +
           describeInstrOpts(F.InstrOpts) + "; args";
    for (int64_t A : F.Args)
      Out += " " + std::to_string(A);
    Out += "\n";
    if (F.Shrunk)
      Out += "  shrunk to " + std::to_string(countCodeLines(F.Source)) +
             " line(s) from " +
             std::to_string(countCodeLines(F.OriginalSource)) + ":\n";
    else
      Out += "  program:\n";
    size_t Pos = 0;
    while (Pos < F.Source.size()) {
      size_t Eol = F.Source.find('\n', Pos);
      if (Eol == std::string::npos)
        Eol = F.Source.size();
      Out += "    " + F.Source.substr(Pos, Eol - Pos) + "\n";
      Pos = Eol + 1;
    }
  }
  Out += std::to_string(SeedsRun) + " seed(s): " + std::to_string(Clean) +
         " clean, " + std::to_string(Skipped) + " skipped (step budget), " +
         std::to_string(Failures.size()) + " failing\n";
  return Out;
}

// --- the runner ----------------------------------------------------------

DifferentialRunner::CaseSetup
DifferentialRunner::deriveSetup(uint64_t MasterSeed) {
  CaseSetup S;
  S.GenOpts = sampleGeneratorOptions(MasterSeed);
  // A distinct stream from the generator's so adding draws to either side
  // never perturbs the other. Fixed draw order, as in sampleGeneratorOptions.
  Rng R(MasterSeed ^ 0x9E3779B97F4A7C15ULL);
  S.Args = {static_cast<int64_t>(R.nextInRange(0, 9)),
            static_cast<int64_t>(R.nextInRange(0, 9))};
  uint64_t Mode = R.nextBelow(4);
  InstrumentOptions &O = S.InstrOpts;
  if (Mode == 1 || Mode == 2) {
    O.LoopOverlap = true;
    O.LoopDegree = static_cast<uint32_t>(R.nextInRange(0, 3));
  } else if (Mode == 3) {
    O.Interproc = true;
    O.InterprocDegree = static_cast<uint32_t>(R.nextInRange(0, 2));
    O.LoopOverlap = R.chance(1, 2);
    O.LoopDegree = O.LoopOverlap ? static_cast<uint32_t>(R.nextInRange(0, 2))
                                 : 0;
  }
  O.UseChords = R.chance(1, 2);
  return S;
}

DifferentialRunner::CaseStatus
DifferentialRunner::checkCase(uint64_t MasterSeed,
                              FuzzFailure *Failure) const {
  CaseSetup Setup = deriveSetup(MasterSeed);
  std::string Source = generateProgram(Setup.GenOpts);
  CaseStatus St = checkProgram(Source, Setup, Failure);
  if (St == CaseStatus::Failed)
    Failure->MasterSeed = MasterSeed;
  return St;
}

namespace {

/// Runs the abort oracle: under \p Budget steps the instrumented program
/// aborts mid-run; both engines must fail identically, and a runtime reused
/// across two aborted runs must equal two fresh aborted runtimes merged.
/// Returns "" on success, else the mismatch.
std::string checkAbortConsistency(const Module &Base,
                                  const DifferentialRunner::CaseSetup &Setup,
                                  uint64_t Budget) {
  std::unique_ptr<Module> Clone = Base.clone();
  ModuleInstrumentation MI = instrumentModule(*Clone, Setup.InstrOpts);
  if (!MI.ok())
    return "instrumentation failed: " + MI.Errors[0];
  const Function *Entry = Clone->findFunction("main");
  if (!Entry)
    return "no main";

  auto configure = [&](ProfileRuntime &P) {
    for (uint32_t F = 0; F < Clone->numFunctions(); ++F)
      if (MI.Funcs[F].PG)
        P.configurePathStore(F, MI.Funcs[F].PG->numPaths());
  };

  RunConfig RC;
  RC.MaxSteps = Budget;

  ProfileRuntime PRef(Clone->numFunctions());
  configure(PRef);
  RC.Engine = EngineKind::Reference;
  Interpreter IRef(*Clone, &PRef);
  RunResult RR = IRef.run(*Entry, Setup.Args, RC);

  ProfileRuntime PFast(Clone->numFunctions());
  configure(PFast);
  RC.Engine = EngineKind::Fast;
  Interpreter IFast(*Clone, &PFast);
  RunResult RF = IFast.run(*Entry, Setup.Args, RC);

  if (RR.Ok != RF.Ok)
    return "aborted-run status diverges: reference " +
           (RR.Ok ? std::string("ok") : "'" + RR.Error + "'") + ", fast " +
           (RF.Ok ? std::string("ok") : "'" + RF.Error + "'");
  if (!RR.Ok && RR.Error != RF.Error)
    return "abort error diverges: reference '" + RR.Error + "' vs fast '" +
           RF.Error + "'";
  if (!(RR.Counts == RF.Counts))
    return "aborted-run dynamic counts diverge (steps " +
           std::to_string(RR.Counts.Steps) + " vs " +
           std::to_string(RF.Counts.Steps) + ")";
  std::string D = CounterSnapshot::of(PRef).diff(CounterSnapshot::of(PFast),
                                                 "aborted reference",
                                                 "aborted fast");
  if (!D.empty())
    return D;

  // Runtime reuse across aborted runs: the abort can strand hand-off state
  // (e.g. fuel exhausted between a call probe and the frame push); the next
  // run's resetTransient must fully recover. Two aborted runs into one
  // runtime must therefore equal two fresh single-run runtimes merged.
  ProfileRuntime PReused(Clone->numFunctions());
  configure(PReused);
  Interpreter IReuse(*Clone, &PReused);
  IReuse.run(*Entry, Setup.Args, RC);
  PReused.resetTransient();
  if (!PReused.transientClean())
    return "resetTransient left hand-off state live";
  IReuse.resetGlobals();
  IReuse.run(*Entry, Setup.Args, RC);

  ProfileRuntime Expected(Clone->numFunctions());
  configure(Expected);
  Expected.mergeFrom(PFast);
  Expected.mergeFrom(PFast);
  return CounterSnapshot::of(PReused).diff(CounterSnapshot::of(Expected),
                                           "reused runtime (2 aborted runs)",
                                           "fresh runtimes merged");
}

/// Runs the trace oracle: the fast engine with the tracing tier forced hot
/// (recording threshold 1, so even small generated loops record and execute
/// traces; link threshold 1, so the very first side-exit deopt records a
/// bridge) against the reference engine, across three phases:
///
///   traced          — full budget, trace-local optimizer on
///   abort-mid-trace — fuel boundary at \p HalfBudget (0 = skip), so the
///                     abort can land inside a pass, between passes, or in
///                     the middle of a bridge recording
///   traced-noopt    — full budget with the optimizer off (verbatim traces),
///                     isolating executor bugs from optimizer bugs
///
/// The fast runs carry the static feasibility facts of the instrumented
/// module, exercising the bump cross-check. Return value, error, dynamic
/// counts and every raw counter must match bit for bit. \p Fault plants
/// FaultKind::DropTraceGuard into the optimizer so the mutation test can
/// prove this oracle catches a miscompiled trace. Returns "" on success,
/// else the mismatch.
std::string checkTraceConsistency(const Module &Base,
                                  const DifferentialRunner::CaseSetup &Setup,
                                  uint64_t Budget, uint64_t HalfBudget,
                                  FaultKind Fault) {
  std::unique_ptr<Module> Clone = Base.clone();
  ModuleInstrumentation MI = instrumentModule(*Clone, Setup.InstrOpts);
  if (!MI.ok())
    return "instrumentation failed: " + MI.Errors[0];
  const Function *Entry = Clone->findFunction("main");
  if (!Entry)
    return "no main";

  auto configure = [&](ProfileRuntime &P) {
    for (uint32_t F = 0; F < Clone->numFunctions(); ++F)
      if (MI.Funcs[F].PG)
        P.configurePathStore(F, MI.Funcs[F].PG->numPaths());
  };

  // Static path knowledge for the optimizer's bump cross-check, computed
  // the same way oracle 8 does (instrumentation is deterministic, so the
  // clone's path ids match the analysis').
  TraceFeasibilityFacts Facts;
  {
    ModuleSummaries Sums = computeSummaries(*Clone);
    for (uint32_t F = 0; F < Clone->numFunctions(); ++F) {
      const FunctionInstrumentation &FI = MI.Funcs[F];
      if (!FI.PG || !FI.Cfg)
        continue;
      FunctionInfeasibility Inf =
          computeInfeasiblePaths(*Clone->function(F), *FI.Cfg, *FI.PG, &Sums);
      if (Inf.Intervals.empty())
        continue;
      std::vector<TraceFeasibilityFacts::Interval> Iv;
      Iv.reserve(Inf.Intervals.size());
      for (const auto &I : Inf.Intervals)
        Iv.push_back({I.Lo, I.Hi});
      Facts.PerFunc.emplace_back(F, std::move(Iv));
    }
  }

  for (int Phase = 0; Phase < 3; ++Phase) {
    const uint64_t Steps = Phase == 1 ? HalfBudget : Budget;
    if (Phase == 1 && HalfBudget == 0)
      continue;
    const char *What = Phase == 0   ? "traced"
                       : Phase == 1 ? "abort-mid-trace"
                                    : "traced-noopt";

    RunConfig RC;
    RC.MaxSteps = Steps;
    RC.Engine = EngineKind::Reference;
    ProfileRuntime PRef(Clone->numFunctions());
    configure(PRef);
    Interpreter IRef(*Clone, &PRef);
    RunResult RR = IRef.run(*Entry, Setup.Args, RC);

    RC.Engine = EngineKind::Fast;
    RC.EnableTraces = true;
    RC.TraceThreshold = 1;
    RC.TraceLinkThreshold = 1;
    RC.EnableTraceOpt = Phase != 2;
    RC.TraceOptDropGuardFault =
        Phase != 2 && Fault == FaultKind::DropTraceGuard;
    RC.TraceFacts = &Facts;
    ProfileRuntime PFast(Clone->numFunctions());
    configure(PFast);
    Interpreter IFast(*Clone, &PFast);
    RunResult RF = IFast.run(*Entry, Setup.Args, RC);

    if (RR.Ok != RF.Ok)
      return std::string(What) + " status diverges: reference " +
             (RR.Ok ? std::string("ok") : "'" + RR.Error + "'") + ", fast " +
             (RF.Ok ? std::string("ok") : "'" + RF.Error + "'");
    if (!RR.Ok && RR.Error != RF.Error)
      return std::string(What) + " error diverges: reference '" + RR.Error +
             "' vs fast '" + RF.Error + "'";
    if (RR.Ok && RR.ReturnValue != RF.ReturnValue)
      return std::string(What) + " return value diverges: reference " +
             std::to_string(RR.ReturnValue) + " vs fast " +
             std::to_string(RF.ReturnValue);
    if (!(RR.Counts == RF.Counts))
      return std::string(What) + " dynamic counts diverge (steps " +
             std::to_string(RR.Counts.Steps) + " vs " +
             std::to_string(RF.Counts.Steps) + ")";
    std::string D = CounterSnapshot::of(PRef).diff(
        CounterSnapshot::of(PFast), (std::string(What) + " reference").c_str(),
        (std::string(What) + " fast").c_str());
    if (!D.empty())
      return D;
  }
  return "";
}

/// FaultKind::SkewArtifactRoundtrip's hook: perturbs one decoded counter
/// between the read and the comparison so artifactsEqual must flag the
/// mismatch (proves the round-trip oracle has teeth).
void skewArtifact(ProfileArtifact &A) {
  for (auto &S : A.Counters.PathCounts) {
    if (S.empty())
      continue;
    int64_t Id = 0;
    for (const auto &E : S) {
      Id = E.first;
      break;
    }
    S.add(Id, 1);
    return;
  }
  ++A.Meta.Runs; // no path counters at all: perturb provenance instead
}

/// The mutation sub-oracle: deterministic single-bit flips, strict-prefix
/// truncations and crafted checksum-field corruptions of a serialized
/// artifact, every one of which the checked reader must reject. Positions
/// derive from an FNV-1a hash of the bytes, so they vary with program shape
/// yet replay exactly per seed. Under FaultKind::ArtifactCrcOff the reader
/// runs with CRC verification disabled — the checksum-field mutants are then
/// silently accepted, which is exactly the defect this oracle exists to
/// catch. Returns "" on success, else the first silent acceptance.
std::string checkArtifactMutations(const std::string &Bytes, FaultKind Fault) {
  ProfDataReadOptions RO;
  RO.VerifyCrc = Fault != FaultKind::ArtifactCrcOff;
  auto accepted = [&](const std::string &Mut) {
    ProfileArtifact Out;
    std::vector<Diagnostic> Diags;
    return readProfileArtifactBytes(Mut, Out, Diags, RO);
  };

  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : Bytes)
    H = (H ^ C) * 0x100000001b3ULL;

  // 12 single-bit flips. Every payload byte sits under a CRC-32 (which
  // catches all single-bit errors), the header is self-checksummed, and a
  // corrupted section framing byte can only fail towards truncation or
  // missing/duplicate-section errors — so none of these may ever decode.
  for (unsigned I = 0; I < 12; ++I) {
    uint64_t X = H + 0x9E3779B97F4A7C15ULL * (I + 1);
    X ^= X >> 29;
    X *= 0xBF58476D1CE4E5B9ULL;
    X ^= X >> 32;
    size_t Pos = static_cast<size_t>(X % Bytes.size());
    unsigned Bit = static_cast<unsigned>((X >> 8) % 8);
    std::string Mut = Bytes;
    Mut[Pos] = static_cast<char>(Mut[Pos] ^ (1u << Bit));
    if (accepted(Mut))
      return "mutated artifact accepted: bit " + std::to_string(Bit) +
             " flipped at byte " + std::to_string(Pos) + " of " +
             std::to_string(Bytes.size());
  }

  // 4 strict-prefix truncations (length < full size, possibly 0).
  for (unsigned I = 0; I < 4; ++I) {
    uint64_t X = H + 0xD1B54A32D192ED03ULL * (I + 1);
    X ^= X >> 27;
    X *= 0x94D049BB133111EBULL;
    X ^= X >> 31;
    size_t Len = static_cast<size_t>(X % Bytes.size());
    if (accepted(Bytes.substr(0, Len)))
      return "truncated artifact accepted: prefix of " + std::to_string(Len) +
             " of " + std::to_string(Bytes.size()) + " byte(s)";
  }

  // Crafted checksum-field flips: the stored header CRC (byte 12) and the
  // first section's stored payload CRC. These leave every payload byte
  // intact, so only CRC verification can catch them.
  {
    std::string Mut = Bytes;
    Mut[12] = static_cast<char>(Mut[12] ^ 0x01);
    if (accepted(Mut))
      return "artifact with corrupted header checksum accepted (CRC "
             "verification disabled?)";
  }
  size_t LenOff = profdata::HeaderSize + 1;
  if (LenOff + 8 <= Bytes.size()) {
    uint64_t PayLen = 0;
    for (unsigned I = 0; I < 8; ++I)
      PayLen |= uint64_t(uint8_t(Bytes[LenOff + I])) << (8 * I);
    size_t CrcOff = LenOff + 8 + PayLen;
    if (CrcOff + 4 <= Bytes.size()) {
      std::string Mut = Bytes;
      Mut[CrcOff] = static_cast<char>(Mut[CrcOff] ^ 0x40);
      if (accepted(Mut))
        return "artifact with corrupted section checksum accepted (CRC "
               "verification disabled?)";
    }
  }
  return "";
}

} // namespace

DifferentialRunner::CaseStatus
DifferentialRunner::checkProgram(const std::string &Source,
                                 const CaseSetup &Setup,
                                 FuzzFailure *Failure) const {
  auto Fail = [&](FuzzOracle O, std::string Detail) {
    Failure->Oracle = O;
    Failure->Detail = std::move(Detail);
    Failure->GenOpts = Setup.GenOpts;
    Failure->InstrOpts = Setup.InstrOpts;
    Failure->Args = Setup.Args;
    Failure->Source = Source;
    return CaseStatus::Failed;
  };

  CompileResult CR = compileMiniC(Source);
  if (!CR.ok())
    return Fail(FuzzOracle::Generate,
                "generated program does not compile: " + CR.diagText());

  // Step-budget probe on the pristine program. Programs that exhaust it
  // still exercise the abort oracle but prove nothing about terminating
  // runs, so the remaining oracles are skipped.
  uint64_t ProbeSteps = 0;
  {
    Interpreter I(*CR.M);
    RunConfig RC;
    RC.MaxSteps = Opts.MaxSteps;
    const Function *Entry = CR.M->findFunction("main");
    if (!Entry)
      return Fail(FuzzOracle::Generate, "generated program has no main");
    RunResult R = I.run(*Entry, Setup.Args, RC);
    if (!R.Ok && isFuelError(R.Error)) {
      std::string D = checkAbortConsistency(*CR.M, Setup, Opts.MaxSteps);
      if (!D.empty())
        return Fail(FuzzOracle::Abort, D);
      return CaseStatus::Skipped;
    }
    if (!R.Ok)
      return Fail(FuzzOracle::Generate,
                  "uninstrumented run failed: " + R.Error);
    ProbeSteps = R.Counts.Steps;
  }

  // Both pipelines: baseline traced run + instrumented run, one per engine.
  PipelineConfig C;
  C.Instr = Setup.InstrOpts;
  C.Args = Setup.Args;
  C.Run.MaxSteps = Opts.MaxSteps * 8;
  C.Run.Engine = EngineKind::Reference;
  PipelineResult RRef = runPipeline(*CR.M, C);
  C.Run.Engine = EngineKind::Fast;
  PipelineResult RFast = runPipeline(*CR.M, C);

  bool RefFuel = !RRef.ok() && isFuelError(RRef.Errors[0]);
  bool FastFuel = !RFast.ok() && isFuelError(RFast.Errors[0]);
  if (RefFuel != FastFuel)
    return Fail(FuzzOracle::EngineDiff,
                "one engine ran out of fuel, the other did not (reference: " +
                    (RRef.ok() ? "ok" : RRef.Errors[0]) + "; fast: " +
                    (RFast.ok() ? "ok" : RFast.Errors[0]) + ")");
  if (RefFuel && FastFuel)
    return CaseStatus::Skipped; // probes pushed the program over budget
  if (!RRef.ok() || !RFast.ok())
    return Fail(FuzzOracle::EngineDiff,
                "pipeline failed (reference: " +
                    (RRef.ok() ? "ok" : RRef.Errors[0]) + "; fast: " +
                    (RFast.ok() ? "ok" : RFast.Errors[0]) + ")");

  // Oracle 1: engine differential, observables bit for bit.
  CounterSnapshot SRef = CounterSnapshot::of(*RRef.Prof);
  CounterSnapshot SFast = CounterSnapshot::of(*RFast.Prof);
  applyFault(Opts.Fault, SFast);
  if (RRef.ReturnValue != RFast.ReturnValue)
    return Fail(FuzzOracle::EngineDiff,
                "return value diverges: reference " +
                    std::to_string(RRef.ReturnValue) + " vs fast " +
                    std::to_string(RFast.ReturnValue));
  if (!(RRef.BaseCounts == RFast.BaseCounts))
    return Fail(FuzzOracle::EngineDiff, "baseline dynamic counts diverge");
  if (!(RRef.InstrCounts == RFast.InstrCounts))
    return Fail(FuzzOracle::EngineDiff,
                "instrumented dynamic counts diverge (steps " +
                    std::to_string(RRef.InstrCounts.Steps) + " vs " +
                    std::to_string(RFast.InstrCounts.Steps) + ")");
  if (std::string D = SRef.diff(SFast, "reference", "fast"); !D.empty())
    return Fail(FuzzOracle::EngineDiff, D);

  // Oracle 2: counter-store differential. Re-run the instrumented module
  // into an *unconfigured* runtime (pure spill-map representation) and
  // compare against the dense/flat stores of the pipeline run.
  {
    ProfileRuntime PMap(RFast.InstrModule->numFunctions());
    Interpreter I(*RFast.InstrModule, &PMap);
    const Function *Entry = RFast.InstrModule->findFunction("main");
    RunConfig RC;
    RC.MaxSteps = Opts.MaxSteps * 8;
    RunResult R = I.run(*Entry, Setup.Args, RC);
    if (!R.Ok)
      return Fail(FuzzOracle::CounterStore,
                  "map-runtime re-run failed: " + R.Error);
    std::string D = SFast.diff(CounterSnapshot::of(PMap), "dense stores",
                               "map stores");
    if (!D.empty())
      return Fail(FuzzOracle::CounterStore, D);
  }

  // Oracle 3: decode. Raw counters must equal the counters recomputed by
  // definition from the control-flow trace, and the checked profile decoder
  // must accept every record the runtime actually produced.
  {
    ExpectedCounters EC = computeExpectedCounters(RFast.MI, RFast.GT);
    CounterSnapshot SExp;
    SExp.PathCounts = EC.PathCounts;
    SExp.TypeI = EC.TypeICounts;
    SExp.TypeII = EC.TypeIICounts;
    std::string D = SFast.diff(SExp, "profiled", "trace-derived");
    if (!D.empty())
      return Fail(FuzzOracle::Decode, D);

    for (uint32_t F = 0; F < RFast.Prof->PathCounts.size(); ++F) {
      if (!RFast.MI.Funcs[F].PG)
        continue;
      std::vector<ProfileRecord> Records;
      for (const auto &KV : SFast.PathCounts[F])
        Records.push_back({KV.first, KV.second});
      std::sort(Records.begin(), Records.end(),
                [](const ProfileRecord &A, const ProfileRecord &B) {
                  return A.Id < B.Id;
                });
      std::vector<Diagnostic> Diags;
      std::vector<DecodedEntry> Entries =
          decodeProfileChecked(*RFast.MI.Funcs[F].PG, Records, Diags);
      if (!Diags.empty())
        return Fail(FuzzOracle::Decode,
                    "checked decoder rejected live records of function " +
                        std::to_string(F) + ": " + Diags[0].str());
      if (Entries.size() != Records.size())
        return Fail(FuzzOracle::Decode,
                    "checked decoder dropped records of function " +
                        std::to_string(F));
    }
  }

  // Oracles 4 + 5: the two interval-solver implementations must agree on
  // every metric, and the bounds must bracket the ground truth. MW outlives
  // the block: the round-trip oracle below compares the decoded artifact's
  // bounds against it.
  EstimateMetrics MW;
  {
    SolverImplGuard Guard;
    auto metrics = [&](SolverImpl Impl) {
      setThreadSolverImpl(Impl);
      ModuleEstimator Est(*RFast.InstrModule, RFast.MI, *RFast.Prof);
      EstimateMetrics M = Est.estimateLoops(&RFast.GT);
      if (Setup.InstrOpts.Interproc) {
        M.add(Est.estimateTypeI(&RFast.GT));
        M.add(Est.estimateTypeII(&RFast.GT));
      }
      return M;
    };
    MW = metrics(SolverImpl::Worklist);
    EstimateMetrics MS = metrics(SolverImpl::Sweep);
    EstimateMetrics MP = metrics(SolverImpl::Parallel);
    auto Differs = [](const EstimateMetrics &A, const EstimateMetrics &B) {
      return A.Definite != B.Definite || A.Potential != B.Potential ||
             A.Real != B.Real || A.Pairs != B.Pairs ||
             A.ExactPairs != B.ExactPairs ||
             A.SoundnessViolated != B.SoundnessViolated;
    };
    auto DiffText = [](const char *Pair, const EstimateMetrics &A,
                       const EstimateMetrics &B) {
      return std::string(Pair) + ": definite " + std::to_string(A.Definite) +
             "/" + std::to_string(B.Definite) + ", potential " +
             std::to_string(A.Potential) + "/" + std::to_string(B.Potential) +
             ", exact pairs " + std::to_string(A.ExactPairs) + "/" +
             std::to_string(B.ExactPairs);
    };
    if (Differs(MW, MS))
      return Fail(FuzzOracle::SolverDiff, DiffText("worklist vs sweep", MW, MS));
    if (Differs(MW, MP))
      return Fail(FuzzOracle::SolverDiff,
                  DiffText("worklist vs parallel", MW, MP));
    if (MW.SoundnessViolated)
      return Fail(FuzzOracle::Bounds, "per-path soundness violated");
    if (MW.Definite > MW.Real || MW.Real > MW.Potential)
      return Fail(FuzzOracle::Bounds,
                  "definite <= real <= potential violated: " +
                      std::to_string(MW.Definite) + " / " +
                      std::to_string(MW.Real) + " / " +
                      std::to_string(MW.Potential));
  }

  // Oracle 6: abort the instrumented program halfway and require both
  // engines and the runtime-reuse path to stay consistent.
  if (RFast.InstrCounts.Steps >= 4) {
    std::string D = checkAbortConsistency(*CR.M, Setup,
                                          RFast.InstrCounts.Steps / 2);
    if (!D.empty())
      return Fail(FuzzOracle::Abort, D);
  }
  (void)ProbeSteps;

  // Oracle 6b (the trace surface): the tracing tier forced hot — recording
  // threshold 1 instead of the default — must be invisible both on the
  // terminating run and when the fuel boundary lands mid-trace.
  {
    std::string D = checkTraceConsistency(
        *CR.M, Setup, Opts.MaxSteps * 8,
        RFast.InstrCounts.Steps >= 4 ? RFast.InstrCounts.Steps / 2 : 0,
        Opts.Fault);
    if (!D.empty())
      return Fail(FuzzOracle::Trace, D);
  }

  // Oracle 7: .olpp round trip. The profile serialized into the artifact
  // container and read back by the checked reader must compare equal and
  // reproduce the solver's conclusions exactly; then the mutation sub-oracle
  // requires every deterministic corruption of the bytes to be rejected.
  {
    RunMeta Meta;
    Meta.Workload = "fuzz";
    Meta.Instr = Setup.InstrOpts;
    Meta.Runs = 1;
    Meta.DynInstrCost = RFast.InstrCounts.Steps;
    Meta.TimestampUnix = 0;
    ProfileArtifact Art = ProfileArtifact::fromRuntime(
        *RFast.BaseModule, RFast.MI, *RFast.Prof, Meta);
    std::string Bytes = serializeProfileArtifact(Art);

    ProfileArtifact Back;
    std::vector<Diagnostic> Diags;
    if (!readProfileArtifactBytes(Bytes, Back, Diags))
      return Fail(FuzzOracle::Roundtrip,
                  "checked reader rejected a freshly written artifact: " +
                      (Diags.empty() ? std::string("(no diagnostic)")
                                     : Diags[0].str()));
    if (Opts.Fault == FaultKind::SkewArtifactRoundtrip)
      skewArtifact(Back);
    std::string FirstDiff;
    if (!artifactsEqual(Art, Back, &FirstDiff))
      return Fail(FuzzOracle::Roundtrip,
                  "round trip is not lossless: " + FirstDiff);

    // Re-run the estimator over the decoded counters: persisting a profile
    // must not change a single solver conclusion.
    {
      SolverImplGuard Guard;
      setThreadSolverImpl(SolverImpl::Worklist);
      ModuleEstimator Est(*RFast.InstrModule, RFast.MI, Back.Counters);
      EstimateMetrics MB = Est.estimateLoops(&RFast.GT);
      if (Setup.InstrOpts.Interproc) {
        MB.add(Est.estimateTypeI(&RFast.GT));
        MB.add(Est.estimateTypeII(&RFast.GT));
      }
      if (MB.Definite != MW.Definite || MB.Potential != MW.Potential ||
          MB.Real != MW.Real || MB.ExactPairs != MW.ExactPairs)
        return Fail(FuzzOracle::Roundtrip,
                    "bounds change across the round trip: definite " +
                        std::to_string(MW.Definite) + " -> " +
                        std::to_string(MB.Definite) + ", potential " +
                        std::to_string(MW.Potential) + " -> " +
                        std::to_string(MB.Potential) + ", exact pairs " +
                        std::to_string(MW.ExactPairs) + " -> " +
                        std::to_string(MB.ExactPairs));
    }

    std::string D = checkArtifactMutations(Bytes, Opts.Fault);
    if (!D.empty())
      return Fail(FuzzOracle::Roundtrip, D);
  }

  // Oracle 8: static feasibility. An infeasibility verdict is a claim about
  // *every* execution, so one concrete run is a complete counterexample: no
  // path id the instrumented run just counted may be classified infeasible.
  // And feeding the proven-infeasible pairs to the interval solver must only
  // tighten the bounds — never loosen them, never cross the ground truth.
  {
    ModuleSummaries Sums = computeSummaries(*RFast.InstrModule);
    for (uint32_t F = 0; F < RFast.Prof->PathCounts.size(); ++F) {
      const FunctionInstrumentation &FI = RFast.MI.Funcs[F];
      if (!FI.PG || !FI.Cfg)
        continue;
      FunctionInfeasibility Inf = computeInfeasiblePaths(
          *RFast.InstrModule->function(F), *FI.Cfg, *FI.PG, &Sums);
      // The mutation test's hook: pretend the analysis condemned the first
      // executed id of the first instrumented function.
      bool InjectHere = Opts.Fault == FaultKind::MisclassifyFeasible;
      for (const auto &[Id, Count] : RFast.Prof->PathCounts[F]) {
        if (Count == 0)
          continue;
        bool ClaimedDead = Inf.isInfeasible(Id) || InjectHere;
        InjectHere = false;
        if (ClaimedDead)
          return Fail(FuzzOracle::Feasibility,
                      "path id " + std::to_string(Id) + " of function " +
                          std::to_string(F) + " executed " +
                          std::to_string(Count) +
                          " time(s) but is classified statically infeasible");
      }
    }

    SolverImplGuard Guard;
    setThreadSolverImpl(SolverImpl::Worklist);
    PathFeasibility PF(*RFast.InstrModule, &Sums);
    ModuleEstimator Est(*RFast.InstrModule, RFast.MI, *RFast.Prof);
    Est.setFeasibility(&PF);
    EstimateMetrics MF = Est.estimateLoops(&RFast.GT);
    if (Setup.InstrOpts.Interproc) {
      MF.add(Est.estimateTypeI(&RFast.GT));
      MF.add(Est.estimateTypeII(&RFast.GT));
    }
    if (MF.SoundnessViolated)
      return Fail(FuzzOracle::Feasibility,
                  "per-path soundness violated once feasibility facts were "
                  "fed to the solver");
    if (MF.Definite < MW.Definite || MF.Potential > MW.Potential)
      return Fail(FuzzOracle::Feasibility,
                  "feasibility facts widened the bounds: definite " +
                      std::to_string(MW.Definite) + " -> " +
                      std::to_string(MF.Definite) + ", potential " +
                      std::to_string(MW.Potential) + " -> " +
                      std::to_string(MF.Potential));
    if (MF.Definite > MF.Real || MF.Real > MF.Potential)
      return Fail(FuzzOracle::Feasibility,
                  "definite <= real <= potential violated with feasibility "
                  "facts: " +
                      std::to_string(MF.Definite) + " / " +
                      std::to_string(MF.Real) + " / " +
                      std::to_string(MF.Potential));
  }

  // Oracle 10: profile-guided optimization. The artifact the case just
  // recorded drives the optimizer over the pristine module; whatever it
  // inlines or tail-duplicates, the result must verify, take
  // instrumentation again with a clean audit, and be indistinguishable at
  // runtime: the base program's return value on both engines, and dynamic
  // counts bit-identical between fast and reference.
  {
    RunMeta Meta;
    Meta.Workload = "fuzz";
    Meta.Instr = Setup.InstrOpts;
    Meta.Runs = 1;
    Meta.DynInstrCost = RFast.InstrCounts.Steps;
    Meta.TimestampUnix = 0;
    ProfileArtifact Art = ProfileArtifact::fromRuntime(
        *RFast.BaseModule, RFast.MI, *RFast.Prof, Meta);

    OptOptions OO;
    OO.MinCount = 1; // single-run fuzz profiles: every counted site is hot
    if (Opts.Fault == FaultKind::MisinlineCallee)
      OO.Fault = OptFault::MisinlineCallee;
    OptResult OR;
    std::vector<Diagnostic> OptDiags;
    if (!optimizeModule(*RFast.BaseModule, Art, OO, OR, OptDiags))
      return Fail(FuzzOracle::Opt,
                  "optimizer rejected its own output: " +
                      (OptDiags.empty() ? std::string("(no diagnostic)")
                                        : OptDiags.back().str()));

    // Re-instrumentability: the profile->optimize->profile loop must close.
    {
      auto InstrCopy = OR.OptModule->clone();
      ModuleInstrumentation OMI =
          instrumentModule(*InstrCopy, Setup.InstrOpts);
      if (!OMI.ok())
        return Fail(FuzzOracle::Opt,
                    "optimized module failed re-instrumentation: " +
                        OMI.Errors[0]);
      std::vector<Diagnostic> Audit = checkInstrumentation(*InstrCopy, OMI);
      if (!Audit.empty())
        return Fail(FuzzOracle::Opt,
                    "instrumentation audit failed on the optimized module: " +
                        Audit[0].str());
    }

    auto RunOpt = [&](EngineKind E, RunResult &Out) {
      const Function *Entry = OR.OptModule->findFunction("main");
      Interpreter I(*OR.OptModule);
      RunConfig RC;
      RC.MaxSteps = Opts.MaxSteps * 8;
      RC.Engine = E;
      Out = I.run(*Entry, Setup.Args, RC);
    };
    RunResult OFast, ORef;
    RunOpt(EngineKind::Fast, OFast);
    RunOpt(EngineKind::Reference, ORef);
    if (!OFast.Ok || !ORef.Ok)
      return Fail(FuzzOracle::Opt,
                  "optimized run failed (fast: " +
                      (OFast.Ok ? "ok" : OFast.Error) + "; reference: " +
                      (ORef.Ok ? "ok" : ORef.Error) + ")");
    if (OFast.ReturnValue != RFast.ReturnValue)
      return Fail(FuzzOracle::Opt,
                  "optimized module changed the result: base " +
                      std::to_string(RFast.ReturnValue) + " vs optimized " +
                      std::to_string(OFast.ReturnValue) + " (" +
                      std::to_string(OR.Stats.InlinedSites) +
                      " site(s) inlined, " +
                      std::to_string(OR.Stats.Superblocks) +
                      " superblock(s))");
    if (ORef.ReturnValue != OFast.ReturnValue)
      return Fail(FuzzOracle::Opt,
                  "engines disagree on the optimized module: fast " +
                      std::to_string(OFast.ReturnValue) + " vs reference " +
                      std::to_string(ORef.ReturnValue));
    if (!(OFast.Counts == ORef.Counts))
      return Fail(FuzzOracle::Opt,
                  "dynamic counts diverge between engines on the optimized "
                  "module");
  }

  // Oracle 11: streamed aggregation. The run's artifact is expanded into
  // weighted variants and uploaded to an in-process serve store over the
  // real framed protocol — shuffled order, a legal duplicate, a corrupted
  // payload and truncated/oversized frames injected along the way. The
  // final snapshot must be bit-identical to the offline mergeArtifacts
  // fold of exactly the acked uploads, and nothing rejected may have moved
  // a counter.
  {
    RunMeta Meta;
    Meta.Workload = "fuzz";
    Meta.Instr = Setup.InstrOpts;
    Meta.Runs = 1;
    Meta.DynInstrCost = RFast.InstrCounts.Steps;
    Meta.TimestampUnix = 0;
    ProfileArtifact Art = ProfileArtifact::fromRuntime(
        *RFast.BaseModule, RFast.MI, *RFast.Prof, Meta);

    std::vector<std::string> Corpus;
    std::vector<ProfileArtifact> Variants;
    for (unsigned V = 1; V <= 4; ++V) {
      ProfileArtifact Var = makeEmptyLike(Art);
      std::vector<Diagnostic> MD;
      MergeOptions MO;
      MO.Weight = V;
      if (!mergeArtifacts(Var, Art, MD, MO))
        return Fail(FuzzOracle::Serve, "deriving an upload variant failed");
      Corpus.push_back(serializeProfileArtifact(Var));
      Variants.push_back(std::move(Var));
    }
    // Upload order: every variant plus a duplicate of the first (duplicates
    // are legal fleet traffic), shuffled deterministically from the
    // artifact's own bytes.
    std::vector<size_t> Order = {0, 1, 2, 3, 0};
    uint64_t H = 0xcbf29ce484222325ULL;
    for (char C : Corpus[0])
      H = (H ^ static_cast<uint8_t>(C)) * 0x100000001b3ULL;
    for (size_t I = Order.size(); I > 1; --I) {
      uint64_t X = H + 0x9E3779B97F4A7C15ULL * I;
      X ^= X >> 29;
      X *= 0xBF58476D1CE4E5B9ULL;
      X ^= X >> 32;
      std::swap(Order[I - 1], Order[X % I]);
    }

    serve::ServeConfig SC;
    SC.FaultDropFold = (Opts.Fault == FaultKind::DropFrameAck);
    serve::ShardStore Store(SC);

    // Throwaway session 1: a client that dies mid-upload. The truncated
    // frame must keep the session alive (more bytes could come), be
    // flagged mid-frame, and leave the store untouched when dropped.
    {
      serve::ServeSession S(Store);
      std::string Reply;
      std::string F = encodeFrame(FrameType::Upload, Corpus[0]);
      if (!S.consume(std::string_view(F).substr(0, F.size() / 2), Reply))
        return Fail(FuzzOracle::Serve,
                    "truncated upload prefix closed the session early");
      if (!S.midFrame())
        return Fail(FuzzOracle::Serve,
                    "mid-upload disconnect not flagged as mid-frame");
      if (!Reply.empty())
        return Fail(FuzzOracle::Serve, "partial frame produced a reply");
    }
    // Throwaway session 2: a hostile declared length must be rejected at
    // the header (structured error, session closed), never allocated.
    {
      serve::ServeSession S(Store);
      std::string Hdr;
      Hdr.push_back(static_cast<char>(FrameType::Upload));
      serve::putU32LE(Hdr, 0);
      serve::putU64LE(Hdr, 1ull << 60);
      std::string Reply;
      if (S.consume(Hdr, Reply))
        return Fail(FuzzOracle::Serve,
                    "oversized declared length did not close the session");
      FrameReader RR;
      RR.feed(Reply);
      Frame RF;
      if (RR.next(RF) != FrameStatus::Frame || RF.Type != FrameType::Err)
        return Fail(FuzzOracle::Serve,
                    "oversized declared length did not produce an Err reply");
    }
    if (!Store.fingerprints().empty())
      return Fail(FuzzOracle::Serve,
                  "adversarial frames altered the store's state");

    // The fleet session: shuffled uploads with one corrupted payload
    // spliced into the middle of the stream.
    serve::ServeSession Sess(Store);
    std::vector<size_t> AckedIdx;
    uint64_t MaxTag = 0;
    auto UploadOne = [&](std::string_view Bytes, Frame &ReplyFrame,
                         std::string &D) -> bool {
      std::string Reply;
      if (!Sess.consume(encodeFrame(FrameType::Upload, Bytes), Reply)) {
        D = "upload closed the session";
        return false;
      }
      FrameReader RR;
      RR.feed(Reply);
      if (RR.next(ReplyFrame) != FrameStatus::Frame) {
        D = "upload produced no complete reply frame";
        return false;
      }
      return true;
    };
    for (size_t U = 0; U < Order.size(); ++U) {
      if (U == 2) {
        // A valid frame around an artifact with one flipped byte: the
        // checked reader must reject it (oracle 7 proved every byte
        // corruption detectable) and the session must survive.
        std::string Bad = Corpus[Order[U]];
        Bad[Bad.size() / 2] = static_cast<char>(Bad[Bad.size() / 2] ^ 0x20);
        Frame RF;
        std::string D;
        if (!UploadOne(Bad, RF, D))
          return Fail(FuzzOracle::Serve, "corrupt upload: " + D);
        serve::ErrCode Code{};
        std::string Msg;
        if (RF.Type != FrameType::Err ||
            !serve::decodeErrPayload(RF.Payload, Code, Msg) ||
            Code != serve::ErrCode::BadArtifact)
          return Fail(FuzzOracle::Serve,
                      "corrupt upload was not rejected with BadArtifact");
      }
      Frame RF;
      std::string D;
      if (!UploadOne(Corpus[Order[U]], RF, D))
        return Fail(FuzzOracle::Serve, D);
      serve::AckInfo Ack;
      if (RF.Type != FrameType::Ack ||
          !serve::decodeAckPayload(RF.Payload, Ack))
        return Fail(FuzzOracle::Serve, "valid upload was not acked");
      if (Ack.Seq != AckedIdx.size())
        return Fail(FuzzOracle::Serve,
                    "ack sequence number out of order: got " +
                        std::to_string(Ack.Seq) + ", want " +
                        std::to_string(AckedIdx.size()));
      AckedIdx.push_back(Order[U]);
      MaxTag = std::max(MaxTag, Ack.Tag);
    }

    // Snapshot and the bit-identity contract.
    std::string Reply;
    if (!Sess.consume(encodeFrame(FrameType::Snapshot, ""), Reply))
      return Fail(FuzzOracle::Serve, "snapshot request closed the session");
    FrameReader RR;
    RR.feed(Reply);
    Frame SF;
    if (RR.next(SF) != FrameStatus::Frame ||
        SF.Type != FrameType::SnapshotData)
      return Fail(FuzzOracle::Serve, "snapshot produced no SnapshotData");
    serve::SnapshotInfo Snap;
    if (!serve::decodeSnapshotPayload(SF.Payload, Snap))
      return Fail(FuzzOracle::Serve, "SnapshotData payload undecodable");
    if (MaxTag > Snap.Epoch)
      return Fail(FuzzOracle::Serve,
                  "containment contract broken: ack tag " +
                      std::to_string(MaxTag) + " > snapshot epoch " +
                      std::to_string(Snap.Epoch));
    ProfileArtifact Acc = makeEmptyLike(Art);
    for (size_t Idx : AckedIdx) {
      std::vector<Diagnostic> MD;
      if (!mergeArtifacts(Acc, Variants[Idx], MD))
        return Fail(FuzzOracle::Serve, "offline fold of acked uploads failed");
    }
    if (serializeProfileArtifact(Acc) != Snap.Artifact)
      return Fail(FuzzOracle::Serve,
                  "snapshot is not bit-identical to the offline fold of the "
                  "acked uploads");

    // Orderly shutdown still works after all of the above.
    Reply.clear();
    if (Sess.consume(encodeFrame(FrameType::Quit, ""), Reply))
      return Fail(FuzzOracle::Serve, "Quit did not close the session");
  }

  return CaseStatus::Clean;
}

FuzzReport DifferentialRunner::run() const {
  // Each seed is checked (and, on failure, shrunk) independently into its
  // own outcome slot; the report is then aggregated in seed order. That
  // split is what makes --jobs a pure wall-clock knob: any interleaving of
  // the per-seed work produces the identical report.
  struct SeedOutcome {
    CaseStatus St = CaseStatus::Clean;
    FuzzFailure F;
  };
  std::vector<SeedOutcome> Outcomes(Opts.NumSeeds);

  auto RunSeed = [&](size_t I) {
    uint64_t Seed = Opts.SeedBase + I;
    SeedOutcome &Out = Outcomes[I];
    Out.St = checkCase(Seed, &Out.F);
    if (Out.St != CaseStatus::Failed)
      return;
    FuzzFailure &F = Out.F;
    if (Opts.Shrink) {
      CaseSetup Setup = deriveSetup(Seed);
      FuzzOracle Want = F.Oracle;
      ShrinkResult SR = shrinkProgram(
          F.Source,
          [&](const std::string &Cand) {
            FuzzFailure G;
            return checkProgram(Cand, Setup, &G) == CaseStatus::Failed &&
                   G.Oracle == Want;
          },
          Opts.MaxShrinkAttempts);
      if (SR.Accepted > 0) {
        F.OriginalSource = F.Source;
        F.Shrunk = true;
        // Re-derive the failure detail on the minimized program.
        FuzzFailure G;
        if (checkProgram(SR.Source, Setup, &G) == CaseStatus::Failed) {
          G.MasterSeed = Seed;
          G.OriginalSource = std::move(F.OriginalSource);
          G.Shrunk = true;
          F = std::move(G);
        } else {
          F.Source = SR.Source; // should not happen; keep the shrunk text
        }
      }
    }
  };

  if (Opts.Jobs != 1 && Opts.NumSeeds > 1) {
    TaskPool Pool(Opts.Jobs); // 0 = one worker per core
    Pool.parallelFor(Opts.NumSeeds,
                     [&](size_t I, unsigned) { RunSeed(I); });
  } else {
    for (uint32_t I = 0; I < Opts.NumSeeds; ++I)
      RunSeed(I);
  }

  FuzzReport Rep;
  for (SeedOutcome &Out : Outcomes) {
    ++Rep.SeedsRun;
    switch (Out.St) {
    case CaseStatus::Clean:
      ++Rep.Clean;
      break;
    case CaseStatus::Skipped:
      ++Rep.Skipped;
      break;
    case CaseStatus::Failed:
      Rep.Failures.push_back(std::move(Out.F));
      break;
    }
  }
  return Rep;
}
