//===--- Cfg.cpp - CFG adjacency snapshot ------------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"

#include "ir/Function.h"

using namespace olpp;

CfgView CfgView::build(const Function &F) {
  CfgView V;
  uint32_t N = static_cast<uint32_t>(F.numBlocks());
  V.Succs.resize(N);
  V.Preds.resize(N);
  V.Reachable.assign(N, false);
  V.RpoIndex.assign(N, UINT32_MAX);

  for (uint32_t B = 0; B < N; ++B) {
    assert(F.block(B)->Id == B && "stale block ids; call renumberBlocks()");
    for (BasicBlock *S : F.block(B)->successors()) {
      V.Succs[B].push_back(S->Id);
      V.Preds[S->Id].push_back(B);
    }
  }

  // Iterative postorder DFS from the entry.
  std::vector<uint32_t> Post;
  Post.reserve(N);
  std::vector<uint8_t> State(N, 0); // 0 = unseen, 1 = on stack, 2 = done
  std::vector<std::pair<uint32_t, uint32_t>> Stack;
  Stack.push_back({0, 0});
  State[0] = 1;
  V.Reachable[0] = true;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    if (NextSucc < V.Succs[B].size()) {
      uint32_t S = V.Succs[B][NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        V.Reachable[S] = true;
        Stack.push_back({S, 0});
      }
      continue;
    }
    State[B] = 2;
    Post.push_back(B);
    Stack.pop_back();
  }

  V.Rpo.assign(Post.rbegin(), Post.rend());
  for (uint32_t I = 0; I < V.Rpo.size(); ++I)
    V.RpoIndex[V.Rpo[I]] = I;
  return V;
}
