//===--- Lint.h - Dataflow-based IR lint passes -----------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lint passes over the (uninstrumented) IR, built on the generic dataflow
/// engine and the structural analyses:
///
///   lint-uninit        a register may be read before any write reaches it
///                      (reaching definitions; parameters count as written)
///   lint-dead-store    a side-effect-free instruction writes a register
///                      that is never read afterwards (liveness)
///   lint-unreachable   a block with real instructions that the entry
///                      cannot reach (lowering's empty merge stubs are
///                      exempt)
///   lint-no-exit       a natural loop with no exit edge: once entered the
///                      function can never leave it (LoopInfo + Dominators)
///   lint-irreducible   a retreating edge enters a cycle with multiple
///                      entry points; loop-based profiling degrades to the
///                      conservative treatment (Dominators)
///   lint-pure-call-unused  [note] a call's result is dead and the callee's
///                      bottom-up summary proves it side-effect-free
///                      (Summary + Liveness; module-level only)
///
/// All passes emit structured Diagnostics; none of them mutates the IR.
/// The interpreter zero-initializes frames, so lint-uninit flags suspect
/// (not undefined) behaviour — it is still a warning because relying on
/// implicit zeros is almost always an authoring mistake in MiniC.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_ANALYSIS_LINT_H
#define OLPP_ANALYSIS_LINT_H

#include "support/Diagnostic.h"

#include <vector>

namespace olpp {

class Function;
class Module;

/// Runs every lint pass over one function.
void lintFunction(const Function &F, std::vector<Diagnostic> &Diags);

/// Runs every lint pass over every function of \p M.
std::vector<Diagnostic> lintModule(const Module &M);

} // namespace olpp

#endif // OLPP_ANALYSIS_LINT_H
