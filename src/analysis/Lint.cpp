//===--- Lint.cpp - Dataflow-based IR lint passes ----------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include "analysis/Dataflow.h"
#include "analysis/LoopInfo.h"
#include "analysis/Summary.h"
#include "ir/Module.h"

#include <string>

using namespace olpp;

namespace {

/// True if \p Op neither traps nor touches anything outside its
/// destination register: erasing such an instruction whose result is dead
/// cannot change observable behaviour.
bool isPure(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
  case Opcode::Move:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::LoadG:
    return true;
  default: // Div/Mod/LoadArr trap; stores, calls, terminators, probes act
    return false;
  }
}

void lintUninit(const Function &F, const CfgView &Cfg,
                std::vector<Diagnostic> &Diags) {
  ReachingDefs RD = ReachingDefs::compute(F, Cfg);
  std::vector<bool> Reported(F.NumRegs, false);
  std::vector<Reg> Uses;
  for (uint32_t B = 0; B < Cfg.numBlocks(); ++B) {
    if (!Cfg.isReachable(B))
      continue;
    const BasicBlock *BB = F.block(B);
    // Per-register "an uninitialized value may reach here" state.
    std::vector<bool> MaybeUninit(F.NumRegs, false);
    for (Reg R = 0; R < F.NumRegs; ++R)
      MaybeUninit[R] = RD.reachingIn(B).test(RD.uninitBit(R));
    for (uint32_t Idx = 0; Idx < BB->Instrs.size(); ++Idx) {
      const Instruction &I = BB->Instrs[Idx];
      Uses.clear();
      instrUses(I, Uses);
      for (Reg U : Uses) {
        if (U >= F.NumRegs || !MaybeUninit[U] || Reported[U])
          continue;
        Reported[U] = true;
        Diags.push_back(makeDiagAt(
            Severity::Warning, "lint-uninit", F.Name, B, BB->Name,
            "register %" + std::to_string(U) +
                " may be read before it is written (it reads the frame's "
                "implicit zero on some path)",
            Idx));
      }
      Reg D = instrDef(I);
      if (D != NoReg && D < F.NumRegs)
        MaybeUninit[D] = false;
    }
  }
}

void lintDeadStore(const Function &F, const CfgView &Cfg,
                   std::vector<Diagnostic> &Diags) {
  Liveness LV = Liveness::compute(F, Cfg);
  std::vector<Reg> Uses;
  for (uint32_t B = 0; B < Cfg.numBlocks(); ++B) {
    if (!Cfg.isReachable(B))
      continue;
    const BasicBlock *BB = F.block(B);
    BitVector Live = LV.liveOut(B);
    for (size_t Idx = BB->Instrs.size(); Idx-- > 0;) {
      const Instruction &I = BB->Instrs[Idx];
      Reg D = instrDef(I);
      if (D != NoReg && D < F.NumRegs) {
        if (!Live.test(D) && isPure(I.Op))
          Diags.push_back(makeDiagAt(
              Severity::Warning, "lint-dead-store", F.Name, B, BB->Name,
              "register %" + std::to_string(D) +
                  " is written here but never read afterwards",
              static_cast<uint32_t>(Idx)));
        Live.reset(D);
      }
      Uses.clear();
      instrUses(I, Uses);
      for (Reg U : Uses)
        if (U < F.NumRegs)
          Live.set(U);
    }
  }
}

void lintUnreachable(const Function &F, const CfgView &Cfg,
                     std::vector<Diagnostic> &Diags) {
  for (uint32_t B = 0; B < Cfg.numBlocks(); ++B) {
    if (Cfg.isReachable(B))
      continue;
    const BasicBlock *BB = F.block(B);
    // Lowering leaves behind empty merge stubs (a lone terminator) when
    // both arms of a branch return; only blocks with real work are
    // suspicious.
    bool HasRealWork = false;
    for (const Instruction &I : BB->Instrs)
      HasRealWork |= !isTerminator(I.Op) && I.Op != Opcode::Probe;
    if (!HasRealWork)
      continue;
    Diags.push_back(makeDiagAt(
        Severity::Warning, "lint-unreachable", F.Name, B, BB->Name,
        "block contains instructions but is unreachable from the entry"));
  }
}

void lintNoExit(const Function &F, const LoopInfo &LI,
                std::vector<Diagnostic> &Diags) {
  for (uint32_t L = 0; L < LI.numLoops(); ++L) {
    const Loop &Loop_ = LI.loop(L);
    if (!Loop_.ExitEdges.empty())
      continue;
    Diags.push_back(makeDiagAt(
        Severity::Warning, "lint-no-exit", F.Name, Loop_.Header,
        F.block(Loop_.Header)->Name,
        "loop has no exit edge; once entered the function cannot leave it"));
  }
}

void lintIrreducible(const Function &F, const CfgView &Cfg,
                     const DomTree &Dom, std::vector<Diagnostic> &Diags) {
  // A retreating edge whose target does not dominate its source closes a
  // cycle with more than one entry. LoopInfo only models natural loops, so
  // path numbering (and everything downstream) treats such a region
  // conservatively; the author almost certainly wants to know.
  for (uint32_t B = 0; B < Cfg.numBlocks(); ++B) {
    if (!Cfg.isReachable(B))
      continue;
    for (uint32_t P : Cfg.preds(B)) {
      if (!Cfg.isReachable(P) || Cfg.rpoIndex(P) < Cfg.rpoIndex(B))
        continue;
      if (!Dom.dominates(B, P))
        Diags.push_back(makeDiagAt(
            Severity::Warning, "lint-irreducible", F.Name, B,
            F.block(B)->Name,
            "retreating edge from ^" + std::to_string(P) +
                " enters a cycle with multiple entry points (irreducible "
                "control flow); loop profiling treats it conservatively"));
    }
  }
}

/// Module-level summary pass: a call whose result is dead and whose callee
/// is provably side-effect-free did all that work for nothing. Unlike
/// lint-dead-store this needs the bottom-up summaries, so it cannot run
/// per function in isolation. Note severity: the callee may still trap or
/// diverge, so removal is a judgement call, not a guarantee.
void lintPureCallUnused(const Module &M, const ModuleSummaries &Sums,
                        std::vector<Diagnostic> &Diags) {
  std::vector<Reg> Uses;
  for (const auto &FPtr : M.functions()) {
    const Function &F = *FPtr;
    if (F.numBlocks() == 0)
      continue;
    CfgView Cfg = CfgView::build(F);
    Liveness LV = Liveness::compute(F, Cfg);
    for (uint32_t B = 0; B < Cfg.numBlocks(); ++B) {
      if (!Cfg.isReachable(B))
        continue;
      const BasicBlock *BB = F.block(B);
      BitVector Live = LV.liveOut(B);
      for (size_t Idx = BB->Instrs.size(); Idx-- > 0;) {
        const Instruction &I = BB->Instrs[Idx];
        Reg D = instrDef(I);
        if (I.Op == Opcode::Call && D != NoReg && D < F.NumRegs &&
            !Live.test(D)) {
          const FunctionSummary &S = Sums.summary(I.CalleeId);
          if (S.SideEffectFree && !S.TransitivelyIndirect)
            Diags.push_back(makeDiagAt(
                Severity::Note, "lint-pure-call-unused", F.Name, B, BB->Name,
                "result of call to side-effect-free function '" +
                    M.function(I.CalleeId)->Name + "' is never used",
                static_cast<uint32_t>(Idx)));
        }
        if (D != NoReg && D < F.NumRegs)
          Live.reset(D);
        Uses.clear();
        instrUses(I, Uses);
        for (Reg U : Uses)
          if (U < F.NumRegs)
            Live.set(U);
      }
    }
  }
}

} // namespace

void olpp::lintFunction(const Function &F, std::vector<Diagnostic> &Diags) {
  if (F.numBlocks() == 0)
    return;
  CfgView Cfg = CfgView::build(F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);

  lintUnreachable(F, Cfg, Diags);
  lintIrreducible(F, Cfg, Dom, Diags);
  lintNoExit(F, LI, Diags);
  lintUninit(F, Cfg, Diags);
  lintDeadStore(F, Cfg, Diags);
}

std::vector<Diagnostic> olpp::lintModule(const Module &M) {
  std::vector<Diagnostic> Diags;
  for (const auto &F : M.functions())
    lintFunction(*F, Diags);
  ModuleSummaries Sums = computeSummaries(M);
  lintPureCallUnused(M, Sums, Diags);
  return Diags;
}
