//===--- Feasibility.cpp - Static path-feasibility queries ----------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Feasibility.h"

#include "ir/Function.h"
#include "ir/Module.h"

#include <algorithm>

using namespace olpp;

bool olpp::execBlock(RangeEnv &Env, const Function &F, uint32_t Block,
                     BlockExec Mode, const ModuleSummaries *Sums,
                     const ValueRange *ContinuationReturn,
                     uint64_t &StepBudget) {
  if (Block >= F.numBlocks())
    return false;
  const BasicBlock &BB = *F.block(Block);
  bool SeenCall = Mode == BlockExec::Full;
  for (const Instruction &I : BB.Instrs) {
    if (isTerminator(I.Op))
      break;
    if (I.Op == Opcode::Probe)
      continue;
    if (StepBudget == 0)
      return false;
    --StepBudget;
    bool IsCall = I.Op == Opcode::Call || I.Op == Opcode::CallInd;
    if (IsCall && Mode == BlockExec::UpToCall)
      return true; // the path ends at the call break
    if (IsCall && Mode == BlockExec::FromCallContinuation && !SeenCall) {
      // Resuming after this call: bind its result, havoc per summary
      // unless the caller carried the callee's exit state directly.
      SeenCall = true;
      if (ContinuationReturn) {
        if (I.Dst != NoReg)
          Env.setReg(I.Dst, *ContinuationReturn);
      } else {
        applyCall(Env, I, Sums ? Sums->effectOfCall(I) : CallEffect{});
      }
      continue;
    }
    if (Mode == BlockExec::FromCallContinuation && !SeenCall)
      continue; // instructions before the call already ran in the pre-path
    if (IsCall) {
      applyCall(Env, I, Sums ? Sums->effectOfCall(I) : CallEffect{});
      continue;
    }
    applyInstr(Env, I);
  }
  // A continuation entry must actually have found its call; a path that
  // claims to stop at a call must actually contain one.
  if (Mode == BlockExec::FromCallContinuation && !SeenCall)
    return false;
  if (Mode == BlockExec::UpToCall)
    return false;
  return true;
}

namespace {

/// The call instruction of \p BB, or nullptr.
const Instruction *findCall(const BasicBlock &BB) {
  for (const Instruction &I : BB.Instrs)
    if (I.Op == Opcode::Call || I.Op == Opcode::CallInd)
      return &I;
  return nullptr;
}

} // namespace

RangeEnv PathFeasibility::startEnv(const Function &F, const CfgView &Cfg,
                                   uint32_t FirstBlock,
                                   bool StartsAfterCall) {
  RangeEnv Env(F.NumRegs);
  // Frames are zero-initialized by the interpreter, so a path that starts
  // at a function entry which can never be re-entered sees zeroed locals.
  if (!StartsAfterCall && FirstBlock == 0 && Cfg.numBlocks() > 0 &&
      Cfg.preds(0).empty())
    for (uint32_t R = F.NumParams; R < F.NumRegs; ++R)
      Env.setReg(R, ValueRange::constant(0));
  return Env;
}

PathFeasibility::Walk PathFeasibility::walkBlocks(
    RangeEnv &Env, const Function &F, const CfgView &Cfg,
    const std::vector<uint32_t> &Blocks, bool StartsAfterCall,
    bool StopBeforeCallInLast, const ValueRange *ContinuationReturn,
    uint64_t &StepBudget) const {
  if (Blocks.empty())
    return Walk::Unknown;
  for (size_t Idx = 0; Idx < Blocks.size(); ++Idx) {
    uint32_t B = Blocks[Idx];
    if (B >= F.numBlocks() || B >= Cfg.numBlocks())
      return Walk::Unknown;
    bool Last = Idx + 1 == Blocks.size();
    BlockExec Mode = BlockExec::Full;
    if (Idx == 0 && StartsAfterCall)
      Mode = BlockExec::FromCallContinuation;
    else if (Last && StopBeforeCallInLast)
      Mode = BlockExec::UpToCall;
    if (!execBlock(Env, F, B, Mode, Sums,
                   Idx == 0 ? ContinuationReturn : nullptr, StepBudget))
      return Walk::Unknown;
    if (Last)
      break;
    // Branch refinement against the *original* successor order: the
    // instrumented terminator may target split blocks, but its opcode and
    // condition register are untouched.
    uint32_t Next = Blocks[Idx + 1];
    const std::vector<uint32_t> &Succs = Cfg.succs(B);
    const Instruction &T = F.block(B)->terminator();
    if (T.Op == Opcode::CondBr && Succs.size() == 2 &&
        Succs[0] != Succs[1]) {
      bool Taken;
      if (Next == Succs[0])
        Taken = true;
      else if (Next == Succs[1])
        Taken = false;
      else
        return Walk::Unknown;
      if (!refineBranch(Env, T, Taken))
        return Walk::Contradiction;
    } else if (std::find(Succs.begin(), Succs.end(), Next) == Succs.end()) {
      return Walk::Unknown;
    }
  }
  return Walk::Ok;
}

bool PathFeasibility::infeasibleSequence(const Function &F, const CfgView &Cfg,
                                         const std::vector<uint32_t> &Blocks,
                                         bool StartsAfterCall) const {
  if (Blocks.empty())
    return false;
  uint64_t Budget = Opts.MaxStepsPerQuery;
  RangeEnv Env = startEnv(F, Cfg, Blocks.front(), StartsAfterCall);
  return walkBlocks(Env, F, Cfg, Blocks, StartsAfterCall,
                    /*StopBeforeCallInLast=*/false, nullptr,
                    Budget) == Walk::Contradiction;
}

bool PathFeasibility::infeasibleCallPair(
    const Function &Caller, const CfgView &CallerCfg,
    const std::vector<uint32_t> &RowBlocks, bool RowStartsAfterCall,
    const Function &Callee, const CfgView &CalleeCfg,
    const std::vector<uint32_t> &ColBlocks) const {
  if (RowBlocks.empty() || ColBlocks.empty())
    return false;
  uint64_t Budget = Opts.MaxStepsPerQuery;
  RangeEnv Env =
      startEnv(Caller, CallerCfg, RowBlocks.front(), RowStartsAfterCall);
  Walk W = walkBlocks(Env, Caller, CallerCfg, RowBlocks, RowStartsAfterCall,
                      /*StopBeforeCallInLast=*/true, nullptr, Budget);
  if (W == Walk::Contradiction)
    return true; // the caller prefix alone is impossible
  if (W != Walk::Ok)
    return false;
  // Bind argument ranges to the callee's parameters.
  const Instruction *Call = findCall(*Caller.block(RowBlocks.back()));
  if (!Call || Call->Op != Opcode::Call || Call->CalleeId != Callee.Id ||
      Call->Args.size() != size_t(Callee.NumParams))
    return false;
  RangeEnv CalleeEnv(Callee.NumRegs);
  for (uint32_t R = Callee.NumParams; R < Callee.NumRegs; ++R)
    CalleeEnv.setReg(R, ValueRange::constant(0));
  for (uint32_t P = 0; P < Callee.NumParams; ++P)
    CalleeEnv.setReg(P, Env.reg(Call->Args[P]));
  CalleeEnv.adoptGlobals(Env);
  if (ColBlocks.front() != 0)
    return false; // a Type I prefix starts at the callee entry
  return walkBlocks(CalleeEnv, Callee, CalleeCfg, ColBlocks,
                    /*StartsAfterCall=*/false,
                    /*StopBeforeCallInLast=*/false, nullptr,
                    Budget) == Walk::Contradiction;
}

bool PathFeasibility::infeasibleReturnPair(
    const Function &Callee, const CfgView &CalleeCfg,
    const std::vector<uint32_t> &RowBlocks, bool RowStartsAfterCall,
    const Function &Caller, const CfgView &CallerCfg,
    const std::vector<uint32_t> &ColBlocks) const {
  if (RowBlocks.empty() || ColBlocks.empty())
    return false;
  uint64_t Budget = Opts.MaxStepsPerQuery;
  RangeEnv Env =
      startEnv(Callee, CalleeCfg, RowBlocks.front(), RowStartsAfterCall);
  Walk W = walkBlocks(Env, Callee, CalleeCfg, RowBlocks, RowStartsAfterCall,
                      /*StopBeforeCallInLast=*/false, nullptr, Budget);
  if (W == Walk::Contradiction)
    return true;
  if (W != Walk::Ok)
    return false;
  const Instruction &T = Callee.block(RowBlocks.back())->terminator();
  if (T.Op != Opcode::Ret)
    return false;
  ValueRange Ret =
      T.Src0 == NoReg ? ValueRange::top() : Env.reg(T.Src0);
  // The continuation's call must really target this callee.
  const Instruction *Call = findCall(*Caller.block(ColBlocks.front()));
  if (!Call || Call->Op != Opcode::Call || Call->CalleeId != Callee.Id)
    return false;
  RangeEnv CallerEnv(Caller.NumRegs);
  CallerEnv.adoptGlobals(Env);
  return walkBlocks(CallerEnv, Caller, CallerCfg, ColBlocks,
                    /*StartsAfterCall=*/true,
                    /*StopBeforeCallInLast=*/false, &Ret,
                    Budget) == Walk::Contradiction;
}
