//===--- Dominators.cpp - Dominator tree -------------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <cassert>

using namespace olpp;

DomTree DomTree::compute(const CfgView &Cfg) {
  DomTree T;
  uint32_t N = Cfg.numBlocks();
  T.Idom.assign(N, UINT32_MAX);
  T.RpoIndex.assign(N, UINT32_MAX);
  for (uint32_t B = 0; B < N; ++B)
    T.RpoIndex[B] = Cfg.rpoIndex(B);

  const std::vector<uint32_t> &Rpo = Cfg.rpo();
  assert(!Rpo.empty() && Rpo[0] == 0 && "entry must head the RPO");
  T.Idom[0] = 0;

  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (T.RpoIndex[A] > T.RpoIndex[B])
        A = T.Idom[A];
      while (T.RpoIndex[B] > T.RpoIndex[A])
        B = T.Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t I = 1; I < Rpo.size(); ++I) {
      uint32_t B = Rpo[I];
      uint32_t NewIdom = UINT32_MAX;
      for (uint32_t P : Cfg.preds(B)) {
        if (!Cfg.isReachable(P) || T.Idom[P] == UINT32_MAX)
          continue;
        NewIdom = NewIdom == UINT32_MAX ? P : Intersect(NewIdom, P);
      }
      assert(NewIdom != UINT32_MAX && "reachable block with no processed pred");
      if (T.Idom[B] != NewIdom) {
        T.Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
  return T;
}

bool DomTree::dominates(uint32_t A, uint32_t B) const {
  assert(Idom[A] != UINT32_MAX && Idom[B] != UINT32_MAX &&
         "dominance query on unreachable block");
  // Walk up the tree from B; the entry is its own idom.
  while (true) {
    if (A == B)
      return true;
    uint32_t Up = Idom[B];
    if (Up == B)
      return false; // reached the entry
    B = Up;
  }
}
