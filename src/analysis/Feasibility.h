//===--- Feasibility.h - Static path-feasibility queries --------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The branch-correlation walker: abstract execution of one concrete block
/// sequence under the value-range domain (ValueRange.h), refining at every
/// conditional branch along the way. When a refinement produces an empty
/// interval the sequence is *statically infeasible* — no input can drive
/// execution along it — and the estimation pipeline may pin its counter to
/// a hard zero.
///
/// Three query shapes match the estimator's pair problems:
///
///   infeasibleSequence   one intraprocedural chain (a loop row followed
///                        by the next iteration's class prefix)
///   infeasibleCallPair   a caller path ending at a call, chained into a
///                        callee path — argument ranges bind to the
///                        callee's parameters (Type I pairs)
///   infeasibleReturnPair a callee path ending at `ret`, chained into the
///                        caller's continuation — the walked return range
///                        binds to the call's destination (Type II pairs)
///
/// Soundness contract: `true` means PROVEN infeasible; any structural
/// surprise (unknown blocks, truncated data, exhausted step budget,
/// mismatched branch targets) degrades to `false` (feasible as far as we
/// know). Block sequences use pre-instrumentation block ids; the walker
/// works on instrumented functions too (probes are skipped, original
/// successor order comes from the caller-provided CfgView snapshot).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_ANALYSIS_FEASIBILITY_H
#define OLPP_ANALYSIS_FEASIBILITY_H

#include "analysis/Cfg.h"
#include "analysis/Summary.h"
#include "analysis/ValueRange.h"

#include <cstdint>
#include <vector>

namespace olpp {

class Function;

/// How the walker enters a block of a sequence.
enum class BlockExec : uint8_t {
  Full,                 ///< execute every (non-probe) instruction
  FromCallContinuation, ///< resume after the block's call
  UpToCall,             ///< stop just before the block's call (a path that
                        ///< ends at the call break)
};

/// Executes one block's non-terminator instructions into \p Env. Calls are
/// interpreted through \p Sums when provided. For FromCallContinuation,
/// \p ContinuationReturn (when non-null) supplies the returned-value range
/// and suppresses the global havoc (the caller already carries the callee's
/// exit state); otherwise the callee's summary effect applies. Decrements
/// \p StepBudget per instruction; returns false when the budget runs out or
/// the block shape does not match the requested mode.
bool execBlock(RangeEnv &Env, const Function &F, uint32_t Block, BlockExec Mode,
               const ModuleSummaries *Sums,
               const ValueRange *ContinuationReturn, uint64_t &StepBudget);

struct FeasibilityOptions {
  /// Abstractly executed instructions per query before giving up.
  uint64_t MaxStepsPerQuery = 4096;
};

/// Stateless query object over one module (and its summaries).
class PathFeasibility {
public:
  explicit PathFeasibility(const Module &M,
                           const ModuleSummaries *Sums = nullptr,
                           FeasibilityOptions Opts = {})
      : M(M), Sums(Sums), Opts(Opts) {}

  const Module &module() const { return M; }
  const ModuleSummaries *summaries() const { return Sums; }

  /// True when the chained block sequence \p Blocks of \p F is provably
  /// infeasible. \p StartsAfterCall: the first block is entered at its
  /// call continuation. \p Cfg must be the pre-instrumentation view of
  /// \p F (block ids in \p Blocks are pre-instrumentation ids).
  bool infeasibleSequence(const Function &F, const CfgView &Cfg,
                          const std::vector<uint32_t> &Blocks,
                          bool StartsAfterCall) const;

  /// True when caller path \p RowBlocks (ending at the call in its last
  /// block) chained into callee path \p ColBlocks is provably infeasible.
  bool infeasibleCallPair(const Function &Caller, const CfgView &CallerCfg,
                          const std::vector<uint32_t> &RowBlocks,
                          bool RowStartsAfterCall, const Function &Callee,
                          const CfgView &CalleeCfg,
                          const std::vector<uint32_t> &ColBlocks) const;

  /// True when callee path \p RowBlocks (ending at `ret`) chained into the
  /// caller continuation \p ColBlocks (first block entered after its call)
  /// is provably infeasible.
  bool infeasibleReturnPair(const Function &Callee, const CfgView &CalleeCfg,
                            const std::vector<uint32_t> &RowBlocks,
                            bool RowStartsAfterCall, const Function &Caller,
                            const CfgView &CallerCfg,
                            const std::vector<uint32_t> &ColBlocks) const;

  /// Builds the activation-entry state for a walk of \p F beginning at
  /// \p FirstBlock: locals are zero when this is provably the activation
  /// start (function entry that cannot be re-entered), everything else top.
  static RangeEnv startEnv(const Function &F, const CfgView &Cfg,
                           uint32_t FirstBlock, bool StartsAfterCall);

private:
  enum class Walk : uint8_t { Contradiction, Ok, Unknown };
  Walk walkBlocks(RangeEnv &Env, const Function &F, const CfgView &Cfg,
                  const std::vector<uint32_t> &Blocks, bool StartsAfterCall,
                  bool StopBeforeCallInLast,
                  const ValueRange *ContinuationReturn,
                  uint64_t &StepBudget) const;

  const Module &M;
  const ModuleSummaries *Sums;
  FeasibilityOptions Opts;
};

} // namespace olpp

#endif // OLPP_ANALYSIS_FEASIBILITY_H
