//===--- CallGraph.h - Module call graph with SCCs --------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module's static call graph: per function its direct callees and
/// callers, whether it contains indirect calls, and the Tarjan strongly
/// connected components in bottom-up order (every SCC is emitted after all
/// SCCs it calls into), which is exactly the order the interprocedural
/// summary builder (Summary.h) wants.
///
/// Indirect calls (CallInd) have statically unknown targets; the graph
/// records the fact per function and consumers must treat such calls as
/// able to reach any function whose id escapes into data. No points-to
/// analysis is attempted — HasIndirectCall is the conservative bit.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_ANALYSIS_CALLGRAPH_H
#define OLPP_ANALYSIS_CALLGRAPH_H

#include <cstdint>
#include <vector>

namespace olpp {

class Module;

class CallGraph {
public:
  struct Node {
    /// Direct callees, deduplicated, ascending.
    std::vector<uint32_t> Callees;
    /// Direct callers, deduplicated, ascending.
    std::vector<uint32_t> Callers;
    /// Number of direct call sites (Call instructions) in the function.
    uint32_t NumCallSites = 0;
    /// The function contains a CallInd.
    bool HasIndirectCall = false;
  };

  static CallGraph build(const Module &M);

  uint32_t numFunctions() const { return static_cast<uint32_t>(Nodes.size()); }
  const Node &node(uint32_t F) const { return Nodes[F]; }

  /// SCC index of function \p F (an index into sccs()).
  uint32_t sccOf(uint32_t F) const { return SccId[F]; }
  /// The components in bottom-up (callees-first) order; each component's
  /// member list is ascending.
  const std::vector<std::vector<uint32_t>> &sccs() const { return Sccs; }
  /// True when \p F can (transitively) call itself.
  bool isRecursive(uint32_t F) const { return Recursive[F]; }
  /// True when any function in the module contains an indirect call.
  bool anyIndirectCall() const { return AnyIndirect; }

private:
  std::vector<Node> Nodes;
  std::vector<uint32_t> SccId;
  std::vector<std::vector<uint32_t>> Sccs;
  std::vector<char> Recursive;
  bool AnyIndirect = false;
};

} // namespace olpp

#endif // OLPP_ANALYSIS_CALLGRAPH_H
