//===--- LoopInfo.h - Natural loop detection --------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loops from dominator backedges. A backedge is an edge u -> v with
/// v dominating u; the loop body is v plus everything that reaches u without
/// passing v. Loops sharing a header are merged (multiple latches are
/// supported). Irreducible control flow (a DFS-retreating edge that is not a
/// dominator backedge) is detected and reported; the profiling algorithms
/// require reducible CFGs, which both the frontend and the workload
/// generator guarantee by construction.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_ANALYSIS_LOOPINFO_H
#define OLPP_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace olpp {

/// One natural loop.
struct Loop {
  uint32_t Header = 0;
  /// Backedge sources, ascending by block id.
  std::vector<uint32_t> Latches;
  /// Loop body block ids (including header and latches), ascending.
  std::vector<uint32_t> Blocks;
  /// Membership bitmap indexed by block id.
  std::vector<bool> Contains;
  /// Edges (From inside, To outside) leaving the loop, lexicographic.
  std::vector<std::pair<uint32_t, uint32_t>> ExitEdges;
  /// Index of the innermost enclosing loop, or UINT32_MAX for a top-level
  /// loop.
  uint32_t Parent = UINT32_MAX;
  /// Nesting depth; top-level loops have depth 1.
  uint32_t Depth = 1;

  bool contains(uint32_t B) const {
    return B < Contains.size() && Contains[B];
  }
  bool isLatch(uint32_t B) const {
    for (uint32_t L : Latches)
      if (L == B)
        return true;
    return false;
  }
};

/// All natural loops of a function, ordered by header RPO index (outer
/// loops first among loops on the same header chain).
class LoopInfo {
public:
  /// Computes loop structure. Sets Irreducible if a retreating edge is not a
  /// dominator backedge; loop results are then best-effort and the caller
  /// must refuse to instrument.
  static LoopInfo compute(const CfgView &Cfg, const DomTree &Dom);

  bool isIrreducible() const { return Irreducible; }
  size_t numLoops() const { return Loops.size(); }
  const Loop &loop(uint32_t Idx) const { return Loops[Idx]; }
  const std::vector<Loop> &loops() const { return Loops; }

  /// Index of the loop whose backedge is From -> To, or UINT32_MAX.
  uint32_t loopForBackedge(uint32_t From, uint32_t To) const;

  /// True if From -> To is any loop's backedge.
  bool isBackedge(uint32_t From, uint32_t To) const {
    return loopForBackedge(From, To) != UINT32_MAX;
  }

  /// Index of the innermost loop containing \p B, or UINT32_MAX.
  uint32_t innermostLoop(uint32_t B) const;

  /// Nesting depth of \p B (0 when outside all loops).
  uint32_t depthOf(uint32_t B) const {
    uint32_t L = innermostLoop(B);
    return L == UINT32_MAX ? 0 : Loops[L].Depth;
  }

private:
  std::vector<Loop> Loops;
  bool Irreducible = false;
};

} // namespace olpp

#endif // OLPP_ANALYSIS_LOOPINFO_H
