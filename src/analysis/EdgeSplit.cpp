//===--- EdgeSplit.cpp - CFG edge splitting ------------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/EdgeSplit.h"

#include "ir/Function.h"

using namespace olpp;

BasicBlock *olpp::splitEdge(Function &F, BasicBlock *From, BasicBlock *To) {
  Instruction &T = From->terminator();
  assert((T.Target0 == To || T.Target1 == To) && "not an edge");
  assert(!(T.Target0 == To && T.Target1 == To) &&
         "both CondBr targets alias; normalize to Br first");

  BasicBlock *Mid =
      F.addBlock(From->Name + ".to." + To->Name);
  Instruction Br;
  Br.Op = Opcode::Br;
  Br.Target0 = To;
  Mid->Instrs.push_back(Br);

  if (T.Target0 == To)
    T.Target0 = Mid;
  else
    T.Target1 = Mid;
  return Mid;
}
