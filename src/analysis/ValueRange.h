//===--- ValueRange.h - Interval value-range analysis -----------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse conditional value-range (interval) analysis over the IR, the
/// numeric half of the static path-feasibility subsystem:
///
///   - ValueRange: a non-empty signed-64-bit interval [Lo, Hi] with the
///     lattice operations (join = convex hull, meet = intersection; an
///     empty meet is the *contradiction* signal the branch-correlation
///     walker turns into "this path is statically infeasible").
///   - RangeEnv: an abstract machine state — one range per frame register,
///     ranges for scalar globals, and per-register compare provenance so a
///     conditional branch can refine the *operands* of the compare that
///     produced its condition (the branch-correlation step).
///   - applyInstr / refineBranch: the transfer functions. Soundness rules:
///     wrapping arithmetic goes to top whenever an interval endpoint would
///     overflow, trapping opcodes (Div, Mod, LoadArr, StoreArr, CallInd)
///     never create infeasibility, and anything not modelled exactly like
///     the interpreter evaluates to top.
///   - computeFunctionRanges: a whole-function fixpoint (join at block
///     entries, bounded widening) in the same reverse-postorder worklist
///     discipline as the bit-vector engine (Dataflow.h); used by the
///     function summaries and `olpp analyze` for return/exit ranges.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_ANALYSIS_VALUERANGE_H
#define OLPP_ANALYSIS_VALUERANGE_H

#include "analysis/Cfg.h"
#include "ir/Instruction.h"

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace olpp {

class Function;

/// A non-empty interval of signed 64-bit values. The empty interval is not
/// representable: operations that would produce it (meet, branch
/// refinement) return failure instead, which callers interpret as a
/// contradiction.
struct ValueRange {
  int64_t Lo = INT64_MIN;
  int64_t Hi = INT64_MAX;

  static ValueRange top() { return {}; }
  static ValueRange constant(int64_t V) { return {V, V}; }
  static ValueRange range(int64_t Lo, int64_t Hi) { return {Lo, Hi}; }
  /// The compare-result range {0, 1}.
  static ValueRange boolean() { return {0, 1}; }

  bool isTop() const { return Lo == INT64_MIN && Hi == INT64_MAX; }
  bool isConstant() const { return Lo == Hi; }
  bool contains(int64_t V) const { return Lo <= V && V <= Hi; }

  bool operator==(const ValueRange &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const ValueRange &O) const { return !(*this == O); }

  /// Convex hull (the lattice join).
  ValueRange join(const ValueRange &O) const {
    return {Lo < O.Lo ? Lo : O.Lo, Hi > O.Hi ? Hi : O.Hi};
  }
  /// Intersection; std::nullopt when the intervals are disjoint (the
  /// contradiction case).
  std::optional<ValueRange> meet(const ValueRange &O) const {
    int64_t L = Lo > O.Lo ? Lo : O.Lo;
    int64_t H = Hi < O.Hi ? Hi : O.Hi;
    if (L > H)
      return std::nullopt;
    return ValueRange{L, H};
  }

  /// "[lo, hi]" or "[c]" / "top" rendering for reports.
  std::string str() const;

  // Sound abstractions of the interpreter's wrapping arithmetic: top
  // whenever any endpoint combination would overflow (a wrapped concrete
  // result is then possible and the interval would be wrong).
  static ValueRange add(const ValueRange &A, const ValueRange &B);
  static ValueRange sub(const ValueRange &A, const ValueRange &B);
  static ValueRange mul(const ValueRange &A, const ValueRange &B);
  static ValueRange neg(const ValueRange &A);
  /// Dst = (Src0 == 0) ? 1 : 0.
  static ValueRange logicalNot(const ValueRange &A);
  /// Compare result: constant 0/1 when the ranges prove the outcome,
  /// boolean() otherwise. \p Op must be a CmpXX opcode.
  static ValueRange compare(Opcode Op, const ValueRange &A,
                            const ValueRange &B);
};

/// What a call does to the abstract state, as far as the caller can tell.
/// Built from a FunctionSummary (Summary.h) when one is available, else
/// maximally conservative.
struct CallEffect {
  ValueRange Return = ValueRange::top();
  /// All scalar globals become unknown (indirect call, or no summary).
  bool HavocAllGlobals = true;
  /// Scalar globals the callee may (transitively) write; used only when
  /// !HavocAllGlobals.
  std::vector<uint32_t> WrittenGlobals;
};

/// An abstract machine state for one function activation: per-register
/// ranges with write generations, per-register compare provenance, and
/// scalar-global ranges. Copyable (the path walkers fork it per branch).
class RangeEnv {
public:
  explicit RangeEnv(uint32_t NumRegs)
      : Regs(NumRegs, ValueRange::top()), Gens(NumRegs, 0), Notes(NumRegs) {}

  uint32_t numRegs() const { return static_cast<uint32_t>(Regs.size()); }

  ValueRange reg(Reg R) const { return Regs[R]; }
  void setReg(Reg R, ValueRange V);
  /// Tightens register \p R in place without invalidating its compare
  /// provenance (used by branch refinement). Returns false on an empty
  /// meet — the caller must treat the state as infeasible.
  bool refineReg(Reg R, const ValueRange &To);

  ValueRange global(uint32_t Id) const;
  void setGlobal(uint32_t Id, ValueRange V) { Globals[Id] = V; }
  void havocGlobal(uint32_t Id) { Globals.erase(Id); }
  void havocAllGlobals() { Globals.clear(); }
  /// Carries the global state across an activation boundary (a call into
  /// or a return out of another function's walk).
  void adoptGlobals(const RangeEnv &From) { Globals = From.Globals; }
  const std::map<uint32_t, ValueRange> &globalsMap() const { return Globals; }

  /// The compare that last defined \p R, if its operands are still intact.
  struct CmpNote {
    bool Valid = false;
    Opcode Op = Opcode::CmpEq;
    Reg A = NoReg, B = NoReg;
    uint64_t GenA = 0, GenB = 0;
  };
  const CmpNote &note(Reg R) const { return Notes[R]; }
  uint64_t gen(Reg R) const { return Gens[R]; }
  void setNote(Reg R, Opcode Op, Reg A, Reg B);

private:
  std::vector<ValueRange> Regs;
  std::vector<uint64_t> Gens;
  std::vector<CmpNote> Notes;
  /// Scalar-global ranges; absence means top.
  std::map<uint32_t, ValueRange> Globals;
};

/// Applies one non-call, non-probe, non-terminator instruction to \p Env.
/// Unmodelled opcodes soundly write top to their destination.
void applyInstr(RangeEnv &Env, const Instruction &I);

/// Applies a call instruction's effect: Dst (if any) gets \p E.Return and
/// the written globals are havocked.
void applyCall(RangeEnv &Env, const Instruction &I, const CallEffect &E);

/// Refines \p Env with the outcome of \p CondBr (must be Opcode::CondBr):
/// the condition register is forced non-zero (\p Taken) or zero, and when
/// its value provably came from a compare whose operands are unchanged,
/// the compare operands are refined against each other too. Returns false
/// when the outcome contradicts the state — the branch-correlation signal.
bool refineBranch(RangeEnv &Env, const Instruction &CondBr, bool Taken);

/// Whole-function fixpoint ranges: the abstract state at each block entry
/// (join over predecessors, widening after a bounded number of visits) and
/// the join of every `ret` operand. Calls are interpreted through
/// \p Effects when provided (indexed by callee function id; CallInd is
/// always conservative), else conservatively.
struct FunctionRanges {
  /// Entry state per block id; unreachable blocks keep a top state.
  std::vector<RangeEnv> BlockIn;
  /// Join of all returned operand ranges; top when a `ret` returns NoReg,
  /// constant 0 only if every return is provably 0.
  ValueRange Return = ValueRange::top();
  /// True when at least one ret NoReg (void return) exists.
  bool ReturnsVoid = false;
  unsigned Passes = 0;
};
FunctionRanges
computeFunctionRanges(const Function &F, const CfgView &Cfg,
                      const std::vector<CallEffect> *Effects = nullptr);

} // namespace olpp

#endif // OLPP_ANALYSIS_VALUERANGE_H
