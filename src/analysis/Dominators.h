//===--- Dominators.h - Dominator tree --------------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree via the iterative Cooper-Harvey-Kennedy algorithm over the
/// reverse postorder. Needed to identify natural-loop backedges.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_ANALYSIS_DOMINATORS_H
#define OLPP_ANALYSIS_DOMINATORS_H

#include "analysis/Cfg.h"

namespace olpp {

class DomTree {
public:
  /// Computes immediate dominators for all entry-reachable blocks.
  static DomTree compute(const CfgView &Cfg);

  /// Immediate dominator of \p B; the entry's idom is itself. UINT32_MAX for
  /// unreachable blocks.
  uint32_t idom(uint32_t B) const { return Idom[B]; }

  /// Returns true if \p A dominates \p B (reflexive). Both blocks must be
  /// reachable.
  bool dominates(uint32_t A, uint32_t B) const;

private:
  std::vector<uint32_t> Idom;
  std::vector<uint32_t> RpoIndex;
};

} // namespace olpp

#endif // OLPP_ANALYSIS_DOMINATORS_H
