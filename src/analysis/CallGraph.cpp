//===--- CallGraph.cpp - Module call graph with SCCs ----------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include "ir/Module.h"

#include <algorithm>
#include <cassert>

using namespace olpp;

CallGraph CallGraph::build(const Module &M) {
  CallGraph CG;
  uint32_t N = static_cast<uint32_t>(M.numFunctions());
  CG.Nodes.resize(N);
  CG.SccId.assign(N, UINT32_MAX);
  CG.Recursive.assign(N, 0);

  for (uint32_t F = 0; F < N; ++F) {
    Node &Nd = CG.Nodes[F];
    for (const auto &BB : M.function(F)->blocks())
      for (const Instruction &I : BB->Instrs) {
        if (I.Op == Opcode::Call) {
          ++Nd.NumCallSites;
          if (I.CalleeId < N)
            Nd.Callees.push_back(I.CalleeId);
        } else if (I.Op == Opcode::CallInd) {
          Nd.HasIndirectCall = true;
          CG.AnyIndirect = true;
        }
      }
    std::sort(Nd.Callees.begin(), Nd.Callees.end());
    Nd.Callees.erase(std::unique(Nd.Callees.begin(), Nd.Callees.end()),
                     Nd.Callees.end());
    // Direct self-calls make the function trivially recursive.
    if (std::binary_search(Nd.Callees.begin(), Nd.Callees.end(), F))
      CG.Recursive[F] = 1;
  }
  for (uint32_t F = 0; F < N; ++F)
    for (uint32_t C : CG.Nodes[F].Callees)
      CG.Nodes[C].Callers.push_back(F);
  for (Node &Nd : CG.Nodes) {
    std::sort(Nd.Callers.begin(), Nd.Callers.end());
    Nd.Callers.erase(std::unique(Nd.Callers.begin(), Nd.Callers.end()),
                     Nd.Callers.end());
  }

  // Iterative Tarjan over the caller->callee edges. SCCs complete in
  // reverse topological order of the condensation, i.e. leaf callees
  // first — the bottom-up order the summary builder consumes directly.
  std::vector<uint32_t> Index(N, UINT32_MAX), Low(N, 0);
  std::vector<char> OnStack(N, 0);
  std::vector<uint32_t> Stack;
  uint32_t NextIndex = 0;

  struct Frame {
    uint32_t F;
    size_t NextCallee;
  };
  std::vector<Frame> Dfs;
  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Index[Root] != UINT32_MAX)
      continue;
    Dfs.push_back({Root, 0});
    Index[Root] = Low[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = 1;
    while (!Dfs.empty()) {
      Frame &Fr = Dfs.back();
      const Node &Nd = CG.Nodes[Fr.F];
      if (Fr.NextCallee < Nd.Callees.size()) {
        uint32_t C = Nd.Callees[Fr.NextCallee++];
        if (Index[C] == UINT32_MAX) {
          Index[C] = Low[C] = NextIndex++;
          Stack.push_back(C);
          OnStack[C] = 1;
          Dfs.push_back({C, 0});
        } else if (OnStack[C]) {
          Low[Fr.F] = std::min(Low[Fr.F], Index[C]);
        }
        continue;
      }
      uint32_t F = Fr.F;
      Dfs.pop_back();
      if (!Dfs.empty())
        Low[Dfs.back().F] = std::min(Low[Dfs.back().F], Low[F]);
      if (Low[F] != Index[F])
        continue;
      std::vector<uint32_t> Comp;
      for (;;) {
        uint32_t W = Stack.back();
        Stack.pop_back();
        OnStack[W] = 0;
        CG.SccId[W] = static_cast<uint32_t>(CG.Sccs.size());
        Comp.push_back(W);
        if (W == F)
          break;
      }
      std::sort(Comp.begin(), Comp.end());
      if (Comp.size() > 1)
        for (uint32_t W : Comp)
          CG.Recursive[W] = 1;
      CG.Sccs.push_back(std::move(Comp));
    }
  }
  return CG;
}
