//===--- Summary.h - Bottom-up interprocedural summaries --------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function interprocedural summaries, computed bottom-up over the call
/// graph's SCC order: side-effect shape (pure / writes globals / writes
/// arrays), the transitive sets of globals read and written, and the
/// callee's return value range. The feasibility walkers consume them as
/// CallEffects so branch correlation survives calls — a call only havocs
/// the scalar globals its callee can actually write, instead of the whole
/// world — and they are the legality layer ROADMAP item 1 (`olpp opt`
/// demand-driven inlining) needs.
///
/// Everything is conservative in the presence of indirect calls: a
/// function that can transitively reach a CallInd is treated as able to
/// read and write any global and to return anything.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_ANALYSIS_SUMMARY_H
#define OLPP_ANALYSIS_SUMMARY_H

#include "analysis/CallGraph.h"
#include "analysis/ValueRange.h"

#include <cstdint>
#include <vector>

namespace olpp {

class Module;

struct FunctionSummary {
  /// No transitive stores to globals or arrays and no reachable indirect
  /// call: calling it cannot change observable state.
  bool SideEffectFree = false;
  /// Scalar and array global ids transitively read / written (sorted,
  /// unique). Meaningless when TransitivelyIndirect.
  std::vector<uint32_t> GlobalsRead;
  std::vector<uint32_t> GlobalsWritten;
  bool ReadsArrays = false;
  bool WritesArrays = false;
  /// A CallInd is reachable from this function; every derived fact
  /// degrades to "anything".
  bool TransitivelyIndirect = false;
  /// Member of a call-graph cycle (including direct self-recursion).
  bool Recursive = false;
  /// Join of every `ret` operand range (top when unknown or void).
  ValueRange Return = ValueRange::top();
  bool ReturnsVoid = false;
};

struct ModuleSummaries {
  CallGraph CG;
  std::vector<FunctionSummary> Funcs; ///< by function id
  /// The summaries as CallEffects (by callee id), ready for the range
  /// analysis and the feasibility walkers.
  std::vector<CallEffect> Effects;

  const FunctionSummary &summary(uint32_t F) const { return Funcs[F]; }

  /// The effect of one call instruction: the callee's effect for a direct
  /// call with a valid id, maximally conservative otherwise (CallInd).
  CallEffect effectOfCall(const Instruction &I) const;
};

/// Computes summaries for every function of \p M, bottom-up over SCCs.
/// Calls inside a cycle are treated conservatively (one pass, no
/// interprocedural fixpoint), which keeps the result sound for recursion.
ModuleSummaries computeSummaries(const Module &M);

} // namespace olpp

#endif // OLPP_ANALYSIS_SUMMARY_H
