//===--- Summary.cpp - Bottom-up interprocedural summaries ----------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Summary.h"

#include "analysis/Cfg.h"
#include "ir/Module.h"

#include <algorithm>

using namespace olpp;

CallEffect ModuleSummaries::effectOfCall(const Instruction &I) const {
  if (I.Op == Opcode::Call && I.CalleeId < Effects.size())
    return Effects[I.CalleeId];
  return CallEffect{}; // CallInd or out-of-range: havoc everything
}

namespace {

void mergeInto(std::vector<uint32_t> &Dst, const std::vector<uint32_t> &Src) {
  size_t Old = Dst.size();
  Dst.insert(Dst.end(), Src.begin(), Src.end());
  std::inplace_merge(Dst.begin(), Dst.begin() + Old, Dst.end());
  Dst.erase(std::unique(Dst.begin(), Dst.end()), Dst.end());
}

} // namespace

ModuleSummaries olpp::computeSummaries(const Module &M) {
  ModuleSummaries S;
  S.CG = CallGraph::build(M);
  uint32_t N = S.CG.numFunctions();
  S.Funcs.resize(N);
  S.Effects.assign(N, CallEffect{});

  // Direct (intraprocedural) facts.
  struct Direct {
    std::vector<uint32_t> Read, Written;
    bool ReadsArrays = false, WritesArrays = false;
  };
  std::vector<Direct> Dir(N);
  for (uint32_t F = 0; F < N; ++F) {
    Direct &D = Dir[F];
    for (const auto &BB : M.function(F)->blocks())
      for (const Instruction &I : BB->Instrs)
        switch (I.Op) {
        case Opcode::LoadG:
          D.Read.push_back(I.GlobalId);
          break;
        case Opcode::StoreG:
          D.Written.push_back(I.GlobalId);
          break;
        case Opcode::LoadArr:
          D.Read.push_back(I.GlobalId);
          D.ReadsArrays = true;
          break;
        case Opcode::StoreArr:
          D.Written.push_back(I.GlobalId);
          D.WritesArrays = true;
          break;
        default:
          break;
        }
    std::sort(D.Read.begin(), D.Read.end());
    D.Read.erase(std::unique(D.Read.begin(), D.Read.end()), D.Read.end());
    std::sort(D.Written.begin(), D.Written.end());
    D.Written.erase(std::unique(D.Written.begin(), D.Written.end()),
                    D.Written.end());
  }

  // Bottom-up over SCCs: effect facts are the union over the component's
  // members plus the (already final) facts of every external callee; the
  // whole component shares them, which covers intra-component calls.
  for (const std::vector<uint32_t> &Comp : S.CG.sccs()) {
    std::vector<uint32_t> Read, Written;
    bool ReadsArrays = false, WritesArrays = false, Indirect = false;
    for (uint32_t F : Comp) {
      mergeInto(Read, Dir[F].Read);
      mergeInto(Written, Dir[F].Written);
      ReadsArrays |= Dir[F].ReadsArrays;
      WritesArrays |= Dir[F].WritesArrays;
      Indirect |= S.CG.node(F).HasIndirectCall;
      for (uint32_t C : S.CG.node(F).Callees) {
        if (S.CG.sccOf(C) == S.CG.sccOf(F))
          continue; // intra-component; covered by the member union
        const FunctionSummary &CS = S.Funcs[C];
        mergeInto(Read, CS.GlobalsRead);
        mergeInto(Written, CS.GlobalsWritten);
        ReadsArrays |= CS.ReadsArrays;
        WritesArrays |= CS.WritesArrays;
        Indirect |= CS.TransitivelyIndirect;
      }
    }
    for (uint32_t F : Comp) {
      FunctionSummary &FS = S.Funcs[F];
      FS.GlobalsRead = Read;
      FS.GlobalsWritten = Written;
      FS.ReadsArrays = ReadsArrays;
      FS.WritesArrays = WritesArrays;
      FS.TransitivelyIndirect = Indirect;
      FS.Recursive = S.CG.isRecursive(F);
      FS.SideEffectFree = !Indirect && Written.empty() && !WritesArrays;
    }

    // Return ranges: run the range analysis with the effects finalized so
    // far. Intra-component callees still carry the conservative default
    // effect (their slot is written below), which is sound for recursion.
    for (uint32_t F : Comp) {
      FunctionSummary &FS = S.Funcs[F];
      const Function &Fn = *M.function(F);
      if (Fn.numBlocks() == 0)
        continue;
      CfgView Cfg = CfgView::build(Fn);
      FunctionRanges FR = computeFunctionRanges(Fn, Cfg, &S.Effects);
      FS.Return = FR.Return;
      FS.ReturnsVoid = FR.ReturnsVoid;
    }
    for (uint32_t F : Comp) {
      const FunctionSummary &FS = S.Funcs[F];
      CallEffect &E = S.Effects[F];
      E.Return = FS.Return;
      E.HavocAllGlobals = FS.TransitivelyIndirect;
      E.WrittenGlobals = FS.GlobalsWritten;
    }
  }
  return S;
}
