//===--- EdgeSplit.h - CFG edge splitting -----------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splits a CFG edge by inserting a fresh block containing only a Br. The
/// instrumenters use this to give edge probes a home when the edge is
/// critical. Callers must renumberBlocks() and rebuild analyses afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_ANALYSIS_EDGESPLIT_H
#define OLPP_ANALYSIS_EDGESPLIT_H

namespace olpp {

class BasicBlock;
class Function;

/// Inserts a block on the edge From -> To and returns it. Both CondBr
/// targets pointing at \p To is rejected by the verifier, so exactly one
/// target is rewritten.
BasicBlock *splitEdge(Function &F, BasicBlock *From, BasicBlock *To);

} // namespace olpp

#endif // OLPP_ANALYSIS_EDGESPLIT_H
