//===--- ValueRange.cpp - Interval value-range analysis -------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/ValueRange.h"

#include "ir/Function.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace olpp;

//===----------------------------------------------------------------------===//
// ValueRange arithmetic
//===----------------------------------------------------------------------===//

std::string ValueRange::str() const {
  if (isTop())
    return "top";
  if (isConstant())
    return "[" + std::to_string(Lo) + "]";
  std::string S = "[";
  S += Lo == INT64_MIN ? std::string("-inf") : std::to_string(Lo);
  S += ", ";
  S += Hi == INT64_MAX ? std::string("+inf") : std::to_string(Hi);
  S += "]";
  return S;
}

ValueRange ValueRange::add(const ValueRange &A, const ValueRange &B) {
  int64_t Lo, Hi;
  if (__builtin_add_overflow(A.Lo, B.Lo, &Lo) ||
      __builtin_add_overflow(A.Hi, B.Hi, &Hi))
    return top();
  return {Lo, Hi};
}

ValueRange ValueRange::sub(const ValueRange &A, const ValueRange &B) {
  int64_t Lo, Hi;
  if (__builtin_sub_overflow(A.Lo, B.Hi, &Lo) ||
      __builtin_sub_overflow(A.Hi, B.Lo, &Hi))
    return top();
  return {Lo, Hi};
}

ValueRange ValueRange::mul(const ValueRange &A, const ValueRange &B) {
  int64_t Lo = INT64_MAX, Hi = INT64_MIN;
  for (int64_t X : {A.Lo, A.Hi})
    for (int64_t Y : {B.Lo, B.Hi}) {
      int64_t P;
      if (__builtin_mul_overflow(X, Y, &P))
        return top();
      Lo = P < Lo ? P : Lo;
      Hi = P > Hi ? P : Hi;
    }
  return {Lo, Hi};
}

ValueRange ValueRange::neg(const ValueRange &A) {
  if (A.Lo == INT64_MIN) // -INT64_MIN wraps
    return top();
  return {-A.Hi, -A.Lo};
}

ValueRange ValueRange::logicalNot(const ValueRange &A) {
  if (!A.contains(0))
    return constant(0);
  if (A.isConstant()) // the constant is 0
    return constant(1);
  return boolean();
}

ValueRange ValueRange::compare(Opcode Op, const ValueRange &A,
                               const ValueRange &B) {
  auto Known = [](bool V) { return constant(V ? 1 : 0); };
  switch (Op) {
  case Opcode::CmpEq:
    if (A.isConstant() && B.isConstant())
      return Known(A.Lo == B.Lo);
    if (A.Hi < B.Lo || B.Hi < A.Lo)
      return Known(false);
    return boolean();
  case Opcode::CmpNe:
    if (A.isConstant() && B.isConstant())
      return Known(A.Lo != B.Lo);
    if (A.Hi < B.Lo || B.Hi < A.Lo)
      return Known(true);
    return boolean();
  case Opcode::CmpLt:
    if (A.Hi < B.Lo)
      return Known(true);
    if (A.Lo >= B.Hi)
      return Known(false);
    return boolean();
  case Opcode::CmpLe:
    if (A.Hi <= B.Lo)
      return Known(true);
    if (A.Lo > B.Hi)
      return Known(false);
    return boolean();
  case Opcode::CmpGt:
    if (A.Lo > B.Hi)
      return Known(true);
    if (A.Hi <= B.Lo)
      return Known(false);
    return boolean();
  case Opcode::CmpGe:
    if (A.Lo >= B.Hi)
      return Known(true);
    if (A.Hi < B.Lo)
      return Known(false);
    return boolean();
  default:
    assert(false && "not a compare opcode");
    return boolean();
  }
}

//===----------------------------------------------------------------------===//
// RangeEnv
//===----------------------------------------------------------------------===//

void RangeEnv::setReg(Reg R, ValueRange V) {
  Regs[R] = V;
  ++Gens[R];
  Notes[R].Valid = false;
}

bool RangeEnv::refineReg(Reg R, const ValueRange &To) {
  // Refinement narrows what we know about the *same* runtime value, so the
  // generation and any compare note stay valid.
  std::optional<ValueRange> M = Regs[R].meet(To);
  if (!M)
    return false;
  Regs[R] = *M;
  return true;
}

ValueRange RangeEnv::global(uint32_t Id) const {
  auto It = Globals.find(Id);
  return It == Globals.end() ? ValueRange::top() : It->second;
}

void RangeEnv::setNote(Reg R, Opcode Op, Reg A, Reg B) {
  // A compare overwriting one of its own operands destroys the operand
  // value; such a note could never be applied soundly.
  if (R == A || R == B) {
    Notes[R].Valid = false;
    return;
  }
  Notes[R] = {true, Op, A, B, Gens[A], Gens[B]};
}

//===----------------------------------------------------------------------===//
// Transfer functions
//===----------------------------------------------------------------------===//

void olpp::applyInstr(RangeEnv &Env, const Instruction &I) {
  switch (I.Op) {
  case Opcode::Const:
    Env.setReg(I.Dst, ValueRange::constant(I.Imm));
    return;
  case Opcode::Move:
    Env.setReg(I.Dst, Env.reg(I.Src0));
    return;
  case Opcode::Add:
    Env.setReg(I.Dst, ValueRange::add(Env.reg(I.Src0), Env.reg(I.Src1)));
    return;
  case Opcode::Sub:
    Env.setReg(I.Dst, ValueRange::sub(Env.reg(I.Src0), Env.reg(I.Src1)));
    return;
  case Opcode::Mul:
    Env.setReg(I.Dst, ValueRange::mul(Env.reg(I.Src0), Env.reg(I.Src1)));
    return;
  case Opcode::Neg:
    Env.setReg(I.Dst, ValueRange::neg(Env.reg(I.Src0)));
    return;
  case Opcode::Not:
    Env.setReg(I.Dst, ValueRange::logicalNot(Env.reg(I.Src0)));
    return;
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
    Env.setReg(I.Dst,
               ValueRange::compare(I.Op, Env.reg(I.Src0), Env.reg(I.Src1)));
    Env.setNote(I.Dst, I.Op, I.Src0, I.Src1);
    return;
  // Trapping or bit-level opcodes: deliberately not folded — a trap must
  // never look like infeasibility, and partial bit-level models are where
  // unsound mismatches with the interpreter would creep in.
  case Opcode::Div:
  case Opcode::Mod:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::LoadArr:
    Env.setReg(I.Dst, ValueRange::top());
    return;
  case Opcode::LoadG:
    Env.setReg(I.Dst, Env.global(I.GlobalId));
    return;
  case Opcode::StoreG:
    Env.setGlobal(I.GlobalId, Env.reg(I.Src0));
    return;
  case Opcode::StoreArr:
    return;
  case Opcode::Call:
  case Opcode::CallInd:
    // Callers that know summaries use applyCall; this is the conservative
    // fallback.
    applyCall(Env, I, CallEffect{});
    return;
  case Opcode::Ret:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Probe:
    return;
  }
}

void olpp::applyCall(RangeEnv &Env, const Instruction &I,
                     const CallEffect &E) {
  if (E.HavocAllGlobals)
    Env.havocAllGlobals();
  else
    for (uint32_t G : E.WrittenGlobals)
      Env.havocGlobal(G);
  if (I.Dst != NoReg)
    Env.setReg(I.Dst, E.Return);
}

namespace {

/// Negation of a compare opcode (the not-taken outcome).
Opcode negateCmp(Opcode Op) {
  switch (Op) {
  case Opcode::CmpEq:
    return Opcode::CmpNe;
  case Opcode::CmpNe:
    return Opcode::CmpEq;
  case Opcode::CmpLt:
    return Opcode::CmpGe;
  case Opcode::CmpLe:
    return Opcode::CmpGt;
  case Opcode::CmpGt:
    return Opcode::CmpLe;
  case Opcode::CmpGe:
    return Opcode::CmpLt;
  default:
    assert(false && "not a compare opcode");
    return Op;
  }
}

/// Refines \p A and \p B under "A op B holds". Returns false on a
/// contradiction.
bool refineCompare(RangeEnv &Env, Opcode Op, Reg A, Reg B) {
  ValueRange RA = Env.reg(A), RB = Env.reg(B);
  switch (Op) {
  case Opcode::CmpEq: {
    std::optional<ValueRange> M = RA.meet(RB);
    if (!M)
      return false;
    return Env.refineReg(A, *M) && Env.refineReg(B, *M);
  }
  case Opcode::CmpNe:
    if (RA.isConstant() && RB.isConstant())
      return RA.Lo != RB.Lo;
    // Endpoint exclusion against a constant operand.
    if (RB.isConstant()) {
      if (RA.Lo == RB.Lo && !Env.refineReg(A, {RA.Lo + 1, INT64_MAX}))
        return false;
      RA = Env.reg(A);
      if (RA.Hi == RB.Lo && !Env.refineReg(A, {INT64_MIN, RA.Hi - 1}))
        return false;
    } else if (RA.isConstant()) {
      if (RB.Lo == RA.Lo && !Env.refineReg(B, {RB.Lo + 1, INT64_MAX}))
        return false;
      RB = Env.reg(B);
      if (RB.Hi == RA.Lo && !Env.refineReg(B, {INT64_MIN, RB.Hi - 1}))
        return false;
    }
    return true;
  case Opcode::CmpLt:
    if (RB.Hi == INT64_MIN || RA.Lo == INT64_MAX)
      return false;
    return Env.refineReg(A, {INT64_MIN, RB.Hi - 1}) &&
           Env.refineReg(B, {RA.Lo + 1, INT64_MAX});
  case Opcode::CmpLe:
    return Env.refineReg(A, {INT64_MIN, RB.Hi}) &&
           Env.refineReg(B, {RA.Lo, INT64_MAX});
  case Opcode::CmpGt:
    if (RB.Lo == INT64_MAX || RA.Hi == INT64_MIN)
      return false;
    return Env.refineReg(A, {RB.Lo + 1, INT64_MAX}) &&
           Env.refineReg(B, {INT64_MIN, RA.Hi - 1});
  case Opcode::CmpGe:
    return Env.refineReg(A, {RB.Lo, INT64_MAX}) &&
           Env.refineReg(B, {INT64_MIN, RA.Hi});
  default:
    return true;
  }
}

} // namespace

bool olpp::refineBranch(RangeEnv &Env, const Instruction &CondBr, bool Taken) {
  assert(CondBr.Op == Opcode::CondBr && "refineBranch needs a CondBr");
  Reg C = CondBr.Src0;
  ValueRange RC = Env.reg(C);
  if (Taken) {
    // C != 0. Representable only when 0 sits on an interval endpoint.
    if (RC.isConstant() && RC.Lo == 0)
      return false;
    if (RC.Lo == 0 && !Env.refineReg(C, {1, INT64_MAX}))
      return false;
    if (RC.Hi == 0 && !Env.refineReg(C, {INT64_MIN, -1}))
      return false;
  } else {
    if (!Env.refineReg(C, ValueRange::constant(0)))
      return false;
  }
  // Branch correlation: push the outcome through the compare that produced
  // the condition, when its operands are provably unchanged since.
  const RangeEnv::CmpNote &N = Env.note(C);
  if (N.Valid && Env.gen(N.A) == N.GenA && Env.gen(N.B) == N.GenB)
    return refineCompare(Env, Taken ? N.Op : negateCmp(N.Op), N.A, N.B);
  return true;
}

//===----------------------------------------------------------------------===//
// Whole-function fixpoint
//===----------------------------------------------------------------------===//

namespace {

/// Join (optionally widening) of register states at a block entry.
/// Generations and compare notes do not survive a join (they describe one
/// concrete prefix, not a merge), so the result is rebuilt from joined
/// ranges. \p Widen kicks in only after a block has been re-joined enough
/// times to suggest an ascending chain (a loop), so straight-line merges
/// keep precise hulls.
RangeEnv widenJoin(const RangeEnv &Old, const RangeEnv &New, bool Widen,
                   bool &Changed) {
  RangeEnv R(Old.numRegs());
  for (uint32_t I = 0; I < Old.numRegs(); ++I) {
    ValueRange J = Old.reg(I).join(New.reg(I));
    if (J != Old.reg(I)) {
      Changed = true;
      // Widen the moving endpoint so ascending chains terminate.
      if (Widen && J.Lo < Old.reg(I).Lo)
        J.Lo = INT64_MIN;
      if (Widen && J.Hi > Old.reg(I).Hi)
        J.Hi = INT64_MAX;
    }
    if (!J.isTop())
      R.setReg(I, J);
  }
  return R;
}

void widenJoinGlobals(const RangeEnv &Old, const RangeEnv &New, RangeEnv &Out,
                      const std::vector<uint32_t> &TrackedGlobals, bool Widen,
                      bool &Changed) {
  for (uint32_t G : TrackedGlobals) {
    ValueRange OG = Old.global(G), NG = New.global(G);
    ValueRange J = OG.join(NG);
    if (J != OG) {
      Changed = true;
      if (Widen && J.Lo < OG.Lo)
        J.Lo = INT64_MIN;
      if (Widen && J.Hi > OG.Hi)
        J.Hi = INT64_MAX;
    }
    if (!J.isTop())
      Out.setGlobal(G, J);
  }
}

} // namespace

FunctionRanges
olpp::computeFunctionRanges(const Function &F, const CfgView &Cfg,
                            const std::vector<CallEffect> *Effects) {
  FunctionRanges FR;
  uint32_t N = Cfg.numBlocks();

  CallEffect Conservative;
  auto EffectOf = [&](const Instruction &I) -> const CallEffect & {
    if (I.Op == Opcode::Call && Effects && I.CalleeId < Effects->size())
      return (*Effects)[I.CalleeId];
    return Conservative;
  };
  auto RunBlock = [&](RangeEnv &Env, uint32_t B) {
    for (const Instruction &I : F.block(B)->Instrs) {
      if (isTerminator(I.Op))
        break;
      if (I.Op == Opcode::Call || I.Op == Opcode::CallInd)
        applyCall(Env, I, EffectOf(I));
      else
        applyInstr(Env, I);
    }
  };

  // Globals we bother joining at block boundaries: every scalar global the
  // function itself stores to (others stay top inside this function anyway
  // unless loaded after a store — a per-path property the walkers handle).
  std::vector<uint32_t> TrackedGlobals;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->Instrs)
      if (I.Op == Opcode::StoreG)
        TrackedGlobals.push_back(I.GlobalId);
  std::sort(TrackedGlobals.begin(), TrackedGlobals.end());
  TrackedGlobals.erase(
      std::unique(TrackedGlobals.begin(), TrackedGlobals.end()),
      TrackedGlobals.end());

  // Activation entry state: parameters unknown; locals/temporaries are
  // zero (the interpreter zero-initializes frames). Only valid when the
  // entry block cannot be re-entered.
  RangeEnv EntryEnv(F.NumRegs);
  if (Cfg.preds(0).empty())
    for (uint32_t R = F.NumParams; R < F.NumRegs; ++R)
      EntryEnv.setReg(R, ValueRange::constant(0));

  std::vector<std::unique_ptr<RangeEnv>> In(N);
  std::deque<uint32_t> Work;
  std::vector<char> Queued(N, 0);
  std::vector<uint32_t> Updates(N, 0);

  // Widening points: targets of retreating edges (every CFG cycle passes
  // through one, which bounds the ascending chains). Widening anywhere
  // else would undo branch refinements — e.g. re-expand a loop counter
  // capped by its guard and make the next increment overflow to top.
  std::vector<char> WidenPoint(N, 0);
  for (uint32_t B = 0; B < N; ++B) {
    if (!Cfg.isReachable(B))
      continue;
    for (uint32_t P : Cfg.preds(B))
      if (Cfg.isReachable(P) && Cfg.rpoIndex(P) >= Cfg.rpoIndex(B))
        WidenPoint[B] = 1;
  }
  // Plain joins for the first few re-visits even there, so short
  // constant-bound loops converge to their exact trip ranges first.
  constexpr uint32_t WidenAfter = 16;

  In[0] = std::make_unique<RangeEnv>(EntryEnv);
  Work.push_back(0);
  Queued[0] = 1;

  auto Propagate = [&](uint32_t S, const RangeEnv &Env) {
    if (!In[S]) {
      In[S] = std::make_unique<RangeEnv>(Env);
    } else {
      bool Changed = false;
      bool Widen = WidenPoint[S] && ++Updates[S] >= WidenAfter;
      RangeEnv Joined = widenJoin(*In[S], Env, Widen, Changed);
      widenJoinGlobals(*In[S], Env, Joined, TrackedGlobals, Widen, Changed);
      if (!Changed)
        return;
      *In[S] = std::move(Joined);
    }
    if (!Queued[S]) {
      Work.push_back(S);
      Queued[S] = 1;
    }
  };

  // Widening bounds every chain, but keep a hard cap as a backstop.
  uint64_t Budget = uint64_t(N) * 64 + 256;
  while (!Work.empty() && Budget-- > 0) {
    uint32_t B = Work.front();
    Work.pop_front();
    Queued[B] = 0;
    ++FR.Passes;
    RangeEnv Env = *In[B];
    RunBlock(Env, B);
    const Instruction &T = F.block(B)->terminator();
    if (T.Op == Opcode::Br) {
      Propagate(T.Target0->Id, Env);
    } else if (T.Op == Opcode::CondBr) {
      if (T.Target0 == T.Target1) {
        Propagate(T.Target0->Id, Env);
      } else {
        RangeEnv TEnv = Env;
        if (refineBranch(TEnv, T, /*Taken=*/true))
          Propagate(T.Target0->Id, TEnv);
        RangeEnv FEnv = Env;
        if (refineBranch(FEnv, T, /*Taken=*/false))
          Propagate(T.Target1->Id, FEnv);
      }
    }
  }
  bool BudgetHit = !Work.empty();

  // Return range: join of the returned operand at every reached `ret`.
  bool AnyRet = false;
  ValueRange Ret = ValueRange::top();
  for (uint32_t B = 0; B < N; ++B) {
    if (!In[B])
      continue;
    const Instruction &T = F.block(B)->terminator();
    if (T.Op != Opcode::Ret)
      continue;
    if (T.Src0 == NoReg) {
      FR.ReturnsVoid = true;
      AnyRet = true;
      Ret = ValueRange::top();
      continue;
    }
    RangeEnv Env = *In[B];
    RunBlock(Env, B);
    ValueRange V = BudgetHit ? ValueRange::top() : Env.reg(T.Src0);
    Ret = AnyRet ? Ret.join(V) : V;
    AnyRet = true;
  }
  if (AnyRet && !FR.ReturnsVoid)
    FR.Return = Ret;

  FR.BlockIn.reserve(N);
  for (uint32_t B = 0; B < N; ++B)
    FR.BlockIn.push_back(In[B] && !BudgetHit ? *In[B] : RangeEnv(F.NumRegs));
  return FR;
}
