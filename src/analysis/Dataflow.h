//===--- Dataflow.h - Generic bit-vector dataflow engine --------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic iterative worklist solver for gen/kill dataflow problems over
/// bit-vectors: pick a direction (forward/backward) and a meet (union for
/// may-problems, intersection for must-problems), provide per-block Gen and
/// Kill sets, and the solver iterates block transfer functions
///
///   forward:  Out[B] = Gen[B] | (In[B]  - Kill[B]),  In[B]  = meet of
///             Out over predecessors
///   backward: In[B]  = Gen[B] | (Out[B] - Kill[B]),  Out[B] = meet of
///             In over successors
///
/// to a fixpoint over the reachable blocks in (reverse) postorder. Two
/// classic instances are provided — reaching definitions and live
/// registers — which the lint passes build on.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_ANALYSIS_DATAFLOW_H
#define OLPP_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"
#include "ir/Instruction.h"

#include <cstdint>
#include <vector>

namespace olpp {

class Function;

/// A fixed-width vector of bits with the set operations the solver needs.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t N, bool Value = false)
      : NumBits(N), Words((N + 63) / 64, Value ? ~uint64_t(0) : 0) {
    clearPadding();
  }

  size_t size() const { return NumBits; }

  bool test(size_t I) const {
    return (Words[I / 64] >> (I % 64)) & 1;
  }
  void set(size_t I) { Words[I / 64] |= uint64_t(1) << (I % 64); }
  void reset(size_t I) { Words[I / 64] &= ~(uint64_t(1) << (I % 64)); }

  /// this |= Other. Sizes must match.
  void unionWith(const BitVector &Other) {
    for (size_t W = 0; W < Words.size(); ++W)
      Words[W] |= Other.Words[W];
  }
  /// this &= Other.
  void intersectWith(const BitVector &Other) {
    for (size_t W = 0; W < Words.size(); ++W)
      Words[W] &= Other.Words[W];
  }
  /// this -= Other (clears every bit set in Other).
  void subtract(const BitVector &Other) {
    for (size_t W = 0; W < Words.size(); ++W)
      Words[W] &= ~Other.Words[W];
  }

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }
  bool operator!=(const BitVector &Other) const { return !(*this == Other); }

  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

private:
  /// Keeps bits beyond NumBits zero so operator== and count stay exact.
  void clearPadding() {
    if (NumBits % 64 != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

enum class DataflowDirection : uint8_t { Forward, Backward };
enum class DataflowMeet : uint8_t { Union, Intersection };

/// A gen/kill problem instance. Gen and Kill are indexed by block id and
/// must have one entry per block (unreachable blocks are ignored).
struct DataflowProblem {
  DataflowDirection Direction = DataflowDirection::Forward;
  DataflowMeet Meet = DataflowMeet::Union;
  size_t NumBits = 0;
  std::vector<BitVector> Gen;
  std::vector<BitVector> Kill;
  /// Dataflow value at the boundary: In of the entry block (forward) or
  /// Out of every exit block (backward). Defaults to the empty set.
  BitVector Boundary;
};

/// Fixpoint In/Out per block, plus the number of full passes the solver
/// needed (useful for convergence tests).
struct DataflowResult {
  std::vector<BitVector> In;
  std::vector<BitVector> Out;
  unsigned Passes = 0;
};

/// Solves \p P over \p Cfg. Interior blocks start at the meet's identity
/// (empty set for union, full set for intersection).
DataflowResult solveDataflow(const CfgView &Cfg, const DataflowProblem &P);

// --- register def/use helpers --------------------------------------------

/// The register \p I writes, or NoReg.
Reg instrDef(const Instruction &I);

/// Registers \p I reads, appended to \p Uses (may contain duplicates).
void instrUses(const Instruction &I, std::vector<Reg> &Uses);

// --- classic instances ----------------------------------------------------

/// One definition site for reaching definitions: instruction \p Instr of
/// block \p Block writes register \p R. Definition index == position in
/// ReachingDefs::Defs. Additionally every register gets one pseudo
/// definition ("uninitialized at entry"); pseudo definitions of non-param
/// registers reach the function entry.
struct DefSite {
  uint32_t Block = 0;
  uint32_t Instr = 0;
  Reg R = NoReg;
};

/// Reaching definitions over a function. Forward, union-meet.
class ReachingDefs {
public:
  static ReachingDefs compute(const Function &F, const CfgView &Cfg);

  const std::vector<DefSite> &defs() const { return Defs; }
  /// Bit index of the pseudo "uninitialized" definition of register \p R.
  size_t uninitBit(Reg R) const { return Defs.size() + R; }
  /// Definitions reaching the entry of block \p B.
  const BitVector &reachingIn(uint32_t B) const { return Result.In[B]; }
  const DataflowResult &result() const { return Result; }

  /// Definition bits of register \p R (pseudo bit included).
  const BitVector &defsOf(Reg R) const { return DefsOfReg[R]; }

private:
  std::vector<DefSite> Defs;
  std::vector<BitVector> DefsOfReg;
  DataflowResult Result;
};

/// Live registers over a function. Backward, union-meet.
class Liveness {
public:
  static Liveness compute(const Function &F, const CfgView &Cfg);

  /// Registers live on entry to / exit from block \p B.
  const BitVector &liveIn(uint32_t B) const { return Result.In[B]; }
  const BitVector &liveOut(uint32_t B) const { return Result.Out[B]; }
  const DataflowResult &result() const { return Result; }

private:
  DataflowResult Result;
};

} // namespace olpp

#endif // OLPP_ANALYSIS_DATAFLOW_H
