//===--- Dataflow.cpp - Generic bit-vector dataflow engine -------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "ir/Function.h"

#include <algorithm>
#include <cassert>

using namespace olpp;

DataflowResult olpp::solveDataflow(const CfgView &Cfg,
                                   const DataflowProblem &P) {
  uint32_t N = Cfg.numBlocks();
  assert(P.Gen.size() == N && P.Kill.size() == N &&
         "Gen/Kill must cover every block");
  bool Forward = P.Direction == DataflowDirection::Forward;
  bool Union = P.Meet == DataflowMeet::Union;

  DataflowResult R;
  R.In.assign(N, BitVector(P.NumBits, /*Value=*/!Union));
  R.Out.assign(N, BitVector(P.NumBits, /*Value=*/!Union));

  BitVector Boundary = P.Boundary;
  if (Boundary.size() != P.NumBits)
    Boundary = BitVector(P.NumBits);

  // Visit order: RPO converges in few passes forward, reverse RPO backward.
  std::vector<uint32_t> Order = Cfg.rpo();
  if (!Forward)
    std::reverse(Order.begin(), Order.end());

  // Neighbours the meet reads from: preds (forward) or succs (backward).
  auto MeetSources = [&](uint32_t B) -> const std::vector<uint32_t> & {
    return Forward ? Cfg.preds(B) : Cfg.succs(B);
  };
  // A boundary block receives the boundary value instead of a meet: the
  // entry (forward) or any exit, i.e. a block without successors
  // (backward). Blocks whose only "predecessors" are unreachable also
  // start from the boundary to keep must-problems sound.
  auto IsBoundaryBlock = [&](uint32_t B) {
    if (Forward)
      return Cfg.preds(B).empty();
    return Cfg.succs(B).empty();
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++R.Passes;
    for (uint32_t B : Order) {
      // Meet into the block-input value.
      BitVector MeetVal(P.NumBits, /*Value=*/!Union);
      if (IsBoundaryBlock(B)) {
        MeetVal = Boundary;
      } else {
        bool Any = false;
        for (uint32_t S : MeetSources(B)) {
          if (!Cfg.isReachable(S))
            continue;
          const BitVector &V = Forward ? R.Out[S] : R.In[S];
          if (!Any) {
            MeetVal = V;
            Any = true;
          } else if (Union) {
            MeetVal.unionWith(V);
          } else {
            MeetVal.intersectWith(V);
          }
        }
        if (!Any)
          MeetVal = Boundary;
      }

      // Transfer.
      BitVector OutVal = MeetVal;
      OutVal.subtract(P.Kill[B]);
      OutVal.unionWith(P.Gen[B]);

      BitVector &InSlot = Forward ? R.In[B] : R.Out[B];
      BitVector &OutSlot = Forward ? R.Out[B] : R.In[B];
      if (InSlot != MeetVal) {
        InSlot = std::move(MeetVal);
      }
      if (OutSlot != OutVal) {
        OutSlot = std::move(OutVal);
        Changed = true;
      }
    }
  }
  return R;
}

Reg olpp::instrDef(const Instruction &I) {
  switch (I.Op) {
  case Opcode::Const:
  case Opcode::Move:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Mod:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::LoadG:
  case Opcode::LoadArr:
  case Opcode::Call:
  case Opcode::CallInd:
    return I.Dst;
  case Opcode::StoreG:
  case Opcode::StoreArr:
  case Opcode::Ret:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Probe:
    return NoReg;
  }
  return NoReg;
}

void olpp::instrUses(const Instruction &I, std::vector<Reg> &Uses) {
  auto Add = [&](Reg R) {
    if (R != NoReg)
      Uses.push_back(R);
  };
  switch (I.Op) {
  case Opcode::Const:
  case Opcode::LoadG:
  case Opcode::Br:
  case Opcode::Probe:
    break;
  case Opcode::Move:
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::StoreG:
  case Opcode::LoadArr:
  case Opcode::Ret:
  case Opcode::CondBr:
    Add(I.Src0);
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Mod:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::StoreArr:
    Add(I.Src0);
    Add(I.Src1);
    break;
  case Opcode::Call:
    for (Reg A : I.Args)
      Add(A);
    break;
  case Opcode::CallInd:
    Add(I.Src0);
    for (Reg A : I.Args)
      Add(A);
    break;
  }
}

ReachingDefs ReachingDefs::compute(const Function &F, const CfgView &Cfg) {
  ReachingDefs RD;
  uint32_t N = Cfg.numBlocks();

  // Enumerate real definition sites.
  for (uint32_t B = 0; B < N; ++B) {
    const BasicBlock *BB = F.block(B);
    for (uint32_t Idx = 0; Idx < BB->Instrs.size(); ++Idx) {
      Reg D = instrDef(BB->Instrs[Idx]);
      if (D != NoReg && D < F.NumRegs)
        RD.Defs.push_back({B, Idx, D});
    }
  }

  size_t NumBits = RD.Defs.size() + F.NumRegs; // real defs + pseudo-uninit
  RD.DefsOfReg.assign(F.NumRegs, BitVector(NumBits));
  for (size_t D = 0; D < RD.Defs.size(); ++D)
    RD.DefsOfReg[RD.Defs[D].R].set(D);
  for (Reg R = 0; R < F.NumRegs; ++R)
    RD.DefsOfReg[R].set(RD.Defs.size() + R);

  DataflowProblem P;
  P.Direction = DataflowDirection::Forward;
  P.Meet = DataflowMeet::Union;
  P.NumBits = NumBits;
  P.Gen.assign(N, BitVector(NumBits));
  P.Kill.assign(N, BitVector(NumBits));
  for (size_t D = 0; D < RD.Defs.size(); ++D) {
    const DefSite &S = RD.Defs[D];
    // A definition kills every other definition of its register,
    // including the pseudo one; the *last* definition per register in the
    // block survives into Gen.
    P.Kill[S.Block].unionWith(RD.DefsOfReg[S.R]);
  }
  for (uint32_t B = 0; B < N; ++B) {
    // Walk forward; later defs of the same register overwrite earlier.
    std::vector<size_t> LastDef(F.NumRegs, SIZE_MAX);
    for (size_t D = 0; D < RD.Defs.size(); ++D)
      if (RD.Defs[D].Block == B)
        LastDef[RD.Defs[D].R] = D;
    for (Reg R = 0; R < F.NumRegs; ++R)
      if (LastDef[R] != SIZE_MAX)
        P.Gen[B].set(LastDef[R]);
  }

  // Boundary: parameters arrive defined; everything else starts
  // uninitialized.
  P.Boundary = BitVector(NumBits);
  for (Reg R = F.NumParams; R < F.NumRegs; ++R)
    P.Boundary.set(RD.Defs.size() + R);

  RD.Result = solveDataflow(Cfg, P);
  return RD;
}

Liveness Liveness::compute(const Function &F, const CfgView &Cfg) {
  Liveness L;
  uint32_t N = Cfg.numBlocks();

  DataflowProblem P;
  P.Direction = DataflowDirection::Backward;
  P.Meet = DataflowMeet::Union;
  P.NumBits = F.NumRegs;
  P.Gen.assign(N, BitVector(F.NumRegs));
  P.Kill.assign(N, BitVector(F.NumRegs));

  std::vector<Reg> Uses;
  for (uint32_t B = 0; B < N; ++B) {
    const BasicBlock *BB = F.block(B);
    // Compose transfer functions back to front: prepending an instruction
    // kills its def (and shadows exposed uses of it), then exposes its own
    // uses. Within one instruction uses happen before the def, so the def
    // is applied first.
    for (size_t Idx = BB->Instrs.size(); Idx-- > 0;) {
      const Instruction &I = BB->Instrs[Idx];
      Reg D = instrDef(I);
      if (D != NoReg && D < F.NumRegs) {
        P.Gen[B].reset(D);
        P.Kill[B].set(D);
      }
      Uses.clear();
      instrUses(I, Uses);
      for (Reg U : Uses)
        if (U < F.NumRegs) {
          P.Gen[B].set(U);
          P.Kill[B].reset(U);
        }
    }
  }

  L.Result = solveDataflow(Cfg, P);
  return L;
}
