//===--- Cfg.h - CFG adjacency snapshot -------------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An immutable adjacency snapshot of a function's CFG, indexed by block id.
/// Analyses and the profiling graph builders consume this instead of chasing
/// block pointers. Rebuild after any CFG mutation (renumberBlocks first).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_ANALYSIS_CFG_H
#define OLPP_ANALYSIS_CFG_H

#include <cstdint>
#include <vector>

namespace olpp {

class Function;

/// Adjacency lists plus entry-reachability and orders for one function.
class CfgView {
public:
  /// Builds the snapshot. Block ids must be fresh (renumberBlocks).
  static CfgView build(const Function &F);

  uint32_t numBlocks() const { return static_cast<uint32_t>(Succs.size()); }
  const std::vector<uint32_t> &succs(uint32_t B) const { return Succs[B]; }
  const std::vector<uint32_t> &preds(uint32_t B) const { return Preds[B]; }
  bool isReachable(uint32_t B) const { return Reachable[B]; }

  /// Reverse postorder over reachable blocks, starting at the entry.
  const std::vector<uint32_t> &rpo() const { return Rpo; }

  /// Position of each block in rpo(); UINT32_MAX for unreachable blocks.
  uint32_t rpoIndex(uint32_t B) const { return RpoIndex[B]; }

private:
  std::vector<std::vector<uint32_t>> Succs;
  std::vector<std::vector<uint32_t>> Preds;
  std::vector<bool> Reachable;
  std::vector<uint32_t> Rpo;
  std::vector<uint32_t> RpoIndex;
};

} // namespace olpp

#endif // OLPP_ANALYSIS_CFG_H
