//===--- LoopInfo.cpp - Natural loop detection --------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace olpp;

LoopInfo LoopInfo::compute(const CfgView &Cfg, const DomTree &Dom) {
  LoopInfo LI;
  uint32_t N = Cfg.numBlocks();

  // Collect backedges grouped by header.
  std::map<uint32_t, std::vector<uint32_t>> LatchesByHeader;
  for (uint32_t B = 0; B < N; ++B) {
    if (!Cfg.isReachable(B))
      continue;
    for (uint32_t S : Cfg.succs(B))
      if (Dom.dominates(S, B))
        LatchesByHeader[S].push_back(B);
  }

  // Detect irreducibility: a DFS-retreating edge whose target does not
  // dominate its source. Retreating == target is still on the DFS stack.
  {
    std::vector<uint8_t> State(N, 0);
    std::vector<std::pair<uint32_t, uint32_t>> Stack{{0, 0}};
    State[0] = 1;
    while (!Stack.empty()) {
      auto &[B, Next] = Stack.back();
      if (Next < Cfg.succs(B).size()) {
        uint32_t S = Cfg.succs(B)[Next++];
        if (State[S] == 1 && !Dom.dominates(S, B))
          LI.Irreducible = true;
        if (State[S] == 0) {
          State[S] = 1;
          Stack.push_back({S, 0});
        }
        continue;
      }
      State[B] = 2;
      Stack.pop_back();
    }
  }

  // Build one loop per header.
  for (auto &[Header, Latches] : LatchesByHeader) {
    Loop L;
    L.Header = Header;
    L.Latches = Latches;
    std::sort(L.Latches.begin(), L.Latches.end());
    L.Contains.assign(N, false);
    L.Contains[Header] = true;

    // Backward reachability from the latches, stopping at the header.
    std::vector<uint32_t> Work = L.Latches;
    for (uint32_t La : L.Latches)
      L.Contains[La] = true;
    while (!Work.empty()) {
      uint32_t B = Work.back();
      Work.pop_back();
      if (B == Header)
        continue;
      for (uint32_t P : Cfg.preds(B)) {
        if (!Cfg.isReachable(P) || L.Contains[P])
          continue;
        L.Contains[P] = true;
        Work.push_back(P);
      }
    }
    for (uint32_t B = 0; B < N; ++B)
      if (L.Contains[B])
        L.Blocks.push_back(B);

    for (uint32_t B : L.Blocks)
      for (uint32_t S : Cfg.succs(B))
        if (!L.Contains[S])
          L.ExitEdges.push_back({B, S});
    std::sort(L.ExitEdges.begin(), L.ExitEdges.end());

    LI.Loops.push_back(std::move(L));
  }

  // Order loops by header RPO so outer loops come first, then fill in the
  // nesting structure (the innermost *other* loop containing the header).
  std::sort(LI.Loops.begin(), LI.Loops.end(),
            [&](const Loop &A, const Loop &B) {
              return Cfg.rpoIndex(A.Header) < Cfg.rpoIndex(B.Header);
            });
  for (uint32_t I = 0; I < LI.Loops.size(); ++I) {
    Loop &L = LI.Loops[I];
    uint32_t Best = UINT32_MAX;
    for (uint32_t J = 0; J < LI.Loops.size(); ++J) {
      if (J == I)
        continue;
      const Loop &Outer = LI.Loops[J];
      if (!Outer.contains(L.Header) || L.contains(Outer.Header))
        continue;
      // Outer strictly encloses L; prefer the smallest such loop.
      if (Best == UINT32_MAX ||
          LI.Loops[Best].Blocks.size() > Outer.Blocks.size())
        Best = J;
    }
    L.Parent = Best;
  }
  for (Loop &L : LI.Loops) {
    uint32_t Depth = 1;
    for (uint32_t P = L.Parent; P != UINT32_MAX; P = LI.Loops[P].Parent)
      ++Depth;
    L.Depth = Depth;
  }
  return LI;
}

uint32_t LoopInfo::loopForBackedge(uint32_t From, uint32_t To) const {
  for (uint32_t I = 0; I < Loops.size(); ++I)
    if (Loops[I].Header == To && Loops[I].isLatch(From))
      return I;
  return UINT32_MAX;
}

uint32_t LoopInfo::innermostLoop(uint32_t B) const {
  uint32_t Best = UINT32_MAX;
  for (uint32_t I = 0; I < Loops.size(); ++I) {
    if (!Loops[I].contains(B))
      continue;
    if (Best == UINT32_MAX || Loops[I].Depth > Loops[Best].Depth)
      Best = I;
  }
  return Best;
}
