//===--- Module.cpp - OLPP IR module ---------------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include <unordered_map>

using namespace olpp;

std::unique_ptr<Function> Function::clone() const {
  auto Copy = std::make_unique<Function>(Name, NumParams);
  Copy->Id = Id;
  Copy->NumRegs = NumRegs;
  Copy->NumLoopSlots = NumLoopSlots;

  std::unordered_map<const BasicBlock *, BasicBlock *> BlockMap;
  for (const auto &BB : blocks()) {
    BasicBlock *NewBB = Copy->addBlock(BB->Name);
    NewBB->Instrs = BB->Instrs;
    BlockMap[BB.get()] = NewBB;
  }
  for (const auto &BB : Copy->blocks())
    for (Instruction &I : BB->Instrs) {
      if (I.Target0)
        I.Target0 = BlockMap.at(I.Target0);
      if (I.Target1)
        I.Target1 = BlockMap.at(I.Target1);
    }
  Copy->renumberBlocks();
  return Copy;
}

size_t Function::removeUnreachableBlocks() {
  if (Blocks.empty())
    return 0;
  std::vector<bool> Reachable(Blocks.size(), false);
  // Ids may be stale while a transform is in flight; walk by position.
  std::unordered_map<const BasicBlock *, size_t> Pos;
  for (size_t I = 0; I < Blocks.size(); ++I)
    Pos[Blocks[I].get()] = I;
  std::vector<const BasicBlock *> Work{entry()};
  Reachable[0] = true;
  while (!Work.empty()) {
    const BasicBlock *BB = Work.back();
    Work.pop_back();
    for (BasicBlock *S : BB->successors()) {
      size_t I = Pos.at(S);
      if (!Reachable[I]) {
        Reachable[I] = true;
        Work.push_back(S);
      }
    }
  }
  size_t Removed = 0, Out = 0;
  for (size_t I = 0; I < Blocks.size(); ++I) {
    if (Reachable[I])
      Blocks[Out++] = std::move(Blocks[I]);
    else
      ++Removed;
  }
  Blocks.resize(Out);
  renumberBlocks();
  return Removed;
}

std::unique_ptr<Module> Module::clone() const {
  auto Copy = std::make_unique<Module>();
  for (const auto &G : Globals)
    Copy->addGlobal(G.Name, G.Size);
  for (const auto &F : Functions) {
    std::unique_ptr<Function> FC = F->clone();
    Copy->Functions.push_back(std::move(FC));
  }
  return Copy;
}
