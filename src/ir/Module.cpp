//===--- Module.cpp - OLPP IR module ---------------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include <unordered_map>

using namespace olpp;

std::unique_ptr<Function> Function::clone() const {
  auto Copy = std::make_unique<Function>(Name, NumParams);
  Copy->Id = Id;
  Copy->NumRegs = NumRegs;
  Copy->NumLoopSlots = NumLoopSlots;

  std::unordered_map<const BasicBlock *, BasicBlock *> BlockMap;
  for (const auto &BB : blocks()) {
    BasicBlock *NewBB = Copy->addBlock(BB->Name);
    NewBB->Instrs = BB->Instrs;
    BlockMap[BB.get()] = NewBB;
  }
  for (const auto &BB : Copy->blocks())
    for (Instruction &I : BB->Instrs) {
      if (I.Target0)
        I.Target0 = BlockMap.at(I.Target0);
      if (I.Target1)
        I.Target1 = BlockMap.at(I.Target1);
    }
  Copy->renumberBlocks();
  return Copy;
}

std::unique_ptr<Module> Module::clone() const {
  auto Copy = std::make_unique<Module>();
  for (const auto &G : Globals)
    Copy->addGlobal(G.Name, G.Size);
  for (const auto &F : Functions) {
    std::unique_ptr<Function> FC = F->clone();
    Copy->Functions.push_back(std::move(FC));
  }
  return Copy;
}
