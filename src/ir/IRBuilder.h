//===--- IRBuilder.h - Convenience instruction builder ----------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small convenience layer for appending instructions to a block. Used by
/// the frontend lowering, the workload generator, and tests that hand-build
/// the paper's example CFGs.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_IR_IRBUILDER_H
#define OLPP_IR_IRBUILDER_H

#include "ir/Function.h"

#include <cassert>

namespace olpp {

class IRBuilder {
public:
  explicit IRBuilder(Function &F) : F(F) {}

  /// Selects the block subsequent instructions are appended to.
  void setBlock(BasicBlock *B) { Cur = B; }
  BasicBlock *block() const { return Cur; }

  Reg constInt(int64_t V) {
    Reg R = F.newReg();
    emit({.Op = Opcode::Const, .Dst = R, .Imm = V});
    return R;
  }

  void constInto(Reg Dst, int64_t V) {
    emit({.Op = Opcode::Const, .Dst = Dst, .Imm = V});
  }

  void move(Reg Dst, Reg Src) {
    emit({.Op = Opcode::Move, .Dst = Dst, .Src0 = Src});
  }

  Reg binop(Opcode Op, Reg A, Reg B) {
    assert(Op >= Opcode::Add && Op <= Opcode::CmpGe && "not a binary op");
    Reg R = F.newReg();
    emit({.Op = Op, .Dst = R, .Src0 = A, .Src1 = B});
    return R;
  }

  void binopInto(Reg Dst, Opcode Op, Reg A, Reg B) {
    assert(Op >= Opcode::Add && Op <= Opcode::CmpGe && "not a binary op");
    emit({.Op = Op, .Dst = Dst, .Src0 = A, .Src1 = B});
  }

  Reg neg(Reg A) {
    Reg R = F.newReg();
    emit({.Op = Opcode::Neg, .Dst = R, .Src0 = A});
    return R;
  }

  Reg logicalNot(Reg A) {
    Reg R = F.newReg();
    emit({.Op = Opcode::Not, .Dst = R, .Src0 = A});
    return R;
  }

  Reg loadGlobal(uint32_t GlobalId) {
    Reg R = F.newReg();
    emit({.Op = Opcode::LoadG, .Dst = R, .GlobalId = GlobalId});
    return R;
  }

  void storeGlobal(uint32_t GlobalId, Reg Src) {
    emit({.Op = Opcode::StoreG, .Src0 = Src, .GlobalId = GlobalId});
  }

  Reg loadArray(uint32_t GlobalId, Reg Index) {
    Reg R = F.newReg();
    emit({.Op = Opcode::LoadArr, .Dst = R, .Src0 = Index, .GlobalId = GlobalId});
    return R;
  }

  void storeArray(uint32_t GlobalId, Reg Index, Reg Value) {
    emit({.Op = Opcode::StoreArr,
          .Src0 = Index,
          .Src1 = Value,
          .GlobalId = GlobalId});
  }

  /// Emits a call. Pass NoReg as \p Dst for a void-valued call.
  void call(Reg Dst, uint32_t CalleeId, std::vector<Reg> Args) {
    Instruction I;
    I.Op = Opcode::Call;
    I.Dst = Dst;
    I.CalleeId = CalleeId;
    I.Args = std::move(Args);
    emit(std::move(I));
  }

  /// Emits an indirect call through the function id in \p Target.
  void callIndirect(Reg Dst, Reg Target, std::vector<Reg> Args) {
    Instruction I;
    I.Op = Opcode::CallInd;
    I.Dst = Dst;
    I.Src0 = Target;
    I.Args = std::move(Args);
    emit(std::move(I));
  }

  void ret(Reg Src = NoReg) { emit({.Op = Opcode::Ret, .Src0 = Src}); }

  void br(BasicBlock *Target) {
    emit({.Op = Opcode::Br, .Target0 = Target});
  }

  void condBr(Reg Cond, BasicBlock *IfTrue, BasicBlock *IfFalse) {
    emit({.Op = Opcode::CondBr,
          .Src0 = Cond,
          .Target0 = IfTrue,
          .Target1 = IfFalse});
  }

private:
  void emit(Instruction I) {
    assert(Cur && "no current block");
    assert(!Cur->hasTerminator() && "appending past a terminator");
    Cur->Instrs.push_back(std::move(I));
  }

  Function &F;
  BasicBlock *Cur = nullptr;
};

} // namespace olpp

#endif // OLPP_IR_IRBUILDER_H
