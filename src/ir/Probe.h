//===--- Probe.h - Profiling probe micro-ops -------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profiling probes are real IR instructions whose payload is a small program
/// of micro-ops over the per-activation profiling registers:
///
///   r          the Ball-Larus path register (one per activation)
///   ro[S]      overlap register of region slot S (loop overlap regions)
///   ol[S]      predicate counter of region slot S
///   active[S]  whether region slot S is currently tracking an overlap path
///
/// plus the interprocedural Type I (callee-prefix) and Type II
/// (caller-continuation) region state. The interpreter charges each executed
/// micro-op a documented dynamic cost (see interp/CostModel.h), which is how
/// the paper's instrumentation-overhead experiments are reproduced.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_IR_PROBE_H
#define OLPP_IR_PROBE_H

#include <cstdint>
#include <vector>

namespace olpp {

/// The kind of a single profiling micro-op.
enum class ProbeOpKind : uint8_t {
  // --- Ball-Larus path register ---------------------------------------
  BLSet,   ///< r = C0. Path (re)start: function entry, post-backedge,
           ///< post-call-site in call-breaking mode.
  BLAdd,   ///< r += C0. Edge increment in the white (BL) region.
  BLCount, ///< pathCounts[r + C0]++. Path end (exit edge, backedge in
           ///< plain BL mode, call block in call-breaking mode).

  // --- Loop overlap region (slot = loop index) ------------------------
  OLDisarm, ///< active[S] = false. Loop-entry edges.
  OLArm,    ///< ro[S] = r + C0; ol[S] = 0; active[S] = true. Backedge of
            ///< the slot's own loop, after its OLFlush.
  OLAdd,    ///< if (active[S]) ro[S] += C0. Overlapping-graph edge.
  OLPred,   ///< if (active[S]) { if (++ol[S] == C1) {
            ///<   pathCounts[ro[S] + C0]++; active[S] = false; } }
            ///< Entry of a predicate node of the OG; C1 = k+1, C0 = the
            ///< node's dummy-to-Exit increment.
  OLFlush,  ///< if (active[S]) { pathCounts[ro[S] + C0]++;
            ///<   active[S] = false; } Early region end: loop-exit edge,
            ///< any backedge, call block (in call-breaking mode).

  // --- Interprocedural, caller side ------------------------------------
  IPCall,  ///< Push {callSite = C0, callerPreId = r + C1} on the shadow
           ///< stack. Placed immediately before a call.
  IPArmII, ///< Consume the pending-return record {callee, calleePathId}
           ///< left by the callee's IPRet; roII = C0; olII = 0;
           ///< activeII = true. Placed immediately after a call.
  IPAddII, ///< if (activeII) roII += C0. Continuation-OG edge.
  IPPredII,///< if (activeII) { if (++olII == C1) flushII(C0); }.
  IPFlushII,///< if (activeII) flushII(C0). Early end of continuation
           ///< region (exit edge, backedge, next call block).
           ///< flushII(C):
           ///<   typeII[{callee, callSite, calleePathId, roII + C}]++.

  // --- Interprocedural, callee side ------------------------------------
  IPEnter, ///< Read {callSite, callerPreId} from the shadow stack top (if
           ///< any; otherwise the Type I region stays inactive);
           ///< rI = C0; olI = 0; activeI = true. Function entry.
  IPAddI,  ///< if (activeI) rI += C0. Callee-prefix-OG edge.
  IPPredI, ///< if (activeI) { if (++olI == C1) flushI(C0); }.
  IPFlushI,///< if (activeI) flushI(C0). Early end of the callee prefix
           ///< region (exit, backedge, call block).
           ///< flushI(C):
           ///<   typeI[{self, callSite, rI + C, callerPreId}]++.
  IPRet,   ///< Record pending return {self, calleePathId = r + C0} for
           ///< the caller's IPArmII and pop the shadow stack. Placed
           ///< immediately before every Ret (the BLCount for the callee's
           ///< final path is a separate op in the same probe).
};

/// One profiling micro-op. \c Slot selects a loop overlap region for the
/// OL* ops and is unused by the others.
struct ProbeOp {
  ProbeOpKind Kind;
  uint32_t Slot = 0;
  int64_t C0 = 0;
  int64_t C1 = 0;
};

/// An ordered list of micro-ops executed atomically when the owning Probe
/// instruction is reached.
struct ProbeProgram {
  std::vector<ProbeOp> Ops;
};

} // namespace olpp

#endif // OLPP_IR_PROBE_H
