//===--- Verifier.cpp - IR structural verification ---------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Module.h"

#include <unordered_set>

using namespace olpp;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(const Module &M, const Function &F,
                   std::vector<Diagnostic> &Diags)
      : M(M), F(F), Diags(Diags) {}

  void run() {
    if (F.numBlocks() == 0) {
      error("function has no blocks");
      return;
    }
    for (uint32_t I = 0; I < F.numBlocks(); ++I) {
      OwnBlocks.insert(F.block(I));
      if (F.block(I)->Id != I)
        error("block ids are stale; call renumberBlocks()");
    }
    bool HasRet = false;
    for (const auto &BB : F.blocks()) {
      checkBlock(*BB);
      if (BB->hasTerminator() && BB->isExit())
        HasRet = true;
    }
    if (!HasRet)
      error("function has no ret");
  }

private:
  void error(const std::string &Msg) {
    Diags.push_back(makeDiag(Severity::Error, "verify", F.Name, Msg));
  }
  void errorAt(const BasicBlock &BB, const std::string &Msg) {
    Diags.push_back(makeDiagAt(Severity::Error, "verify", F.Name, BB.Id,
                               BB.Name, Msg));
  }

  void checkReg(const BasicBlock &BB, Reg R, const char *Role) {
    if (R == NoReg || R < F.NumRegs)
      return;
    errorAt(BB, std::string(Role) + " register %" + std::to_string(R) +
                    " out of range (NumRegs=" + std::to_string(F.NumRegs) +
                    ")");
  }

  void checkTarget(const BasicBlock &BB, BasicBlock *T) {
    if (!T) {
      errorAt(BB, "null branch target");
      return;
    }
    if (!OwnBlocks.count(T))
      errorAt(BB, "branch target belongs to another function");
  }

  void checkBlock(const BasicBlock &BB) {
    if (!BB.hasTerminator()) {
      errorAt(BB, "missing terminator");
      return;
    }
    bool SawCall = false;
    for (size_t Idx = 0; Idx < BB.Instrs.size(); ++Idx) {
      const Instruction &I = BB.Instrs[Idx];
      bool IsLast = Idx + 1 == BB.Instrs.size();
      if (isTerminator(I.Op) && !IsLast) {
        errorAt(BB, "terminator in the middle of a block");
        return;
      }
      // A call must end its block (probes excepted): the instrumenters
      // and the path semantics rely on call sites being path-break
      // points with nothing after the call.
      if (SawCall && I.Op != Opcode::Probe && !isTerminator(I.Op)) {
        errorAt(BB, "instruction after a call; calls must end their block");
        return;
      }
      if (I.Op == Opcode::Call || I.Op == Opcode::CallInd)
        SawCall = true;
      checkInstr(BB, I);
    }
  }

  void checkInstr(const BasicBlock &BB, const Instruction &I) {
    switch (I.Op) {
    case Opcode::Const:
      mustHaveDst(BB, I);
      break;
    case Opcode::Move:
    case Opcode::Neg:
    case Opcode::Not:
      mustHaveDst(BB, I);
      mustHaveSrc0(BB, I);
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      mustHaveDst(BB, I);
      mustHaveSrc0(BB, I);
      if (I.Src1 == NoReg)
        errorAt(BB, "binary op without second operand");
      checkReg(BB, I.Src1, "source");
      break;
    case Opcode::LoadG:
      mustHaveDst(BB, I);
      checkGlobal(BB, I, /*WantArray=*/false);
      break;
    case Opcode::StoreG:
      mustHaveSrc0(BB, I);
      checkGlobal(BB, I, /*WantArray=*/false);
      break;
    case Opcode::LoadArr:
      mustHaveDst(BB, I);
      mustHaveSrc0(BB, I);
      checkGlobal(BB, I, /*WantArray=*/true);
      break;
    case Opcode::StoreArr:
      mustHaveSrc0(BB, I);
      if (I.Src1 == NoReg)
        errorAt(BB, "storearr without value operand");
      checkReg(BB, I.Src1, "source");
      checkGlobal(BB, I, /*WantArray=*/true);
      break;
    case Opcode::Call: {
      if (I.CalleeId >= M.numFunctions()) {
        errorAt(BB, "call to unknown function id " +
                        std::to_string(I.CalleeId));
        break;
      }
      const Function *Callee = M.function(I.CalleeId);
      if (I.Args.size() != Callee->NumParams)
        errorAt(BB, "call to '" + Callee->Name + "' with " +
                        std::to_string(I.Args.size()) + " args, expected " +
                        std::to_string(Callee->NumParams));
      for (Reg A : I.Args) {
        if (A == NoReg)
          errorAt(BB, "call argument is NoReg");
        checkReg(BB, A, "argument");
      }
      checkReg(BB, I.Dst, "destination");
      break;
    }
    case Opcode::CallInd:
      mustHaveSrc0(BB, I);
      for (Reg A : I.Args) {
        if (A == NoReg)
          errorAt(BB, "call argument is NoReg");
        checkReg(BB, A, "argument");
      }
      checkReg(BB, I.Dst, "destination");
      break;
    case Opcode::Ret:
      checkReg(BB, I.Src0, "return value");
      break;
    case Opcode::Br:
      checkTarget(BB, I.Target0);
      break;
    case Opcode::CondBr:
      mustHaveSrc0(BB, I);
      checkTarget(BB, I.Target0);
      checkTarget(BB, I.Target1);
      if (I.Target0 && I.Target0 == I.Target1)
        errorAt(BB, "condbr with identical targets; normalize to br");
      break;
    case Opcode::Probe:
      checkProbe(BB, I);
      break;
    }
  }

  void checkProbe(const BasicBlock &BB, const Instruction &I) {
    if (!I.ProbePayload || I.ProbePayload->Ops.empty()) {
      errorAt(BB, "probe without payload");
      return;
    }
    // Loop overlap ops index the frame's per-activation loop slot array;
    // an out-of-range slot would fault in the profiling runtime.
    for (const ProbeOp &Op : I.ProbePayload->Ops) {
      switch (Op.Kind) {
      case ProbeOpKind::OLDisarm:
      case ProbeOpKind::OLArm:
      case ProbeOpKind::OLAdd:
      case ProbeOpKind::OLPred:
      case ProbeOpKind::OLFlush:
        if (Op.Slot >= F.NumLoopSlots)
          errorAt(BB, "probe overlap op slot " + std::to_string(Op.Slot) +
                          " out of range (NumLoopSlots=" +
                          std::to_string(F.NumLoopSlots) + ")");
        break;
      default:
        break;
      }
    }
  }

  void mustHaveDst(const BasicBlock &BB, const Instruction &I) {
    if (I.Dst == NoReg)
      errorAt(BB, "instruction requires a destination register");
    checkReg(BB, I.Dst, "destination");
  }
  void mustHaveSrc0(const BasicBlock &BB, const Instruction &I) {
    if (I.Src0 == NoReg)
      errorAt(BB, "instruction requires a source register");
    checkReg(BB, I.Src0, "source");
  }
  void checkGlobal(const BasicBlock &BB, const Instruction &I,
                   bool WantArray) {
    if (I.GlobalId >= M.globals().size()) {
      errorAt(BB, "unknown global @" + std::to_string(I.GlobalId));
      return;
    }
    bool IsArray = M.globals()[I.GlobalId].Size > 1;
    if (IsArray != WantArray)
      errorAt(BB, WantArray ? "array access to scalar global"
                            : "scalar access to array global");
  }

  const Module &M;
  const Function &F;
  std::vector<Diagnostic> &Diags;
  std::unordered_set<const BasicBlock *> OwnBlocks;
};

} // namespace

void olpp::verifyFunction(const Module &M, const Function &F,
                          std::vector<Diagnostic> &Diags) {
  FunctionVerifier(M, F, Diags).run();
}

std::vector<Diagnostic> olpp::verifyModuleDiags(const Module &M) {
  std::vector<Diagnostic> Diags;
  for (const auto &F : M.functions())
    verifyFunction(M, *F, Diags);
  return Diags;
}

std::string olpp::verifierLegacyText(const Diagnostic &D) {
  std::string Out = "function '" + D.Loc.Function + "': ";
  if (D.Loc.hasBlock())
    Out +=
        "block ^" + std::to_string(D.Loc.Block) + " (" + D.Loc.BlockName +
        "): ";
  Out += D.Message;
  return Out;
}

void olpp::verifyFunction(const Module &M, const Function &F,
                          std::vector<std::string> &Errors) {
  std::vector<Diagnostic> Diags;
  verifyFunction(M, F, Diags);
  for (const Diagnostic &D : Diags)
    Errors.push_back(verifierLegacyText(D));
}

std::vector<std::string> olpp::verifyModule(const Module &M) {
  std::vector<std::string> Errors;
  for (const Diagnostic &D : verifyModuleDiags(M))
    Errors.push_back(verifierLegacyText(D));
  return Errors;
}
