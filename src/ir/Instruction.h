//===--- Instruction.h - OLPP IR instruction set ----------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OLPP IR is a conventional three-address, register-based CFG IR:
/// every value is a 64-bit integer, registers are per-activation frame
/// slots, globals are module-level scalars or fixed-size arrays. There is
/// deliberately no SSA form: the profiling algorithms only care about the
/// shape of the CFG, and a mutable register IR keeps the interpreter and
/// the frontend lowering simple.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_IR_INSTRUCTION_H
#define OLPP_IR_INSTRUCTION_H

#include "ir/Probe.h"

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

namespace olpp {

class BasicBlock;

/// A frame register index.
using Reg = uint32_t;

/// Sentinel for "no register" (void call results, void returns).
inline constexpr Reg NoReg = std::numeric_limits<Reg>::max();

/// Instruction opcodes. Binary operators read Src0/Src1 and write Dst.
enum class Opcode : uint8_t {
  Const, ///< Dst = Imm
  Move,  ///< Dst = Src0
  Add,   ///< Dst = Src0 + Src1 (wrapping)
  Sub,
  Mul,
  Div, ///< traps on divide by zero / INT64_MIN / -1
  Mod, ///< traps like Div
  And,
  Or,
  Xor,
  Shl, ///< shift amount masked to [0, 63]
  Shr, ///< arithmetic shift, amount masked to [0, 63]
  CmpEq, ///< Dst = (Src0 == Src1) ? 1 : 0
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  Neg,      ///< Dst = -Src0 (wrapping)
  Not,      ///< Dst = (Src0 == 0) ? 1 : 0
  LoadG,    ///< Dst = globals[GlobalId]
  StoreG,   ///< globals[GlobalId] = Src0
  LoadArr,  ///< Dst = arrays[GlobalId][Src0]; traps on out-of-bounds
  StoreArr, ///< arrays[GlobalId][Src0] = Src1; traps on out-of-bounds
  Call,     ///< Dst(optional) = call CalleeId(Args...)
  CallInd,  ///< Dst(optional) = call through function id in Src0(Args...);
            ///< traps on an invalid id or an arity mismatch
  Ret,      ///< return Src0 (NoReg for void); terminator
  Br,       ///< branch to Target0; terminator
  CondBr,   ///< Src0 != 0 ? Target0 : Target1; terminator
  Probe,    ///< profiling probe; executes ProbePayload
};

/// Returns true if \p Op ends a basic block.
inline bool isTerminator(Opcode Op) {
  return Op == Opcode::Ret || Op == Opcode::Br || Op == Opcode::CondBr;
}

/// A single IR instruction. Which fields are meaningful depends on the
/// opcode; see the Opcode documentation.
struct Instruction {
  Opcode Op;
  Reg Dst = NoReg;
  Reg Src0 = NoReg;
  Reg Src1 = NoReg;
  int64_t Imm = 0;
  uint32_t GlobalId = 0;
  uint32_t CalleeId = 0;
  std::vector<Reg> Args;
  BasicBlock *Target0 = nullptr;
  BasicBlock *Target1 = nullptr;
  /// Shared so that cloning a module is cheap; probe programs are immutable
  /// once attached.
  std::shared_ptr<const ProbeProgram> ProbePayload;
};

} // namespace olpp

#endif // OLPP_IR_INSTRUCTION_H
