//===--- BasicBlock.h - OLPP IR basic block ---------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block: a straight-line instruction list ending in exactly one
/// terminator. Blocks are owned by their Function; Id is the block's index
/// in the function's block list (kept fresh by Function::renumberBlocks).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_IR_BASICBLOCK_H
#define OLPP_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <cassert>
#include <string>
#include <vector>

namespace olpp {

class BasicBlock {
public:
  explicit BasicBlock(std::string Name) : Name(std::move(Name)) {}

  /// Stable-within-a-numbering block index; see Function::renumberBlocks.
  uint32_t Id = 0;
  std::string Name;
  std::vector<Instruction> Instrs;

  /// Returns true once a terminator has been appended.
  bool hasTerminator() const {
    return !Instrs.empty() && isTerminator(Instrs.back().Op);
  }

  /// The block's terminator; the block must be complete.
  const Instruction &terminator() const {
    assert(hasTerminator() && "block has no terminator");
    return Instrs.back();
  }
  Instruction &terminator() {
    assert(hasTerminator() && "block has no terminator");
    return Instrs.back();
  }

  /// Successor blocks in terminator order (true target first for CondBr).
  /// Returns an empty vector for Ret.
  std::vector<BasicBlock *> successors() const {
    const Instruction &T = terminator();
    switch (T.Op) {
    case Opcode::Ret:
      return {};
    case Opcode::Br:
      return {T.Target0};
    case Opcode::CondBr:
      return {T.Target0, T.Target1};
    default:
      assert(false && "non-terminator at end of block");
      return {};
    }
  }

  /// True if the block ends in a conditional branch. The profiling papers
  /// call such blocks "predicate blocks".
  bool isPredicate() const { return terminator().Op == Opcode::CondBr; }

  /// True if the block ends the function.
  bool isExit() const { return terminator().Op == Opcode::Ret; }

  /// Replaces every branch-target reference to \p From with \p To.
  void replaceSuccessor(BasicBlock *From, BasicBlock *To) {
    Instruction &T = terminator();
    if (T.Target0 == From)
      T.Target0 = To;
    if (T.Target1 == From)
      T.Target1 = To;
  }
};

} // namespace olpp

#endif // OLPP_IR_BASICBLOCK_H
