//===--- Function.h - OLPP IR function --------------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function owns its basic blocks (entry is block 0 in the block list),
/// declares how many frame registers it uses, and carries the metadata the
/// instrumenters attach (number of overlap-region slots).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_IR_FUNCTION_H
#define OLPP_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <vector>

namespace olpp {

class Function {
public:
  Function(std::string Name, uint32_t NumParams)
      : Name(std::move(Name)), NumParams(NumParams), NumRegs(NumParams) {}

  std::string Name;
  /// Module-wide function index; assigned by Module::addFunction.
  uint32_t Id = 0;
  /// Parameters arrive in registers [0, NumParams).
  uint32_t NumParams;
  /// Total frame registers (params + locals + temporaries).
  uint32_t NumRegs;
  /// Number of loop-overlap register slots the instrumentation uses; set by
  /// the loop overlap instrumenter, zero otherwise.
  uint32_t NumLoopSlots = 0;

  /// Appends a new block and returns it. The first block created is the
  /// entry block.
  BasicBlock *addBlock(std::string BlockName) {
    Blocks.push_back(std::make_unique<BasicBlock>(std::move(BlockName)));
    Blocks.back()->Id = static_cast<uint32_t>(Blocks.size() - 1);
    return Blocks.back().get();
  }

  /// Allocates a fresh frame register.
  Reg newReg() { return NumRegs++; }

  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  size_t numBlocks() const { return Blocks.size(); }
  BasicBlock *block(uint32_t Idx) const { return Blocks[Idx].get(); }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  /// Reassigns Block::Id to match list positions. Must be called after
  /// inserting blocks (e.g. by edge splitting) and before running analyses.
  void renumberBlocks() {
    for (uint32_t I = 0; I < Blocks.size(); ++I)
      Blocks[I]->Id = I;
  }

  /// Deep-copies this function; branch targets are remapped to the clone's
  /// blocks. The clone keeps the same Id.
  std::unique_ptr<Function> clone() const;

  /// Erases every block not reachable from the entry and renumbers the
  /// rest. Safe whenever the function verifies: branch targets of reachable
  /// blocks point at reachable blocks by definition, so no live reference
  /// can dangle. Used by transforms that bypass blocks (e.g. straight-line
  /// block merging in the optimizer) and leave the bypassed originals
  /// unreachable. Returns the number of blocks removed.
  size_t removeUnreachableBlocks();

private:
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace olpp

#endif // OLPP_IR_FUNCTION_H
