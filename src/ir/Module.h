//===--- Module.h - OLPP IR module ------------------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A module owns functions and global variables. Globals are zero-initialised
/// 64-bit scalars (Size == 1) or fixed-size arrays (Size > 1).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_IR_MODULE_H
#define OLPP_IR_MODULE_H

#include "ir/Function.h"

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace olpp {

/// A module-level variable; scalar when Size == 1, array otherwise.
struct GlobalVar {
  std::string Name;
  uint64_t Size = 1;
};

class Module {
public:
  /// Creates and registers a function; returns a stable pointer.
  Function *addFunction(std::string Name, uint32_t NumParams) {
    Functions.push_back(std::make_unique<Function>(std::move(Name), NumParams));
    Functions.back()->Id = static_cast<uint32_t>(Functions.size() - 1);
    return Functions.back().get();
  }

  /// Registers a global; returns its id.
  uint32_t addGlobal(std::string Name, uint64_t Size = 1) {
    Globals.push_back({std::move(Name), Size});
    return static_cast<uint32_t>(Globals.size() - 1);
  }

  /// Finds a function by name; returns nullptr if absent.
  Function *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }

  size_t numFunctions() const { return Functions.size(); }
  Function *function(uint32_t Id) const { return Functions[Id].get(); }

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }
  const std::vector<GlobalVar> &globals() const { return Globals; }

  /// Deep-copies the whole module (used to instrument one copy while keeping
  /// the pristine one for baseline runs).
  std::unique_ptr<Module> clone() const;

  /// Process-unique module identity, assigned at construction and never
  /// reused (clones get their own). Lets caches key per-object fast paths
  /// (interp/PlanCache.h) without the stale-pointer hazard of keying on
  /// the address of a destroyed-then-reallocated module.
  uint64_t uid() const { return Uid; }

private:
  static uint64_t nextUid() {
    static std::atomic<uint64_t> Counter{1};
    return Counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<GlobalVar> Globals;
  uint64_t Uid = nextUid();
};

} // namespace olpp

#endif // OLPP_IR_MODULE_H
