//===--- Printer.h - Textual IR printing ------------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders functions and modules as readable text for debugging, golden
/// tests and the example tools.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_IR_PRINTER_H
#define OLPP_IR_PRINTER_H

#include <string>

namespace olpp {

class Function;
class Module;
struct Instruction;

/// Renders one instruction (without a trailing newline).
std::string printInstruction(const Instruction &I, const Module *M = nullptr);

/// Renders a whole function.
std::string printFunction(const Function &F, const Module *M = nullptr);

/// Renders a whole module.
std::string printModule(const Module &M);

} // namespace olpp

#endif // OLPP_IR_PRINTER_H
