//===--- Printer.cpp - Textual IR printing ----------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/Module.h"

using namespace olpp;

static const char *opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
    return "const";
  case Opcode::Move:
    return "mov";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Mod:
    return "mod";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::CmpGt:
    return "cmpgt";
  case Opcode::CmpGe:
    return "cmpge";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::LoadG:
    return "loadg";
  case Opcode::StoreG:
    return "storeg";
  case Opcode::LoadArr:
    return "loadarr";
  case Opcode::StoreArr:
    return "storearr";
  case Opcode::Call:
    return "call";
  case Opcode::CallInd:
    return "callind";
  case Opcode::Ret:
    return "ret";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Probe:
    return "probe";
  }
  return "?";
}

static const char *probeOpName(ProbeOpKind K) {
  switch (K) {
  case ProbeOpKind::BLSet:
    return "blset";
  case ProbeOpKind::BLAdd:
    return "bladd";
  case ProbeOpKind::BLCount:
    return "blcount";
  case ProbeOpKind::OLDisarm:
    return "oldisarm";
  case ProbeOpKind::OLArm:
    return "olarm";
  case ProbeOpKind::OLAdd:
    return "oladd";
  case ProbeOpKind::OLPred:
    return "olpred";
  case ProbeOpKind::OLFlush:
    return "olflush";
  case ProbeOpKind::IPCall:
    return "ipcall";
  case ProbeOpKind::IPArmII:
    return "iparm2";
  case ProbeOpKind::IPAddII:
    return "ipadd2";
  case ProbeOpKind::IPPredII:
    return "ippred2";
  case ProbeOpKind::IPFlushII:
    return "ipflush2";
  case ProbeOpKind::IPEnter:
    return "ipenter";
  case ProbeOpKind::IPAddI:
    return "ipadd1";
  case ProbeOpKind::IPPredI:
    return "ippred1";
  case ProbeOpKind::IPFlushI:
    return "ipflush1";
  case ProbeOpKind::IPRet:
    return "ipret";
  }
  return "?";
}

static std::string regName(Reg R) {
  if (R == NoReg)
    return "_";
  return "%" + std::to_string(R);
}

std::string olpp::printInstruction(const Instruction &I, const Module *M) {
  std::string Out = opcodeName(I.Op);
  auto Block = [](const BasicBlock *B) {
    return "^" + std::to_string(B->Id) + "(" + B->Name + ")";
  };
  switch (I.Op) {
  case Opcode::Const:
    Out += " " + regName(I.Dst) + ", " + std::to_string(I.Imm);
    break;
  case Opcode::Move:
  case Opcode::Neg:
  case Opcode::Not:
    Out += " " + regName(I.Dst) + ", " + regName(I.Src0);
    break;
  case Opcode::LoadG:
    Out += " " + regName(I.Dst) + ", @" + std::to_string(I.GlobalId);
    break;
  case Opcode::StoreG:
    Out += " @" + std::to_string(I.GlobalId) + ", " + regName(I.Src0);
    break;
  case Opcode::LoadArr:
    Out += " " + regName(I.Dst) + ", @" + std::to_string(I.GlobalId) + "[" +
           regName(I.Src0) + "]";
    break;
  case Opcode::StoreArr:
    Out += " @" + std::to_string(I.GlobalId) + "[" + regName(I.Src0) + "], " +
           regName(I.Src1);
    break;
  case Opcode::CallInd: {
    Out += " " + regName(I.Dst) + ", *" + regName(I.Src0) + "(";
    for (size_t A = 0; A < I.Args.size(); ++A) {
      if (A)
        Out += ", ";
      Out += regName(I.Args[A]);
    }
    Out += ")";
    break;
  }
  case Opcode::Call: {
    Out += " " + regName(I.Dst) + ", ";
    if (M && I.CalleeId < M->numFunctions())
      Out += M->function(I.CalleeId)->Name;
    else
      Out += "fn" + std::to_string(I.CalleeId);
    Out += "(";
    for (size_t A = 0; A < I.Args.size(); ++A) {
      if (A)
        Out += ", ";
      Out += regName(I.Args[A]);
    }
    Out += ")";
    break;
  }
  case Opcode::Ret:
    if (I.Src0 != NoReg)
      Out += " " + regName(I.Src0);
    break;
  case Opcode::Br:
    Out += " " + Block(I.Target0);
    break;
  case Opcode::CondBr:
    Out += " " + regName(I.Src0) + ", " + Block(I.Target0) + ", " +
           Block(I.Target1);
    break;
  case Opcode::Probe: {
    Out += " {";
    bool First = true;
    for (const ProbeOp &P : I.ProbePayload->Ops) {
      if (!First)
        Out += "; ";
      First = false;
      Out += probeOpName(P.Kind);
      Out += " s" + std::to_string(P.Slot) + "," + std::to_string(P.C0) + "," +
             std::to_string(P.C1);
    }
    Out += "}";
    break;
  }
  default:
    // Binary operators.
    Out += " " + regName(I.Dst) + ", " + regName(I.Src0) + ", " +
           regName(I.Src1);
    break;
  }
  return Out;
}

std::string olpp::printFunction(const Function &F, const Module *M) {
  std::string Out =
      "func " + F.Name + "(" + std::to_string(F.NumParams) + " params, " +
      std::to_string(F.NumRegs) + " regs)\n";
  for (const auto &BB : F.blocks()) {
    Out += "^" + std::to_string(BB->Id) + " " + BB->Name + ":\n";
    for (const Instruction &I : BB->Instrs)
      Out += "  " + printInstruction(I, M) + "\n";
  }
  return Out;
}

std::string olpp::printModule(const Module &M) {
  std::string Out;
  for (size_t G = 0; G < M.globals().size(); ++G) {
    const GlobalVar &GV = M.globals()[G];
    Out += "global @" + std::to_string(G) + " " + GV.Name;
    if (GV.Size != 1)
      Out += "[" + std::to_string(GV.Size) + "]";
    Out += "\n";
  }
  for (const auto &F : M.functions())
    Out += "\n" + printFunction(*F, &M);
  return Out;
}
