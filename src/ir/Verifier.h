//===--- Verifier.h - IR structural verification ---------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural checks run after lowering, generation and instrumentation.
/// Problems are reported as structured Diagnostics (pass "verify",
/// severity error) instead of asserting so that tests can exercise the
/// failure paths. A string-based compatibility API renders the same
/// diagnostics in the historical "function 'f': ..." format.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_IR_VERIFIER_H
#define OLPP_IR_VERIFIER_H

#include "support/Diagnostic.h"

#include <string>
#include <vector>

namespace olpp {

class Module;
class Function;

/// Verifies one function within \p M; appends diagnostics to \p Diags.
void verifyFunction(const Module &M, const Function &F,
                    std::vector<Diagnostic> &Diags);

/// Verifies the whole module. Returns the findings; empty means the module
/// is well-formed.
std::vector<Diagnostic> verifyModuleDiags(const Module &M);

// --- string compatibility shim -------------------------------------------

/// Renders \p D in the historical verifier format
/// ("function 'f': block ^1 (name): message").
std::string verifierLegacyText(const Diagnostic &D);

/// Verifies one function; appends legacy-format strings to \p Errors.
void verifyFunction(const Module &M, const Function &F,
                    std::vector<std::string> &Errors);

/// Verifies the whole module; returns legacy-format strings.
std::vector<std::string> verifyModule(const Module &M);

} // namespace olpp

#endif // OLPP_IR_VERIFIER_H
