//===--- Verifier.h - IR structural verification ---------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural checks run after lowering, generation and instrumentation.
/// Returns human-readable diagnostics instead of asserting so that tests can
/// exercise the failure paths.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_IR_VERIFIER_H
#define OLPP_IR_VERIFIER_H

#include <string>
#include <vector>

namespace olpp {

class Module;
class Function;

/// Verifies one function within \p M; appends diagnostics to \p Errors.
void verifyFunction(const Module &M, const Function &F,
                    std::vector<std::string> &Errors);

/// Verifies the whole module. Returns the list of problems; empty means the
/// module is well-formed.
std::vector<std::string> verifyModule(const Module &M);

} // namespace olpp

#endif // OLPP_IR_VERIFIER_H
