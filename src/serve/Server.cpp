#include "serve/Server.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace olpp;
using namespace olpp::serve;

namespace {

bool setNonBlocking(int Fd) {
  const int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

} // namespace

Server::Server(ShardStore &Store, TaskPool &Pool, uint16_t Port)
    : Store(Store), Pool(Pool), RequestedPort(Port) {}

Server::~Server() { stop(); }

bool Server::start(std::string &Err) {
  ListenFd = socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = std::string("socket: ") + strerror(errno);
    return false;
  }
  const int One = 1;
  setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_ANY);
  Addr.sin_port = htons(RequestedPort);
  if (bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = std::string("bind: ") + strerror(errno);
    close(ListenFd);
    ListenFd = -1;
    return false;
  }
  socklen_t Len = sizeof(Addr);
  getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len);
  BoundPort = ntohs(Addr.sin_port);
  if (listen(ListenFd, 512) != 0) {
    Err = std::string("listen: ") + strerror(errno);
    close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (!setNonBlocking(ListenFd) || pipe(WakeFds) != 0 ||
      !setNonBlocking(WakeFds[0]) || !setNonBlocking(WakeFds[1])) {
    Err = "failed to set up nonblocking I/O";
    close(ListenFd);
    ListenFd = -1;
    return false;
  }
  Stop.store(false);
  IoThread = std::thread([this] { ioLoop(); });
  return true;
}

void Server::stop() {
  if (ListenFd < 0 && !IoThread.joinable())
    return;
  Stop.store(true);
  wake();
  if (IoThread.joinable())
    IoThread.join();
  // Wait out in-flight drain tasks (they hold shared_ptrs to connections
  // but never touch fds), then release everything.
  for (;;) {
    bool AnyBusy = false;
    {
      std::lock_guard<std::mutex> L(ConnsMu);
      for (const auto &C : Conns) {
        std::lock_guard<std::mutex> CL(C->Mu);
        AnyBusy |= C->Busy;
      }
    }
    if (!AnyBusy)
      break;
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> L(ConnsMu);
    for (const auto &C : Conns)
      close(C->Fd);
    Conns.clear();
  }
  if (ListenFd >= 0) {
    close(ListenFd);
    ListenFd = -1;
  }
  for (int &Fd : WakeFds)
    if (Fd >= 0) {
      close(Fd);
      Fd = -1;
    }
}

size_t Server::connectionCount() const {
  std::lock_guard<std::mutex> L(ConnsMu);
  return Conns.size();
}

void Server::wake() {
  if (WakeFds[1] >= 0) {
    const char B = 1;
    [[maybe_unused]] ssize_t N = write(WakeFds[1], &B, 1);
  }
}

void Server::drainConn(const std::shared_ptr<Conn> &C) {
  for (;;) {
    std::string Take;
    {
      std::lock_guard<std::mutex> L(C->Mu);
      if (C->In.empty() || C->Dead) {
        C->Busy = false;
        break;
      }
      Take.swap(C->In);
    }
    GlobalBuffered.fetch_sub(Take.size(), std::memory_order_relaxed);
    std::string Reply;
    const bool Keep = C->Session.consume(Take, Reply);
    const bool Mid = C->Session.midFrame();
    {
      std::lock_guard<std::mutex> L(C->Mu);
      C->Out += Reply;
      C->SessMid = Mid;
      if (!Keep)
        C->CloseAfterFlush = true;
    }
  }
  wake(); // re-evaluate poll interest (POLLOUT, close, unpause)
}

void Server::ioLoop() {
  const auto Timeout = std::chrono::milliseconds(
      Store.config().SlowClientTimeoutMs ? Store.config().SlowClientTimeoutMs
                                         : 0);
  std::vector<pollfd> Pfds;
  std::vector<std::shared_ptr<Conn>> Polled;
  while (!Stop.load(std::memory_order_relaxed)) {
    Pfds.clear();
    Polled.clear();
    const bool GlobalFull =
        GlobalBuffered.load(std::memory_order_relaxed) >=
        Store.config().GlobalBudget;
    Pfds.push_back({ListenFd, short(GlobalFull ? 0 : POLLIN), 0});
    Pfds.push_back({WakeFds[0], POLLIN, 0});
    {
      std::lock_guard<std::mutex> L(ConnsMu);
      for (const auto &C : Conns) {
        short Ev = 0;
        {
          std::lock_guard<std::mutex> CL(C->Mu);
          const bool Paused =
              GlobalFull || C->In.size() >= Store.config().PerConnBudget;
          if (!C->Dead && !C->CloseAfterFlush && !Paused)
            Ev |= POLLIN;
          if (!C->Dead && !C->Out.empty())
            Ev |= POLLOUT;
        }
        Pfds.push_back({C->Fd, Ev, 0});
        Polled.push_back(C);
      }
    }
    poll(Pfds.data(), Pfds.size(), 100);
    if (Stop.load(std::memory_order_relaxed))
      break;

    // Drain wake pipe.
    if (Pfds[1].revents & POLLIN) {
      char Buf[256];
      while (read(WakeFds[0], Buf, sizeof(Buf)) > 0) {
      }
    }

    // Accept.
    if (Pfds[0].revents & POLLIN) {
      for (;;) {
        const int Fd = accept(ListenFd, nullptr, nullptr);
        if (Fd < 0)
          break;
        if (!setNonBlocking(Fd)) {
          close(Fd);
          continue;
        }
        const int One = 1;
        setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
        auto C = std::make_shared<Conn>(Store, Fd);
        C->LastActive = std::chrono::steady_clock::now();
        std::lock_guard<std::mutex> L(ConnsMu);
        Conns.push_back(std::move(C));
      }
    }

    // Per-connection I/O.
    const auto Now = std::chrono::steady_clock::now();
    for (size_t I = 0; I < Polled.size(); ++I) {
      const auto &C = Polled[I];
      const short Re = Pfds[I + 2].revents;
      if (Re & (POLLERR | POLLNVAL)) {
        std::lock_guard<std::mutex> CL(C->Mu);
        C->Dead = true;
        continue;
      }
      if (Re & POLLIN) {
        char Buf[64 * 1024];
        for (;;) {
          const ssize_t N = read(C->Fd, Buf, sizeof(Buf));
          if (N > 0) {
            bool Submit = false;
            bool OverBudget = false;
            {
              std::lock_guard<std::mutex> CL(C->Mu);
              C->In.append(Buf, size_t(N));
              C->LastActive = Now;
              if (!C->Busy && !C->Dead) {
                C->Busy = true;
                Submit = true;
              }
              OverBudget = C->In.size() >= Store.config().PerConnBudget;
            }
            GlobalBuffered.fetch_add(uint64_t(N), std::memory_order_relaxed);
            if (Submit) {
              auto CC = C;
              Pool.submit([this, CC] { drainConn(CC); });
            }
            if (OverBudget)
              break; // stop reading this connection until the pool drains
            continue;
          }
          if (N == 0) {
            // Peer closed. Fully received frames still drain; a partial
            // frame in flight is simply discarded — it never reached the
            // store. Queued replies are flushed, then the fd closes.
            bool Submit = false;
            {
              std::lock_guard<std::mutex> CL(C->Mu);
              C->CloseAfterFlush = true;
              if (!C->Busy && !C->In.empty() && !C->Dead) {
                C->Busy = true;
                Submit = true;
              }
            }
            if (Submit) {
              auto CC = C;
              Pool.submit([this, CC] { drainConn(CC); });
            }
          }
          break; // EOF, EAGAIN or error
        }
      } else if ((Re & POLLHUP) && !(Re & POLLOUT)) {
        std::lock_guard<std::mutex> CL(C->Mu);
        C->CloseAfterFlush = true;
      }
      if (Re & POLLOUT) {
        std::string Chunk;
        {
          std::lock_guard<std::mutex> CL(C->Mu);
          Chunk = C->Out;
        }
        if (!Chunk.empty()) {
          const ssize_t N = write(C->Fd, Chunk.data(), Chunk.size());
          std::lock_guard<std::mutex> CL(C->Mu);
          if (N > 0) {
            C->Out.erase(0, size_t(N));
            C->LastActive = Now;
          } else if (N < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR) {
            C->Dead = true;
          }
        }
      }
    }

    // Removal + slow-client sweep.
    {
      std::lock_guard<std::mutex> L(ConnsMu);
      for (size_t I = 0; I < Conns.size();) {
        const auto &C = Conns[I];
        bool Remove = false;
        {
          std::lock_guard<std::mutex> CL(C->Mu);
          if (Timeout.count() > 0 && !C->Dead &&
              (C->SessMid || !C->Out.empty() || !C->In.empty()) &&
              Now - C->LastActive > Timeout)
            C->Dead = true; // slow client: stuck mid-frame or not draining
          Remove = C->Dead || (C->CloseAfterFlush && !C->Busy &&
                               C->In.empty() && C->Out.empty());
          if (Remove && C->Busy)
            Remove = false; // let the drain task finish first
        }
        if (Remove) {
          // Return any undrained bytes to the global budget.
          GlobalBuffered.fetch_sub(C->In.size(), std::memory_order_relaxed);
          close(C->Fd);
          Conns.erase(Conns.begin() + long(I));
        } else {
          ++I;
        }
      }
    }
  }
}
