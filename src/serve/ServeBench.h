//===- ServeBench.h - fleet upload load generator -------------------------===//
//
// Simulates an upload fleet against a running `olpp serve` daemon: N client
// connections each stream uploads from a derived artifact corpus and wait
// for the ack (one request in flight per client, like a real fleet
// uploader), recording per-upload round-trip latency. Optionally finishes
// with a SNAPSHOT and proves the bit-identity contract: the snapshot must
// equal the offline fold of exactly the uploads acked with tag <= epoch.
//
// Used by `olpp serve-bench` and by bench/perf_serve (which turns the
// latency samples into the committed BENCH_serve.json).
//
//===----------------------------------------------------------------------===//
#ifndef OLPP_SERVE_SERVEBENCH_H
#define OLPP_SERVE_SERVEBENCH_H

#include <cstdint>
#include <string>
#include <vector>

namespace olpp::serve {

struct FleetOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  unsigned Clients = 16;
  unsigned UploadsPerClient = 32;
  /// Request a final snapshot and check it bit-identical to the offline
  /// fold of the acked uploads.
  bool Verify = true;
};

struct FleetReport {
  uint64_t Uploads = 0;  ///< acked
  uint64_t Rejected = 0; ///< Err replies to uploads
  uint64_t Bytes = 0;    ///< payload bytes of acked uploads
  double WallSeconds = 0.0;
  /// Per-acked-upload round-trip latency, microseconds (unsorted).
  std::vector<double> LatenciesUs;
  uint64_t MaxAckTag = 0;
  // Filled when FleetOptions::Verify:
  uint64_t SnapshotEpoch = 0;
  uint64_t Fingerprint = 0;
  uint64_t SnapshotBytes = 0;
  bool BitIdentity = false;
};

/// Runs the fleet against \p Opts.Host:Port uploading from \p Corpus
/// (serialized .olpp artifacts; clients stride through it round-robin).
/// Returns false with \p Err on connection/protocol failure or a failed
/// bit-identity check.
bool runUploadFleet(const FleetOptions &Opts,
                    const std::vector<std::string> &Corpus, FleetReport &Out,
                    std::string &Err);

/// Sorts a copy of \p Samples and returns the \p P percentile (0..100,
/// nearest-rank). 0.0 when empty.
double percentileUs(const std::vector<double> &Samples, double P);

} // namespace olpp::serve

#endif // OLPP_SERVE_SERVEBENCH_H
