#include "serve/ShardStore.h"
#include "profdata/Merge.h"

#include <algorithm>

using namespace olpp;
using namespace olpp::serve;

ShardStore::ShardStore(const ServeConfig &Cfg) : Cfg(Cfg) {
  const uint32_t N = std::max(1u, Cfg.Shards);
  ShardsV.reserve(N);
  for (uint32_t I = 0; I < N; ++I)
    ShardsV.push_back(std::make_unique<Shard>());
  FaultArmed.store(Cfg.FaultDropFold, std::memory_order_relaxed);
}

static std::string firstError(const std::vector<Diagnostic> &Diags) {
  for (const Diagnostic &D : Diags)
    if (D.Sev == Severity::Error)
      return D.Message;
  return Diags.empty() ? std::string("rejected") : Diags.front().Message;
}

UploadResult ShardStore::upload(std::string_view Bytes) {
  // Validate before any lock: a malformed payload is rejected wholesale by
  // the checked reader and can never reach a shard.
  ProfileArtifact A;
  std::vector<Diagnostic> Diags;
  if (!readProfileArtifactView(Bytes, A, Diags)) {
    Stats.UploadsRejected.fetch_add(1, std::memory_order_relaxed);
    return {UploadStatus::Malformed, 0, 0, firstError(Diags)};
  }

  // FaultDropFold defect switch (fuzz oracle 11 mutation test): ack the
  // first upload without folding it — the snapshot then disagrees with the
  // offline fold of the acked set, which the oracle must catch.
  if (FaultArmed.exchange(false, std::memory_order_relaxed)) {
    Stats.UploadsAcked.fetch_add(1, std::memory_order_relaxed);
    Stats.BytesIngested.fetch_add(Bytes.size(), std::memory_order_relaxed);
    return {UploadStatus::Ok, Epoch.load(), A.Fingerprint, ""};
  }

  Shard &Sh = shardFor(A.Fingerprint);
  uint64_t Tag = 0;
  {
    std::lock_guard<std::mutex> L(Sh.Mu);
    // The tag is read under the shard lock: a snapshot bumps the epoch
    // before visiting any shard, so a fold that lands after the visit
    // necessarily observes the bumped value and stays out of snapshot E.
    Tag = Epoch.load();
    auto It = Sh.Entries.find(A.Fingerprint);
    if (It == Sh.Entries.end()) {
      Entry E;
      E.Hist = makeEmptyLike(A);
      E.Cur = makeEmptyLike(A);
      std::vector<Diagnostic> MDiags;
      if (!mergeArtifacts(E.Cur, A, MDiags)) {
        Stats.UploadsRejected.fetch_add(1, std::memory_order_relaxed);
        return {UploadStatus::Incompatible, 0, 0, firstError(MDiags)};
      }
      E.CurTag = Tag;
      E.HasCur = true;
      Sh.Entries.emplace(A.Fingerprint, std::move(E));
    } else {
      Entry &E = It->second;
      if (E.HasCur && E.CurTag != Tag) {
        // The open accumulator predates the current epoch: seal it so the
        // fold below lands with today's tag. Same identity, cannot fail.
        std::vector<Diagnostic> SDiags;
        mergeArtifacts(E.Hist, E.Cur, SDiags);
        E.Cur = ProfileArtifact();
        E.HasCur = false;
      }
      if (!E.HasCur) {
        // Commit Cur only after the merge succeeds, so an incompatible
        // upload leaves the entry byte-for-byte untouched.
        ProfileArtifact C = makeEmptyLike(E.Hist);
        std::vector<Diagnostic> MDiags;
        if (!mergeArtifacts(C, A, MDiags)) {
          Stats.UploadsRejected.fetch_add(1, std::memory_order_relaxed);
          return {UploadStatus::Incompatible, 0, 0, firstError(MDiags)};
        }
        E.Cur = std::move(C);
        E.CurTag = Tag;
        E.HasCur = true;
      } else {
        std::vector<Diagnostic> MDiags;
        if (!mergeArtifacts(E.Cur, A, MDiags)) {
          Stats.UploadsRejected.fetch_add(1, std::memory_order_relaxed);
          return {UploadStatus::Incompatible, 0, 0, firstError(MDiags)};
        }
      }
    }
  }
  Stats.UploadsAcked.fetch_add(1, std::memory_order_relaxed);
  Stats.BytesIngested.fetch_add(Bytes.size(), std::memory_order_relaxed);
  return {UploadStatus::Ok, Tag, A.Fingerprint, ""};
}

std::vector<uint64_t> ShardStore::fingerprints() const {
  std::vector<uint64_t> Out;
  for (const auto &ShPtr : ShardsV) {
    std::lock_guard<std::mutex> L(ShPtr->Mu);
    for (const auto &KV : ShPtr->Entries)
      Out.push_back(KV.first);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

bool ShardStore::snapshot(bool HaveFp, uint64_t Fp, uint64_t &EpochOut,
                          uint64_t &FingerprintOut, std::string &Out,
                          std::string &Error) {
  std::lock_guard<std::mutex> SL(SnapMu);
  if (!HaveFp) {
    std::vector<uint64_t> Fps = fingerprints();
    if (Fps.empty()) {
      Error = "store holds no artifacts";
      return false;
    }
    if (Fps.size() > 1) {
      Error = "store holds " + std::to_string(Fps.size()) +
              " fingerprints; pass a selector";
      return false;
    }
    Fp = Fps.front();
  }

  // Publish snapshot id E = the pre-increment epoch. Every fold from here
  // on tags itself E+1 (or later) and is excluded below.
  const uint64_t E = Epoch.fetch_add(1);

  ProfileArtifact Snap;
  {
    Shard &Sh = shardFor(Fp);
    std::lock_guard<std::mutex> L(Sh.Mu);
    auto It = Sh.Entries.find(Fp);
    if (It == Sh.Entries.end()) {
      Error = "no artifacts for requested fingerprint";
      return false;
    }
    Entry &Ent = It->second;
    if (Ent.HasCur && Ent.CurTag <= E) {
      std::vector<Diagnostic> SDiags;
      mergeArtifacts(Ent.Hist, Ent.Cur, SDiags);
      Ent.Cur = ProfileArtifact();
      Ent.HasCur = false;
    }
    Snap = Ent.Hist;
  }
  Out = serializeProfileArtifact(Snap);
  EpochOut = E;
  FingerprintOut = Fp;
  Stats.Snapshots.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::string ShardStore::statsJson() const {
  std::string J = "{";
  auto Num = [&J](const char *K, uint64_t V, bool Last = false) {
    J += "\"";
    J += K;
    J += "\": " + std::to_string(V);
    if (!Last)
      J += ", ";
  };
  Num("uploads_acked", Stats.UploadsAcked.load(std::memory_order_relaxed));
  Num("uploads_rejected",
      Stats.UploadsRejected.load(std::memory_order_relaxed));
  Num("bytes_ingested", Stats.BytesIngested.load(std::memory_order_relaxed));
  Num("snapshots", Stats.Snapshots.load(std::memory_order_relaxed));
  Num("framing_errors", Stats.FramingErrors.load(std::memory_order_relaxed));
  Num("fingerprints", fingerprints().size());
  Num("epoch", epoch(), /*Last=*/true);
  J += "}";
  return J;
}
