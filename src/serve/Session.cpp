#include "serve/Session.h"

using namespace olpp;
using namespace olpp::serve;

bool ServeSession::consume(std::string_view Bytes, std::string &Out) {
  Reader.feed(Bytes);
  Frame F;
  for (;;) {
    switch (Reader.next(F)) {
    case FrameStatus::NeedMore:
      return true;
    case FrameStatus::Error:
      // Framing violations are terminal: reply with the reason and drop
      // the connection. No resynchronization — a peer that framed one
      // message wrong cannot be trusted to frame the next one right.
      Store.stats().FramingErrors.fetch_add(1, std::memory_order_relaxed);
      Out += encodeFrame(FrameType::Err,
                         encodeErrPayload(ErrCode::BadFrame, Reader.error()));
      return false;
    case FrameStatus::Frame:
      if (!processFrame(F, Out))
        return false;
      break;
    }
  }
}

bool ServeSession::processFrame(const Frame &F, std::string &Out) {
  switch (F.Type) {
  case FrameType::Upload: {
    const UploadResult R = Store.upload(F.Payload);
    if (R.Status == UploadStatus::Ok) {
      Out += encodeFrame(FrameType::Ack,
                         encodeAckPayload({NextSeq++, R.Tag, R.Fingerprint}));
      return true;
    }
    // Rejected wholesale; the connection survives (one bad artifact does
    // not imply a broken stream — framing still checked out).
    Out += encodeFrame(FrameType::Err,
                       encodeErrPayload(ErrCode::BadArtifact, R.Error));
    return true;
  }
  case FrameType::Snapshot: {
    bool HaveFp = false;
    uint64_t Fp = 0;
    if (F.Payload.size() == 8) {
      HaveFp = true;
      Fp = getU64LE(F.Payload.data());
    } else if (!F.Payload.empty()) {
      Out += encodeFrame(
          FrameType::Err,
          encodeErrPayload(ErrCode::BadType,
                           "snapshot selector must be empty or 8 bytes"));
      return true;
    }
    uint64_t Epoch = 0, OutFp = 0;
    std::string Bytes, Error;
    if (!Store.snapshot(HaveFp, Fp, Epoch, OutFp, Bytes, Error)) {
      Out += encodeFrame(FrameType::Err,
                         encodeErrPayload(ErrCode::NoData, Error));
      return true;
    }
    Out += encodeFrame(FrameType::SnapshotData,
                       encodeSnapshotPayload(Epoch, OutFp, Bytes));
    return true;
  }
  case FrameType::Stats:
    Out += encodeFrame(FrameType::StatsData, Store.statsJson());
    return true;
  case FrameType::Quit:
    return false;
  default:
    Out += encodeFrame(FrameType::Err,
                       encodeErrPayload(ErrCode::BadType,
                                        "unexpected frame type"));
    return false;
  }
}
