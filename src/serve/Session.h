//===- Session.h - per-connection serve protocol state machine ------------===//
//
// One ServeSession per client connection: it owns the incremental frame
// decoder and turns raw received bytes into store operations and reply
// bytes. The transport is abstracted away — the TCP server feeds it socket
// reads, the tests and fuzz oracle 11 feed it adversarial byte slices
// directly — so every robustness property is proven against the exact code
// path production traffic takes.
//
//===----------------------------------------------------------------------===//
#ifndef OLPP_SERVE_SESSION_H
#define OLPP_SERVE_SESSION_H

#include "serve/Protocol.h"
#include "serve/ShardStore.h"
#include "support/Framing.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace olpp::serve {

class ServeSession {
public:
  explicit ServeSession(ShardStore &Store)
      : Store(Store), Reader(Store.config().MaxFrameBytes) {}

  /// Feed received bytes; complete frames are processed against the store
  /// and reply frames are appended to \p Out. Returns false when the
  /// connection must close (Quit, framing violation, unknown frame type) —
  /// any already-appended replies should still be flushed to the peer.
  bool consume(std::string_view Bytes, std::string &Out);

  /// True when the peer stopped sending mid-frame — an upload (or header)
  /// was cut off. Nothing of a partial frame ever reaches the store.
  bool midFrame() const { return Reader.midFrame(); }

  /// Uploads acked on this connection (also the next upload's seq number).
  uint64_t uploadsAcked() const { return NextSeq; }

private:
  /// Returns false when the connection must close.
  bool processFrame(const Frame &F, std::string &Out);

  ShardStore &Store;
  FrameReader Reader;
  uint64_t NextSeq = 0;
};

} // namespace olpp::serve

#endif // OLPP_SERVE_SESSION_H
