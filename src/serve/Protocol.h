//===- Protocol.h - olpp serve message payloads ---------------------------===//
//
// Payload layouts for the serve protocol, on top of support/Framing.h
// frames. All integers little-endian. Client-originated frame types:
//
//   Upload (0x01)   raw .olpp artifact bytes
//   Snapshot (0x02) empty, or u64 fingerprint selector
//   Stats (0x03)    empty
//   Quit (0x04)     empty
//
// Server replies:
//
//   Ack (0x81)          u64 seq | u64 epoch tag | u64 fingerprint
//   Err (0x82)          u32 code | utf-8 message
//   SnapshotData (0x83) u64 epoch | u64 fingerprint | artifact bytes
//   StatsData (0x84)    utf-8 JSON
//
// The Ack's epoch tag is the contract behind snapshot exactness: an upload
// acked with tag T is contained in every snapshot whose epoch E >= T and
// in none with E < T (see ShardStore.h).
//
//===----------------------------------------------------------------------===//
#ifndef OLPP_SERVE_PROTOCOL_H
#define OLPP_SERVE_PROTOCOL_H

#include "support/Framing.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace olpp::serve {

/// Structured error codes carried in Err reply payloads.
enum class ErrCode : uint32_t {
  BadFrame = 1,     ///< framing violation (length cap, CRC); connection dies
  BadArtifact = 2,  ///< upload payload rejected by the checked .olpp reader
  Backpressure = 3, ///< server shed the request under load
  Internal = 4,     ///< server-side failure (serialization, I/O)
  BadType = 5,      ///< unknown or inapplicable frame type; connection dies
  NoData = 6,       ///< snapshot of an empty store / unknown fingerprint
};

inline void putU32LE(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(char((V >> (8 * I)) & 0xFF));
}

inline void putU64LE(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(char((V >> (8 * I)) & 0xFF));
}

inline uint32_t getU32LE(const char *P) {
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | uint8_t(P[I]);
  return V;
}

inline uint64_t getU64LE(const char *P) {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | uint8_t(P[I]);
  return V;
}

/// Decoded Ack reply.
struct AckInfo {
  uint64_t Seq = 0;         ///< per-connection upload sequence number
  uint64_t Tag = 0;         ///< epoch tag (snapshot-containment contract)
  uint64_t Fingerprint = 0; ///< module fingerprint the upload folded into
};

inline std::string encodeAckPayload(const AckInfo &A) {
  std::string P;
  putU64LE(P, A.Seq);
  putU64LE(P, A.Tag);
  putU64LE(P, A.Fingerprint);
  return P;
}

inline bool decodeAckPayload(std::string_view P, AckInfo &Out) {
  if (P.size() != 24)
    return false;
  Out.Seq = getU64LE(P.data());
  Out.Tag = getU64LE(P.data() + 8);
  Out.Fingerprint = getU64LE(P.data() + 16);
  return true;
}

inline std::string encodeErrPayload(ErrCode Code, std::string_view Msg) {
  std::string P;
  putU32LE(P, uint32_t(Code));
  P.append(Msg.data(), Msg.size());
  return P;
}

inline bool decodeErrPayload(std::string_view P, ErrCode &Code,
                             std::string &Msg) {
  if (P.size() < 4)
    return false;
  Code = ErrCode(getU32LE(P.data()));
  Msg.assign(P.data() + 4, P.size() - 4);
  return true;
}

/// Decoded SnapshotData reply.
struct SnapshotInfo {
  uint64_t Epoch = 0;
  uint64_t Fingerprint = 0;
  std::string Artifact; ///< serialized .olpp bytes
};

inline std::string encodeSnapshotPayload(uint64_t Epoch, uint64_t Fingerprint,
                                         std::string_view Artifact) {
  std::string P;
  P.reserve(16 + Artifact.size());
  putU64LE(P, Epoch);
  putU64LE(P, Fingerprint);
  P.append(Artifact.data(), Artifact.size());
  return P;
}

inline bool decodeSnapshotPayload(std::string_view P, SnapshotInfo &Out) {
  if (P.size() < 16)
    return false;
  Out.Epoch = getU64LE(P.data());
  Out.Fingerprint = getU64LE(P.data() + 8);
  Out.Artifact.assign(P.data() + 16, P.size() - 16);
  return true;
}

} // namespace olpp::serve

#endif // OLPP_SERVE_PROTOCOL_H
