//===- Client.h - blocking serve protocol client --------------------------===//
//
// The client side of the serve protocol: a plain blocking TCP connection
// speaking support/Framing.h frames. Used by `olpp serve-bench`, the
// serve_smoke gate and the end-to-end tests; deliberately simple — one
// request/response at a time is exactly what a fleet uploader does.
//
//===----------------------------------------------------------------------===//
#ifndef OLPP_SERVE_CLIENT_H
#define OLPP_SERVE_CLIENT_H

#include "support/Framing.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace olpp::serve {

class BlockingClient {
public:
  BlockingClient() = default;
  ~BlockingClient() { closeNow(); }

  BlockingClient(const BlockingClient &) = delete;
  BlockingClient &operator=(const BlockingClient &) = delete;

  /// Connect to \p Host:\p Port. False (with \p Err) on failure.
  bool connectTo(const std::string &Host, uint16_t Port, std::string &Err);

  /// Write raw bytes (used by tests to send deliberately broken streams).
  bool sendBytes(std::string_view Bytes);

  /// Encode and send one frame.
  bool sendFrame(FrameType Type, std::string_view Payload);

  /// Block until one complete frame arrives. False (with \p Err) on EOF,
  /// socket error or a framing violation in the reply stream.
  bool recvFrame(Frame &Out, std::string &Err);

  /// Half-close: no more writes, replies can still be read.
  void shutdownWrite();

  /// Hard close (mid-upload disconnects in tests).
  void closeNow();

  bool connected() const { return Fd >= 0; }

private:
  int Fd = -1;
  FrameReader Reader;
};

} // namespace olpp::serve

#endif // OLPP_SERVE_CLIENT_H
