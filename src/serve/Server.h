//===- Server.h - olpp serve TCP daemon -----------------------------------===//
//
// The transport layer of `olpp serve`: a poll()-based I/O thread owns every
// socket; protocol work (frame decoding, artifact validation, shard folds)
// runs on the TaskPool, at most one in-flight task per connection so each
// connection's frames are processed in order while thousands of connections
// proceed concurrently.
//
// Backpressure is structural, never an unbounded queue:
//   - per-connection buffered-input budget: a connection over budget stops
//     being polled for reads until its backlog drains (TCP pushes back),
//   - global buffered-input budget: over it, every connection stops being
//     read until the pool catches up,
//   - slow-client sweep: a connection stuck mid-frame or with undrained
//     replies past the timeout is closed.
//
// A client disconnect mid-frame simply discards the partial frame — frames
// only reach the store whole, so shard state cannot be half-updated.
//
//===----------------------------------------------------------------------===//
#ifndef OLPP_SERVE_SERVER_H
#define OLPP_SERVE_SERVER_H

#include "serve/Session.h"
#include "serve/ShardStore.h"
#include "support/TaskPool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace olpp::serve {

class Server {
public:
  /// \p Port 0 binds an ephemeral port; read it back with port().
  Server(ShardStore &Store, TaskPool &Pool, uint16_t Port);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Bind + listen + start the I/O thread. False (with \p Err) on failure.
  bool start(std::string &Err);

  /// Stop accepting, close every connection, join the I/O thread.
  /// Idempotent; the destructor calls it.
  void stop();

  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }

  /// Live connection count (diagnostics).
  size_t connectionCount() const;

private:
  struct Conn {
    explicit Conn(ShardStore &Store, int Fd)
        : Fd(Fd), Session(Store) {}
    const int Fd;
    ServeSession Session; ///< touched only by the drain task (Busy owner)
    std::mutex Mu;
    std::string In;   ///< received, not yet consumed (budgeted)
    std::string Out;  ///< replies not yet written
    bool Busy = false;          ///< a drain task is in flight
    bool CloseAfterFlush = false;
    bool Dead = false;          ///< drop without flushing
    bool SessMid = false;       ///< cached Session.midFrame() (sweep)
    std::chrono::steady_clock::time_point LastActive;
  };

  void ioLoop();
  void drainConn(const std::shared_ptr<Conn> &C);
  void wake();

  ShardStore &Store;
  TaskPool &Pool;
  uint16_t RequestedPort;
  uint16_t BoundPort = 0;
  int ListenFd = -1;
  int WakeFds[2] = {-1, -1};
  std::thread IoThread;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> GlobalBuffered{0};
  mutable std::mutex ConnsMu;
  std::vector<std::shared_ptr<Conn>> Conns;
};

} // namespace olpp::serve

#endif // OLPP_SERVE_SERVER_H
