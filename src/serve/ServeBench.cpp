#include "serve/ServeBench.h"
#include "profdata/Merge.h"
#include "serve/Client.h"
#include "serve/Protocol.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

using namespace olpp;
using namespace olpp::serve;

namespace {

struct ClientOutcome {
  uint64_t Acked = 0;
  uint64_t Rejected = 0;
  uint64_t Bytes = 0;
  uint64_t MaxTag = 0;
  std::vector<double> LatUs;
  /// Corpus index of each acked upload (for the offline fold).
  std::vector<uint32_t> AckedIdx;
  std::string Error;
};

void runOneClient(const FleetOptions &Opts,
                  const std::vector<std::string> &Corpus, unsigned Id,
                  ClientOutcome &Out) {
  BlockingClient C;
  std::string Err;
  if (!C.connectTo(Opts.Host, Opts.Port, Err)) {
    Out.Error = "client " + std::to_string(Id) + ": " + Err;
    return;
  }
  for (unsigned U = 0; U < Opts.UploadsPerClient; ++U) {
    const uint32_t Idx = uint32_t((Id + uint64_t(U) * Opts.Clients) %
                                  std::max<size_t>(1, Corpus.size()));
    const std::string &Payload = Corpus[Idx];
    const auto T0 = std::chrono::steady_clock::now();
    if (!C.sendFrame(FrameType::Upload, Payload)) {
      Out.Error = "client " + std::to_string(Id) + ": upload write failed";
      return;
    }
    Frame Reply;
    if (!C.recvFrame(Reply, Err)) {
      Out.Error = "client " + std::to_string(Id) + ": " + Err;
      return;
    }
    const auto T1 = std::chrono::steady_clock::now();
    if (Reply.Type == FrameType::Ack) {
      AckInfo A;
      if (!decodeAckPayload(Reply.Payload, A)) {
        Out.Error = "client " + std::to_string(Id) + ": malformed ack";
        return;
      }
      ++Out.Acked;
      Out.Bytes += Payload.size();
      Out.MaxTag = std::max(Out.MaxTag, A.Tag);
      Out.AckedIdx.push_back(Idx);
      Out.LatUs.push_back(
          std::chrono::duration<double, std::micro>(T1 - T0).count());
    } else {
      ++Out.Rejected;
    }
  }
  C.sendFrame(FrameType::Quit, {});
}

} // namespace

double olpp::serve::percentileUs(const std::vector<double> &Samples,
                                 double P) {
  if (Samples.empty())
    return 0.0;
  std::vector<double> S = Samples;
  std::sort(S.begin(), S.end());
  const double Rank = std::ceil(P / 100.0 * double(S.size()));
  const size_t I = size_t(std::max(1.0, Rank)) - 1;
  return S[std::min(I, S.size() - 1)];
}

bool olpp::serve::runUploadFleet(const FleetOptions &Opts,
                                 const std::vector<std::string> &Corpus,
                                 FleetReport &Out, std::string &Err) {
  if (Corpus.empty()) {
    Err = "empty upload corpus";
    return false;
  }
  Out = FleetReport();

  std::vector<ClientOutcome> Outcomes(Opts.Clients);
  const auto T0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> Threads;
    Threads.reserve(Opts.Clients);
    for (unsigned I = 0; I < Opts.Clients; ++I)
      Threads.emplace_back(
          [&, I] { runOneClient(Opts, Corpus, I, Outcomes[I]); });
    for (std::thread &T : Threads)
      T.join();
  }
  Out.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  std::vector<uint32_t> AckedIdx;
  for (const ClientOutcome &O : Outcomes) {
    if (!O.Error.empty()) {
      Err = O.Error;
      return false;
    }
    Out.Uploads += O.Acked;
    Out.Rejected += O.Rejected;
    Out.Bytes += O.Bytes;
    Out.MaxAckTag = std::max(Out.MaxAckTag, O.MaxTag);
    Out.LatenciesUs.insert(Out.LatenciesUs.end(), O.LatUs.begin(),
                           O.LatUs.end());
    AckedIdx.insert(AckedIdx.end(), O.AckedIdx.begin(), O.AckedIdx.end());
  }

  if (!Opts.Verify)
    return true;

  // Snapshot, then prove the containment contract: every upload above was
  // acked with tag <= the snapshot's epoch, so the snapshot must be
  // bit-identical to the offline fold of exactly those uploads.
  BlockingClient C;
  if (!C.connectTo(Opts.Host, Opts.Port, Err))
    return false;
  if (!C.sendFrame(FrameType::Snapshot, {})) {
    Err = "snapshot request failed";
    return false;
  }
  Frame Reply;
  if (!C.recvFrame(Reply, Err))
    return false;
  C.sendFrame(FrameType::Quit, {});
  if (Reply.Type != FrameType::SnapshotData) {
    Err = "snapshot rejected by server";
    return false;
  }
  SnapshotInfo Snap;
  if (!decodeSnapshotPayload(Reply.Payload, Snap)) {
    Err = "malformed snapshot reply";
    return false;
  }
  Out.SnapshotEpoch = Snap.Epoch;
  Out.Fingerprint = Snap.Fingerprint;
  Out.SnapshotBytes = Snap.Artifact.size();
  if (Out.MaxAckTag > Snap.Epoch) {
    Err = "ack tag exceeds snapshot epoch: containment contract broken";
    return false;
  }

  // Offline fold, decoding each distinct corpus entry once.
  std::vector<Diagnostic> Diags;
  std::vector<ProfileArtifact> Decoded(Corpus.size());
  std::vector<char> Have(Corpus.size(), 0);
  ProfileArtifact Acc;
  bool AccInit = false;
  for (uint32_t Idx : AckedIdx) {
    if (!Have[Idx]) {
      if (!readProfileArtifactBytes(Corpus[Idx], Decoded[Idx], Diags)) {
        Err = "offline fold: corpus artifact failed to decode";
        return false;
      }
      Have[Idx] = 1;
    }
    if (!AccInit) {
      Acc = makeEmptyLike(Decoded[Idx]);
      AccInit = true;
    }
    if (!mergeArtifacts(Acc, Decoded[Idx], Diags)) {
      Err = "offline fold: merge failed";
      return false;
    }
  }
  if (!AccInit) {
    Err = "no uploads were acked";
    return false;
  }
  Out.BitIdentity = serializeProfileArtifact(Acc) == Snap.Artifact;
  if (!Out.BitIdentity) {
    Err = "snapshot is not bit-identical to the offline fold of the acked "
          "uploads";
    return false;
  }
  return true;
}
