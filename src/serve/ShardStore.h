//===- ShardStore.h - sharded per-fingerprint merge trees -----------------===//
//
// The aggregation state behind `olpp serve`: validated uploads fold into
// per-fingerprint accumulator artifacts spread over lock-sharded maps, and
// epoch-based snapshots answer queries with an exact containment contract
// while ingest continues.
//
// ## Epoch exactness
//
// A global atomic epoch counter orders snapshots against folds. Every fold
// reads the counter under its shard lock and acks the upload with that tag.
// Each fingerprint entry keeps two accumulators: `Hist` (sealed history)
// and `Cur` (the open accumulator, stamped with the tag of its first fold).
// A snapshot increments the epoch to E+1 (publishing snapshot id E), then
// visits each shard and seals any Cur with tag <= E into Hist before
// reading Hist. Folds racing with the snapshot observe the incremented
// counter, land in a fresh Cur tagged E+1, and are excluded. Hence:
//
//   snapshot E == merge of exactly the uploads acked with tag <= E,
//
// bit-identically (PR 5 proved the merge algebra associative, commutative
// and order-independent, and metadata folds commutatively), which is the
// property bench/perf_serve's bit-identity gate and fuzz oracle 11 check
// against an offline `profdata merge` fold.
//
// Malformed uploads are rejected by the checked reader before any lock is
// taken; a rejected, truncated or mid-disconnect upload can never move a
// counter.
//
//===----------------------------------------------------------------------===//
#ifndef OLPP_SERVE_SHARDSTORE_H
#define OLPP_SERVE_SHARDSTORE_H

#include "profdata/ProfData.h"
#include "support/Framing.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace olpp::serve {

/// Daemon/store tuning knobs.
struct ServeConfig {
  /// Lock shards the fingerprint map is spread over.
  uint32_t Shards = 16;
  /// Per-frame payload cap (support/Framing.h enforces it pre-allocation).
  uint64_t MaxFrameBytes = DefaultMaxFramePayload;
  /// Buffered-input budget per connection; a connection over budget stops
  /// being read (TCP backpressure) until the backlog drains.
  uint64_t PerConnBudget = 4ull << 20;
  /// Global buffered-input budget across all connections.
  uint64_t GlobalBudget = 256ull << 20;
  /// Connections stuck mid-frame or with undrained replies longer than
  /// this are closed. 0 disables the sweep.
  uint32_t SlowClientTimeoutMs = 30000;
  /// Deliberate defect switch for fuzz oracle 11's mutation test
  /// (FaultKind::DropFrameAck): ack the first upload without folding it.
  /// Must never be enabled by a real tool.
  bool FaultDropFold = false;
};

/// Monotonic ingest counters (readable while the daemon runs).
struct ServeStats {
  std::atomic<uint64_t> UploadsAcked{0};
  std::atomic<uint64_t> UploadsRejected{0};
  std::atomic<uint64_t> BytesIngested{0}; ///< payload bytes of acked uploads
  std::atomic<uint64_t> Snapshots{0};
  std::atomic<uint64_t> FramingErrors{0};
};

enum class UploadStatus : uint8_t {
  Ok,           ///< validated and folded (acked)
  Malformed,    ///< checked reader rejected the payload wholesale
  Incompatible, ///< valid artifact, but clashes with the resident entry
};

struct UploadResult {
  UploadStatus Status = UploadStatus::Ok;
  uint64_t Tag = 0;         ///< epoch tag (only meaningful on Ok)
  uint64_t Fingerprint = 0; ///< module fingerprint (only meaningful on Ok)
  std::string Error;        ///< first diagnostic when rejected
};

class ShardStore {
public:
  explicit ShardStore(const ServeConfig &Cfg);

  /// Validate \p Bytes with the checked .olpp reader and fold it into its
  /// fingerprint's accumulator. Thread-safe; rejection never touches state.
  UploadResult upload(std::string_view Bytes);

  /// Publish a snapshot: \p EpochOut gets the snapshot id E, \p Out the
  /// serialized merge of exactly the uploads acked with tag <= E for the
  /// selected fingerprint. With \p HaveFp false the store must hold exactly
  /// one fingerprint (the common single-binary fleet). Returns false with
  /// \p Error set when there is no data / ambiguous or unknown fingerprint.
  bool snapshot(bool HaveFp, uint64_t Fp, uint64_t &EpochOut,
                uint64_t &FingerprintOut, std::string &Out,
                std::string &Error);

  /// Fingerprints currently resident (any tag).
  std::vector<uint64_t> fingerprints() const;

  /// Current epoch counter value (tags future folds).
  uint64_t epoch() const { return Epoch.load(std::memory_order_relaxed); }

  /// One-line JSON stats document (the StatsData reply payload).
  std::string statsJson() const;

  ServeStats &stats() { return Stats; }
  const ServeConfig &config() const { return Cfg; }

private:
  struct Entry {
    ProfileArtifact Hist; ///< sealed accumulator (rooted at makeEmptyLike)
    ProfileArtifact Cur;  ///< open accumulator
    uint64_t CurTag = 0;
    bool HasCur = false;
  };
  struct Shard {
    mutable std::mutex Mu;
    std::map<uint64_t, Entry> Entries;
  };

  Shard &shardFor(uint64_t Fp) { return *ShardsV[Fp % ShardsV.size()]; }

  ServeConfig Cfg;
  ServeStats Stats;
  std::atomic<uint64_t> Epoch{1}; ///< starts at 1 so tag 0 means "never"
  std::atomic<bool> FaultArmed{false};
  /// Serializes snapshot publication (folds are not blocked by this).
  std::mutex SnapMu;
  std::vector<std::unique_ptr<Shard>> ShardsV;
};

} // namespace olpp::serve

#endif // OLPP_SERVE_SHARDSTORE_H
