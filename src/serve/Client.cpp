#include "serve/Client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace olpp;
using namespace olpp::serve;

bool BlockingClient::connectTo(const std::string &Host, uint16_t Port,
                               std::string &Err) {
  closeNow();
  Fd = socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + strerror(errno);
    return false;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "bad host address '" + Host + "' (numeric IPv4 expected)";
    closeNow();
    return false;
  }
  if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = std::string("connect: ") + strerror(errno);
    closeNow();
    return false;
  }
  const int One = 1;
  setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  Reader = FrameReader();
  return true;
}

bool BlockingClient::sendBytes(std::string_view Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    const ssize_t N = write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += size_t(N);
  }
  return true;
}

bool BlockingClient::sendFrame(FrameType Type, std::string_view Payload) {
  return sendBytes(encodeFrame(Type, Payload));
}

bool BlockingClient::recvFrame(Frame &Out, std::string &Err) {
  for (;;) {
    switch (Reader.next(Out)) {
    case FrameStatus::Frame:
      return true;
    case FrameStatus::Error:
      Err = "reply framing violation: " + Reader.error();
      return false;
    case FrameStatus::NeedMore:
      break;
    }
    char Buf[64 * 1024];
    const ssize_t N = read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      Reader.feed({Buf, size_t(N)});
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    Err = N == 0 ? "connection closed by server"
                 : std::string("read: ") + strerror(errno);
    return false;
  }
}

void BlockingClient::shutdownWrite() {
  if (Fd >= 0)
    shutdown(Fd, SHUT_WR);
}

void BlockingClient::closeNow() {
  if (Fd >= 0) {
    close(Fd);
    Fd = -1;
  }
}
