//===--- Main.cpp - the olpp command-line driver --------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `olpp` tool: compile, run, profile and estimate MiniC programs from
/// the command line.
///
///   olpp run <file.mc> [args...]
///   olpp ir <file.mc>
///   olpp profile <file.mc> [--degree K] [--interproc] [--top N]
///        [--lint] [--lint-json] [--lint-werror] [args...]
///   olpp estimate <file.mc> [--degree K] [--feasibility] [args...]
///   olpp analyze <file.mc> [--json]
///   olpp lint <file.mc|workload|--all> [--json] [--werror] [--degree K]
///   olpp workloads
///
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "analysis/Feasibility.h"
#include "analysis/Lint.h"
#include "analysis/LoopInfo.h"
#include "analysis/Summary.h"
#include "driver/Pipeline.h"
#include "estimate/Estimators.h"
#include "frontend/Compiler.h"
#include "fuzz/Fuzzer.h"
#include "interp/ShardedProfile.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/Optimizer.h"
#include "profdata/Merge.h"
#include "profdata/Report.h"
#include "profile/InfeasiblePaths.h"
#include "profile/InstrCheck.h"
#include "profile/ProfileDecode.h"
#include "serve/Server.h"
#include "serve/ServeBench.h"
#include "support/BenchJson.h"
#include "support/Format.h"
#include "support/TableWriter.h"
#include "support/TaskPool.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

using namespace olpp;

namespace {

int usage() {
  std::fputs(
      "olpp - overlapping path profiling driver\n"
      "\n"
      "  olpp run <file.mc> [args...]          compile and execute\n"
      "  olpp ir <file.mc>                     dump the lowered IR\n"
      "  olpp profile <file.mc> [options] [args...]\n"
      "       --degree K     overlapping loop paths of degree K\n"
      "       --interproc    also collect Type I/II profiles (degree K)\n"
      "       --top N        show the N hottest paths (default 10)\n"
      "       -o FILE        also write a binary .olpp profile artifact\n"
      "       --json         print the profile summary as JSON (composes\n"
      "                      with -o: artifact and JSON are independent)\n"
      "       --lint         lint the program and audit the probes\n"
      "       --lint-json    emit lint findings as JSON\n"
      "       --lint-werror  treat lint warnings as errors\n"
      "  olpp estimate <file.mc> [--degree K] [--profile FILE]\n"
      "       [--feasibility] [args...]\n"
      "       per-loop and per-call-site interesting path bounds\n"
      "       --profile FILE  solve over a merged .olpp artifact instead of\n"
      "                       re-profiling (no ground-truth column)\n"
      "       --feasibility   feed statically proven-infeasible pairs to the\n"
      "                       solver as hard zero constraints (bounds only\n"
      "                       tighten, never widen)\n"
      "  olpp opt <file.mc> --profile FILE [--emit-ir] [-o FILE] [--json]\n"
      "       profile-guided optimization: rebinds the .olpp artifact\n"
      "       (fingerprint-checked), inlines the hottest Type I/II call\n"
      "       paths, forms superblocks along hot backedge-crossing traces,\n"
      "       then re-verifies, re-instruments and re-runs the optimized\n"
      "       module against the baseline\n"
      "       --profile FILE  the merged .olpp artifact driving the\n"
      "                       transforms (required)\n"
      "       --emit-ir       print the optimized IR to stdout\n"
      "       -o FILE         write the optimized IR to FILE\n"
      "       --json          machine-readable decision/stat report\n"
      "  olpp analyze <file.mc> [--json]\n"
      "       static analysis report: per-function value ranges, bottom-up\n"
      "       call summaries (purity, globals touched, return range) and\n"
      "       the share of acyclic path ids proven infeasible\n"
      "  olpp profdata merge -o OUT [--weight N] <in.olpp|@list|->...\n"
      "       aggregate artifacts (saturating add; --weight N multiplies\n"
      "       every counter, equivalent to N replays of each input)\n"
      "       @FILE reads newline-separated artifact paths from FILE and\n"
      "       '-' reads them from stdin, sidestepping argv length limits\n"
      "  olpp profdata show <file.olpp> [--module file.mc] [--top N]\n"
      "       [--json] [--no-bounds]\n"
      "       provenance, hot paths, coverage; binds to --module (or the\n"
      "       embedded workload it records) to re-solve definite/potential\n"
      "       bounds over the merged counters\n"
      "  olpp profdata diff <a.olpp> <b.olpp> [--top N] [--json]\n"
      "       path records added / removed / regressed between artifacts\n"
      "  olpp profdata export <file.olpp> [-o FILE]\n"
      "       dump every counter as JSON\n"
      "  olpp lint <file.mc|--all> [--json] [--werror] [--degree K]\n"
      "       lint source and verify instrumentation invariants\n"
      "       (--all checks every embedded workload)\n"
      "  olpp workloads                        list the embedded suite\n"
      "  olpp fuzz [--seeds N] [--seed S] [--jobs N] [--shrink] [--json]\n"
      "       differential fuzzing: random programs cross-checked against\n"
      "       every oracle pair (fast vs reference engine, dense vs map\n"
      "       counter stores, profile vs trace-derived truth, worklist vs\n"
      "       sweep vs parallel solver, bound soundness, abort consistency,\n"
      "       .olpp artifact round-trip + mutation rejection)\n"
      "       --seeds N      number of master seeds (default 100)\n"
      "       --seed S       run exactly one master seed (replay)\n"
      "       --jobs N       check seeds on N threads (0 = all cores,\n"
      "                      default 1); the report is identical for any N\n"
      "       --shrink       minimize failing programs before reporting\n"
      "       --json         emit findings as JSON diagnostics\n"
      "  olpp bench [name] [--jobs N] [--smoke] [--out FILE]\n"
      "       run the workload suite under the fast and reference engines\n"
      "       in parallel and write a BENCH_engine.json report\n"
      "       --jobs N       worker threads (0 = all cores, default 1)\n"
      "       --smoke        3 small workloads on cheap inputs\n"
      "       --out FILE     report path (default BENCH_engine.json)\n"
      "       --validate FILE  only check FILE against the report schema\n"
      "       --emit-profdata DIR  write one .olpp artifact per counter\n"
      "                      shard plus the merged artifact, and cross-check\n"
      "                      artifact-level merge against the in-memory one\n"
      "  olpp serve [--port P] [--jobs N] [--shards K]\n"
      "       long-lived aggregation daemon: accepts streamed .olpp uploads\n"
      "       over a length-prefixed framed socket protocol, validates each\n"
      "       with the checked reader (malformed frames rejected wholesale,\n"
      "       never partially merged) and folds them into sharded merge\n"
      "       trees; SNAPSHOT/STATS queries answer from epoch-based\n"
      "       snapshots while ingest continues\n"
      "       --port P       listen port (0 = ephemeral, printed on stdout)\n"
      "       --jobs N       merge worker threads (0 = all cores)\n"
      "       --shards K     merge-tree shards (default 16)\n"
      "  olpp serve-bench --port P [--host H] [--clients N] [--uploads M]\n"
      "       [--derive K] [--no-verify] <in.olpp>...\n"
      "       load generator: derives K weighted variants per input\n"
      "       artifact, uploads them from N concurrent clients (M uploads\n"
      "       each) and verifies the final snapshot is bit-identical to an\n"
      "       offline merge of exactly the acked uploads\n"
      "\n"
      "run and bench accept --profile FILE to pre-heat the tracing tier\n"
      "from a matching .olpp artifact (hot paths recorded without warmup;\n"
      "the run is instrumented under the artifact's recorded mode).\n"
      "\n"
      "run/profile/estimate/bench accept --engine fast|reference to select\n"
      "the execution engine (default: fast). The fast engine's tracing tier\n"
      "takes --trace-threshold N (completions before a hot path is recorded,\n"
      "default 32; 0 = record on the first completion), --no-traces\n"
      "(interpret everything, never trace), --trace-link-threshold N\n"
      "(side-exit deopts before a bridge trace is stitched in, default 8,\n"
      "0 = never link), --no-trace-opt (run compiled traces verbatim,\n"
      "skipping the trace-local optimizer) and --trace-dwe-gate N (disable\n"
      "a trace's wrap-recovery dead-write elimination once its observed\n"
      "deopt rate exceeds N deopts per 100 enters; 0 = never, default 100).\n"
      "\n"
      "A file name matching an embedded workload (e.g. 'mcf') may be used\n"
      "in place of a path.\n",
      stderr);
  return 2;
}

bool readSource(const std::string &Path, std::string &Out) {
  if (const Workload *W = findWorkload(Path)) {
    Out = W->Source;
    return true;
  }
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

struct Parsed {
  std::string File;
  /// Positionals after File, verbatim (profdata takes several input files;
  /// run/profile parse the same tokens as integers via Args).
  std::vector<std::string> ExtraFiles;
  uint32_t Degree = 1;
  bool Interproc = false;
  size_t Top = 10;
  std::vector<int64_t> Args;
  bool Lint = false;
  bool LintJson = false;
  bool LintWerror = false;
  bool All = false;
  EngineKind Engine = EngineKind::Fast;
  bool NoTraces = false; ///< --no-traces: disable the tracing tier
  /// --trace-threshold; 0 is a real value (record on the first completion),
  /// so presence is a separate flag instead of a sentinel.
  uint32_t TraceThreshold = 0;
  bool HasTraceThreshold = false;
  uint32_t TraceLinkThreshold = 0; ///< --trace-link-threshold (0 = no bridges)
  bool HasTraceLinkThreshold = false;
  bool NoTraceOpt = false; ///< --no-trace-opt: run compiled traces verbatim
  unsigned Jobs = 1; ///< bench/fuzz worker threads; 0 = one per core
  bool Smoke = false;
  uint32_t Seeds = 100;    ///< fuzz: number of master seeds
  uint64_t FuzzSeed = 0;   ///< fuzz: single replay seed (--seed)
  bool HasFuzzSeed = false;
  bool Shrink = false;
  /// Unified -o/--out/--output destination; each command supplies its own
  /// default when empty (bench: BENCH_engine.json, export: stdout).
  std::string Out;
  std::string Validate;
  bool Json = false;          ///< machine-readable output (composes with -o)
  uint64_t Weight = 1;        ///< profdata merge --weight
  std::string FromProfile;    ///< estimate/opt/run/bench --profile FILE
  bool EmitIr = false;        ///< opt --emit-ir
  bool Feasibility = false;   ///< estimate --feasibility
  std::string ModuleFile;     ///< profdata show --module FILE
  bool NoBounds = false;      ///< profdata show --no-bounds
  std::string EmitProfdata;   ///< bench --emit-profdata DIR
  /// --trace-dwe-gate: deopts per 100 trace enters above which a trace's
  /// Wrap-recovery dead-write elimination is disabled (0 = never).
  uint32_t TraceDWEGate = 0;
  bool HasTraceDWEGate = false;
  std::string Host = "127.0.0.1"; ///< serve-bench --host
  int Port = -1;                  ///< serve/serve-bench --port (0 = ephemeral)
  unsigned Clients = 16;          ///< serve-bench --clients
  unsigned Uploads = 32;          ///< serve-bench --uploads (per client)
  unsigned Derive = 1;            ///< serve-bench --derive (variants/input)
  unsigned Shards = 16;           ///< serve --shards
  bool NoVerify = false;          ///< serve-bench --no-verify
  bool Bad = false;
  bool Ok = false;
};

Parsed parseArgs(int Argc, char **Argv, int Start) {
  Parsed P;
  for (int I = Start; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--interproc") {
      P.Interproc = true;
    } else if (A == "--degree" && I + 1 < Argc) {
      P.Degree = static_cast<uint32_t>(std::atoi(Argv[++I]));
    } else if (A == "--top" && I + 1 < Argc) {
      P.Top = static_cast<size_t>(std::atoi(Argv[++I]));
    } else if (A == "--lint") {
      P.Lint = true;
    } else if (A == "--lint-json") {
      P.Lint = true;
      P.LintJson = true;
    } else if (A == "--json") {
      P.Json = true;
    } else if (A == "--lint-werror" || A == "--werror") {
      P.Lint = true;
      P.LintWerror = true;
    } else if (A == "--all") {
      P.All = true;
    } else if (A == "--engine" && I + 1 < Argc) {
      P.Bad |= !parseEngineKind(Argv[++I], P.Engine);
    } else if (A.rfind("--engine=", 0) == 0) {
      P.Bad |= !parseEngineKind(A.substr(9), P.Engine);
    } else if (A == "--no-traces") {
      P.NoTraces = true;
    } else if (A == "--trace-threshold" && I + 1 < Argc) {
      int V = std::atoi(Argv[++I]);
      if (V < 0) {
        P.Bad = true;
      } else {
        P.TraceThreshold = static_cast<uint32_t>(V);
        P.HasTraceThreshold = true;
      }
    } else if (A == "--trace-link-threshold" && I + 1 < Argc) {
      int V = std::atoi(Argv[++I]);
      if (V < 0) {
        P.Bad = true;
      } else {
        P.TraceLinkThreshold = static_cast<uint32_t>(V);
        P.HasTraceLinkThreshold = true;
      }
    } else if (A == "--no-trace-opt") {
      P.NoTraceOpt = true;
    } else if (A == "--trace-dwe-gate" && I + 1 < Argc) {
      int V = std::atoi(Argv[++I]);
      if (V < 0) {
        P.Bad = true;
      } else {
        P.TraceDWEGate = static_cast<uint32_t>(V);
        P.HasTraceDWEGate = true;
      }
    } else if (A == "--host" && I + 1 < Argc) {
      P.Host = Argv[++I];
    } else if (A == "--port" && I + 1 < Argc) {
      P.Port = std::atoi(Argv[++I]);
      if (P.Port < 0 || P.Port > 65535)
        P.Bad = true;
    } else if (A == "--clients" && I + 1 < Argc) {
      P.Clients = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (A == "--uploads" && I + 1 < Argc) {
      P.Uploads = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (A == "--derive" && I + 1 < Argc) {
      P.Derive = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (A == "--shards" && I + 1 < Argc) {
      P.Shards = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (A == "--no-verify") {
      P.NoVerify = true;
    } else if ((A == "--jobs" || A == "-j") && I + 1 < Argc) {
      P.Jobs = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (A == "--smoke") {
      P.Smoke = true;
    } else if (A == "--seeds" && I + 1 < Argc) {
      P.Seeds = static_cast<uint32_t>(std::atoi(Argv[++I]));
    } else if (A == "--seed" && I + 1 < Argc) {
      P.FuzzSeed = std::strtoull(Argv[++I], nullptr, 10);
      P.HasFuzzSeed = true;
    } else if (A == "--shrink") {
      P.Shrink = true;
    } else if ((A == "--out" || A == "--output" || A == "-o") &&
               I + 1 < Argc) {
      P.Out = Argv[++I];
    } else if (A == "--validate" && I + 1 < Argc) {
      P.Validate = Argv[++I];
    } else if (A == "--weight" && I + 1 < Argc) {
      P.Weight = std::strtoull(Argv[++I], nullptr, 10);
    } else if (A == "--profile" && I + 1 < Argc) {
      P.FromProfile = Argv[++I];
    } else if (A == "--emit-ir") {
      P.EmitIr = true;
    } else if (A == "--feasibility") {
      P.Feasibility = true;
    } else if (A == "--module" && I + 1 < Argc) {
      P.ModuleFile = Argv[++I];
    } else if (A == "--no-bounds") {
      P.NoBounds = true;
    } else if (A == "--emit-profdata" && I + 1 < Argc) {
      P.EmitProfdata = Argv[++I];
    } else if (P.File.empty()) {
      P.File = A;
    } else {
      P.ExtraFiles.push_back(A);
      P.Args.push_back(std::strtoll(A.c_str(), nullptr, 10));
    }
  }
  P.Ok = !P.Bad && (!P.File.empty() || P.All);
  return P;
}

std::unique_ptr<Module> compileOrFail(const std::string &File) {
  std::string Source;
  if (!readSource(File, Source))
    return nullptr;
  CompileResult CR = compileMiniC(Source);
  if (!CR.ok()) {
    std::fprintf(stderr, "%s", CR.diagText().c_str());
    return nullptr;
  }
  return std::move(CR.M);
}

std::vector<int64_t> fitArgs(const Parsed &P, const Module &M) {
  std::vector<int64_t> Args = P.Args;
  // An embedded workload named on the command line brings its own inputs.
  if (Args.empty())
    if (const Workload *W = findWorkload(P.File))
      Args = W->PrecisionArgs;
  const Function *Main = M.findFunction("main");
  if (Main)
    Args.resize(Main->NumParams, 0);
  return Args;
}

/// Applies the tracing-tier knobs (--no-traces, --trace-threshold,
/// --trace-link-threshold, --no-trace-opt, --trace-dwe-gate) to a run
/// configuration. Only the fast engine consults them.
void applyTraceOpts(RunConfig &RC, const Parsed &P) {
  if (P.NoTraces)
    RC.EnableTraces = false;
  if (P.HasTraceThreshold)
    RC.TraceThreshold = P.TraceThreshold;
  if (P.HasTraceLinkThreshold)
    RC.TraceLinkThreshold = P.TraceLinkThreshold;
  if (P.NoTraceOpt)
    RC.EnableTraceOpt = false;
  if (P.HasTraceDWEGate)
    RC.TraceDWEGate = P.TraceDWEGate;
}

/// `olpp run <file> --profile art.olpp`: the artifact-driven warmup skip.
/// The artifact is rebound (fingerprint-checked), the module runs
/// instrumented under its recorded mode, and the tracing tier's hotness
/// table is pre-heated from the persisted counters so hot paths record on
/// their first live completion instead of after a warmup's worth of them.
int cmdRunSeeded(const Parsed &P) {
  ProfileArtifact A;
  std::vector<Diagnostic> Diags;
  if (!readProfileArtifactFile(P.FromProfile, A, Diags)) {
    std::fputs(renderDiagnosticsText(Diags).c_str(), stderr);
    return 1;
  }
  auto M = compileOrFail(P.File);
  if (!M)
    return 1;
  ArtifactBinding B;
  if (!bindArtifactToModule(*M, A, B, Diags)) {
    std::fputs(renderDiagnosticsText(Diags).c_str(), stderr);
    return 1;
  }
  const Function *Main = B.InstrModule->findFunction("main");
  if (!Main) {
    std::fprintf(stderr, "error: no 'main' function\n");
    return 1;
  }
  ProfileRuntime Prof(B.InstrModule->numFunctions());
  for (uint32_t F = 0; F < B.InstrModule->numFunctions(); ++F)
    if (B.MI.Funcs[F].PG)
      Prof.configurePathStore(F, B.MI.Funcs[F].PG->numPaths());
  std::vector<HotPathSeed> Seeds =
      collectHotLoopPaths(A, B.MI, /*MinCount=*/1, /*MaxSeeds=*/64);
  seedTraceTier(Prof, Seeds);

  Interpreter I(*B.InstrModule, &Prof);
  RunConfig RC;
  RC.Engine = P.Engine;
  applyTraceOpts(RC, P);
  RunResult R = I.run(*Main, fitArgs(P, *B.InstrModule), RC);
  if (!R.Ok) {
    std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("result: %lld\n", static_cast<long long>(R.ReturnValue));
  std::printf("executed %llu instructions, %llu blocks, %llu calls\n",
              static_cast<unsigned long long>(R.Counts.Steps),
              static_cast<unsigned long long>(R.Counts.Blocks),
              static_cast<unsigned long long>(R.Counts.Calls));
  std::printf("seeded %zu hot path(s) from %s: %llu trace(s) recorded, "
              "%llu trace enter(s)\n",
              Seeds.size(), P.FromProfile.c_str(),
              static_cast<unsigned long long>(R.Trace.Recorded),
              static_cast<unsigned long long>(R.Trace.Enters));
  return 0;
}

int cmdRun(const Parsed &P) {
  if (!P.FromProfile.empty())
    return cmdRunSeeded(P);
  auto M = compileOrFail(P.File);
  if (!M)
    return 1;
  const Function *Main = M->findFunction("main");
  if (!Main) {
    std::fprintf(stderr, "error: no 'main' function\n");
    return 1;
  }
  Interpreter I(*M);
  RunConfig RC;
  RC.Engine = P.Engine;
  applyTraceOpts(RC, P);
  RunResult R = I.run(*Main, fitArgs(P, *M), RC);
  if (!R.Ok) {
    std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("result: %lld\n", static_cast<long long>(R.ReturnValue));
  std::printf("executed %llu instructions, %llu blocks, %llu calls\n",
              static_cast<unsigned long long>(R.Counts.Steps),
              static_cast<unsigned long long>(R.Counts.Blocks),
              static_cast<unsigned long long>(R.Counts.Calls));
  return 0;
}

int cmdIr(const Parsed &P) {
  auto M = compileOrFail(P.File);
  if (!M)
    return 1;
  std::fputs(printModule(*M).c_str(), stdout);
  return 0;
}

PipelineResult runPipelineFor(const Parsed &P, Module &M, bool Overlap) {
  PipelineConfig Config;
  if (Overlap) {
    Config.Instr.LoopOverlap = true;
    Config.Instr.LoopDegree = P.Degree;
    if (P.Interproc) {
      Config.Instr.Interproc = true;
      Config.Instr.InterprocDegree = P.Degree;
    }
  }
  Config.Args = fitArgs(P, M);
  Config.Run.Engine = P.Engine;
  applyTraceOpts(Config.Run, P);
  Config.Lint = P.Lint;
  Config.LintWerror = P.LintWerror;
  return runPipeline(M, Config);
}

void emitLintFindings(const Parsed &P, const std::vector<Diagnostic> &Diags) {
  if (P.LintJson) {
    std::fputs(renderDiagnosticsJson(Diags).c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (!Diags.empty()) {
    std::fputs(renderDiagnosticsText(Diags).c_str(), stderr);
  }
}

int cmdProfile(const Parsed &P) {
  auto M = compileOrFail(P.File);
  if (!M)
    return 1;
  PipelineResult R = runPipelineFor(P, *M, /*Overlap=*/true);
  if (P.Lint)
    emitLintFindings(P, R.Lint);
  if (!R.ok()) {
    std::fprintf(stderr, "error: %s\n", R.Errors[0].c_str());
    return 1;
  }

  // The artifact snapshots the pristine module's fingerprint: that is the
  // program a later `profdata show --module` will recompile and bind.
  RunMeta Meta;
  Meta.Workload = P.File;
  Meta.Runs = 1;
  Meta.DynInstrCost = R.InstrCounts.Steps;
  Meta.TimestampUnix = static_cast<uint64_t>(std::time(nullptr));
  ProfileArtifact Artifact =
      ProfileArtifact::fromRuntime(*R.BaseModule, R.MI, *R.Prof, Meta);

  if (!P.Out.empty()) {
    std::string Error;
    if (!writeProfileArtifactFile(P.Out, Artifact, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%llu record(s))\n", P.Out.c_str(),
                 static_cast<unsigned long long>(Artifact.numRecords()));
  }

  // --json and -o compose: the binary artifact and the JSON summary are
  // independent outputs (artifact to the file, JSON to stdout).
  if (P.Json) {
    ArtifactBinding Bind;
    Bind.InstrModule = std::move(R.InstrModule);
    Bind.MI = std::move(R.MI);
    ReportOptions RO;
    RO.TopN = P.Top;
    RO.Json = true;
    std::fputs(renderArtifactReport(Artifact, &Bind, RO).c_str(), stdout);
    return 0;
  }

  std::printf("result %lld, overhead %.1f %%\n\n",
              static_cast<long long>(R.ReturnValue), R.overheadPercent());

  struct Hot {
    std::string Func;
    DecodedEntry D;
  };
  std::vector<Hot> Paths;
  for (uint32_t F = 0; F < R.InstrModule->numFunctions(); ++F)
    for (DecodedEntry &D :
         decodeProfile(*R.MI.Funcs[F].PG, R.Prof->PathCounts[F]))
      Paths.push_back({R.InstrModule->function(F)->Name, std::move(D)});
  std::sort(Paths.begin(), Paths.end(),
            [](const Hot &A, const Hot &B) { return A.D.Count > B.D.Count; });

  TableWriter T({"Count", "Function", "Path", "Overlap Suffix"});
  for (size_t I = 0; I < Paths.size() && I < P.Top; ++I) {
    const DecodedEntry &D = Paths[I].D;
    std::string Blocks, Suffix;
    for (uint32_t B : D.White.Blocks)
      Blocks += "^" + std::to_string(B) + " ";
    for (uint32_t B : D.Suffix)
      Suffix += "^" + std::to_string(B) + " ";
    T.addRow({std::to_string(D.Count), Paths[I].Func, Blocks, Suffix});
  }
  std::fputs(T.renderText().c_str(), stdout);
  return 0;
}

/// `olpp estimate <file> --profile art.olpp`: bounds from a persisted
/// (possibly multi-run) artifact instead of a fresh profiling run. There is
/// no ground truth for an aggregate, so the Real column renders as "-", and
/// the module is instrumented under the artifact's recorded mode, not the
/// estimate default.
int cmdEstimateFromProfile(const Parsed &P) {
  ProfileArtifact A;
  std::vector<Diagnostic> Diags;
  if (!readProfileArtifactFile(P.FromProfile, A, Diags)) {
    std::fputs(renderDiagnosticsText(Diags).c_str(), stderr);
    return 1;
  }
  auto M = compileOrFail(P.File);
  if (!M)
    return 1;
  ArtifactBinding B;
  if (!bindArtifactToModule(*M, A, B, Diags)) {
    std::fputs(renderDiagnosticsText(Diags).c_str(), stderr);
    return 1;
  }
  ModuleEstimator Est(*B.InstrModule, B.MI, A.Counters);

  // --feasibility: facts are computed over the instrumented module (the
  // walker skips probes) and pin statically impossible pairs to zero.
  ModuleSummaries Sums;
  std::unique_ptr<PathFeasibility> PF;
  EstimateMetrics FeasTotal;
  if (P.Feasibility) {
    Sums = computeSummaries(*B.InstrModule);
    PF = std::make_unique<PathFeasibility>(*B.InstrModule, &Sums);
    Est.setFeasibility(PF.get());
  }

  TableWriter T({"Kind", "Where", "Real", "Definite", "Potential",
                 "Exact Pairs"});
  for (uint32_t F = 0; F < B.InstrModule->numFunctions(); ++F) {
    const auto &Meta = B.MI.Funcs[F];
    for (uint32_t L = 0; L < Meta.Loops->numLoops(); ++L) {
      EstimateMetrics Met = Est.estimateLoop(F, L, nullptr);
      FeasTotal.add(Met);
      if (Met.Pairs == 0)
        continue;
      T.addRow({"loop",
                B.InstrModule->function(F)->Name + " ^" +
                    std::to_string(Meta.Loops->loop(L).Header),
                "-", std::to_string(Met.Definite),
                std::to_string(Met.Potential),
                std::to_string(Met.ExactPairs) + "/" +
                    std::to_string(Met.Pairs)});
    }
  }
  for (const CallSiteInfo &CS : B.MI.CallSites) {
    EstimateMetrics MI1 = Est.estimateCallSiteTypeI(CS.CsId, nullptr);
    EstimateMetrics MI2 = Est.estimateCallSiteTypeII(CS.CsId, nullptr);
    FeasTotal.add(MI1);
    FeasTotal.add(MI2);
    if (MI1.Pairs + MI2.Pairs == 0)
      continue;
    std::string Where = B.InstrModule->function(CS.Func)->Name + " -> " +
                        B.InstrModule->function(CS.Callee)->Name;
    if (MI1.Pairs)
      T.addRow({"type I", Where, "-", std::to_string(MI1.Definite),
                std::to_string(MI1.Potential),
                std::to_string(MI1.ExactPairs) + "/" +
                    std::to_string(MI1.Pairs)});
    if (MI2.Pairs)
      T.addRow({"type II", Where, "-", std::to_string(MI2.Definite),
                std::to_string(MI2.Potential),
                std::to_string(MI2.ExactPairs) + "/" +
                    std::to_string(MI2.Pairs)});
  }
  std::printf("interesting-path bounds from %s (%llu run(s), %s):\n\n",
              P.FromProfile.c_str(),
              static_cast<unsigned long long>(A.Meta.Runs),
              instrumentModeString(A.Meta.Instr).c_str());
  std::fputs(T.renderText().c_str(), stdout);
  if (P.Feasibility)
    std::printf("\nfeasibility: %llu pair(s) proven infeasible and pinned "
                "to zero (%llu walker quer%s)\n",
                static_cast<unsigned long long>(FeasTotal.InfeasiblePairs),
                static_cast<unsigned long long>(FeasTotal.FeasibilityQueries),
                FeasTotal.FeasibilityQueries == 1 ? "y" : "ies");
  return 0;
}

int cmdEstimate(const Parsed &P) {
  if (!P.FromProfile.empty())
    return cmdEstimateFromProfile(P);
  auto M = compileOrFail(P.File);
  if (!M)
    return 1;
  Parsed P2 = P;
  P2.Interproc = true; // estimation shows both dimensions
  PipelineResult R = runPipelineFor(P2, *M, /*Overlap=*/true);
  if (!R.ok()) {
    std::fprintf(stderr, "error: %s\n", R.Errors[0].c_str());
    return 1;
  }
  ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);

  ModuleSummaries Sums;
  std::unique_ptr<PathFeasibility> PF;
  EstimateMetrics FeasTotal;
  if (P.Feasibility) {
    Sums = computeSummaries(*R.InstrModule);
    PF = std::make_unique<PathFeasibility>(*R.InstrModule, &Sums);
    Est.setFeasibility(PF.get());
  }

  TableWriter T({"Kind", "Where", "Real", "Definite", "Potential",
                 "Exact Pairs"});
  for (uint32_t F = 0; F < R.InstrModule->numFunctions(); ++F) {
    const auto &Meta = R.MI.Funcs[F];
    for (uint32_t L = 0; L < Meta.Loops->numLoops(); ++L) {
      EstimateMetrics Met = Est.estimateLoop(F, L, &R.GT);
      FeasTotal.add(Met);
      if (Met.Pairs == 0)
        continue;
      T.addRow({"loop",
                R.InstrModule->function(F)->Name + " ^" +
                    std::to_string(Meta.Loops->loop(L).Header),
                std::to_string(Met.Real), std::to_string(Met.Definite),
                std::to_string(Met.Potential),
                std::to_string(Met.ExactPairs) + "/" +
                    std::to_string(Met.Pairs)});
    }
  }
  for (const CallSiteInfo &CS : R.MI.CallSites) {
    EstimateMetrics MI1 = Est.estimateCallSiteTypeI(CS.CsId, &R.GT);
    EstimateMetrics MI2 = Est.estimateCallSiteTypeII(CS.CsId, &R.GT);
    FeasTotal.add(MI1);
    FeasTotal.add(MI2);
    if (MI1.Pairs + MI2.Pairs == 0)
      continue;
    std::string Where = R.InstrModule->function(CS.Func)->Name + " -> " +
                        R.InstrModule->function(CS.Callee)->Name;
    if (MI1.Pairs)
      T.addRow({"type I", Where, std::to_string(MI1.Real),
                std::to_string(MI1.Definite), std::to_string(MI1.Potential),
                std::to_string(MI1.ExactPairs) + "/" +
                    std::to_string(MI1.Pairs)});
    if (MI2.Pairs)
      T.addRow({"type II", Where, std::to_string(MI2.Real),
                std::to_string(MI2.Definite), std::to_string(MI2.Potential),
                std::to_string(MI2.ExactPairs) + "/" +
                    std::to_string(MI2.Pairs)});
  }
  std::printf("interesting-path bounds at overlap degree %u:\n\n", P.Degree);
  std::fputs(T.renderText().c_str(), stdout);
  if (P.Feasibility)
    std::printf("\nfeasibility: %llu pair(s) proven infeasible and pinned "
                "to zero (%llu walker quer%s)\n",
                static_cast<unsigned long long>(FeasTotal.InfeasiblePairs),
                static_cast<unsigned long long>(FeasTotal.FeasibilityQueries),
                FeasTotal.FeasibilityQueries == 1 ? "y" : "ies");
  return 0;
}

//===----------------------------------------------------------------------===//
// olpp opt: artifact-driven profile-guided optimization
//===----------------------------------------------------------------------===//

/// `olpp opt <file> --profile art.olpp [--emit-ir|-o FILE] [--json]`:
/// closes the profile->optimize loop. The artifact is rebound to a pristine
/// compile (fingerprint-checked — a stale artifact is a clean diagnostic,
/// never a partial bind), the hottest interprocedural call paths are
/// inlined and hot backedge-crossing traces become superblocks, and the
/// result is proven out end to end: the verifier accepts it, it
/// re-instruments with a clean instrumentation audit (the optimized module
/// stays profile-able for the next loop iteration), lint finds no errors,
/// and a differential re-run against the baseline confirms the result and
/// reports the dynamic instruction/call savings.
int cmdOpt(const Parsed &P) {
  if (P.FromProfile.empty()) {
    std::fprintf(stderr, "error: olpp opt requires --profile FILE\n");
    return 2;
  }
  ProfileArtifact A;
  std::vector<Diagnostic> Diags;
  if (!readProfileArtifactFile(P.FromProfile, A, Diags)) {
    std::fputs(renderDiagnosticsText(Diags).c_str(), stderr);
    return 1;
  }
  auto M = compileOrFail(P.File);
  if (!M)
    return 1;

  OptOptions OO;
  OptResult R;
  if (!optimizeModule(*M, A, OO, R, Diags)) {
    std::fputs(renderDiagnosticsText(Diags).c_str(), stderr);
    return 1;
  }

  // The optimized module must still take instrumentation cleanly: probes,
  // path graphs and the instrumentation audit all have to work on it, or
  // the profile->optimize->profile loop is broken.
  auto InstrCopy = R.OptModule->clone();
  ModuleInstrumentation MI = instrumentModule(*InstrCopy, A.Meta.Instr);
  if (!MI.ok()) {
    std::fprintf(stderr, "error: optimized module failed instrumentation: %s\n",
                 MI.Errors[0].c_str());
    return 1;
  }
  std::vector<Diagnostic> InstrDiags = checkInstrumentation(*InstrCopy, MI);
  if (!InstrDiags.empty()) {
    std::fputs(renderDiagnosticsText(InstrDiags).c_str(), stderr);
    std::fprintf(stderr, "error: instrumentation audit failed on the "
                         "optimized module\n");
    return 1;
  }
  std::vector<Diagnostic> LintDiags = lintModule(*R.OptModule);
  const bool LintClean = !anySeverityAtLeast(LintDiags, Severity::Error);
  if (!LintClean)
    std::fputs(renderDiagnosticsText(LintDiags).c_str(), stderr);

  // Differential re-run: baseline and optimized must agree on the result,
  // and the optimized module must behave identically under both engines.
  const std::vector<int64_t> Args = fitArgs(P, *M);
  RunConfig RC;
  auto RunOn = [&](const Module &Mod, EngineKind E, RunResult &Out) {
    const Function *Main = Mod.findFunction("main");
    if (!Main) {
      Out.Ok = false;
      Out.Error = "no 'main' function";
      return false;
    }
    Interpreter I(Mod);
    RC.Engine = E;
    std::vector<int64_t> A2 = Args;
    A2.resize(Main->NumParams, 0);
    Out = I.run(*Main, A2, RC);
    return Out.Ok;
  };
  RunResult Base, OptFast, OptRef;
  if (!RunOn(*M, EngineKind::Fast, Base) ||
      !RunOn(*R.OptModule, EngineKind::Fast, OptFast) ||
      !RunOn(*R.OptModule, EngineKind::Reference, OptRef)) {
    std::fprintf(stderr, "runtime error: %s\n",
                 (!Base.Ok ? Base : !OptFast.Ok ? OptFast : OptRef)
                     .Error.c_str());
    return 1;
  }
  const bool Agree = Base.ReturnValue == OptFast.ReturnValue &&
                     OptFast.ReturnValue == OptRef.ReturnValue &&
                     OptFast.Counts == OptRef.Counts;

  if (!P.Out.empty()) {
    std::ofstream OS(P.Out);
    if (!OS || !(OS << printModule(*R.OptModule))) {
      std::fprintf(stderr, "error: cannot write '%s'\n", P.Out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote optimized IR to %s\n", P.Out.c_str());
  }
  if (P.EmitIr)
    std::fputs(printModule(*R.OptModule).c_str(), stdout);

  if (P.Json) {
    std::ostringstream J;
    J << "{\n  \"schema\": \"olpp.opt/v1\",\n";
    J << "  \"artifact\": \"" << jsonEscape(P.FromProfile) << "\",\n";
    J << "  \"runs\": " << A.Meta.Runs << ",\n";
    J << "  \"inlinedSites\": " << R.Stats.InlinedSites << ",\n";
    J << "  \"superblocks\": " << R.Stats.Superblocks << ",\n";
    J << "  \"duplicatedBlocks\": " << R.Stats.DuplicatedBlocks << ",\n";
    J << "  \"mergedBlocks\": " << R.Stats.MergedBlocks << ",\n";
    J << "  \"removedBlocks\": " << R.Stats.RemovedBlocks << ",\n";
    J << "  \"instrCheckClean\": true,\n";
    J << "  \"lintClean\": " << (LintClean ? "true" : "false") << ",\n";
    J << "  \"agree\": " << (Agree ? "true" : "false") << ",\n";
    J << "  \"baselineSteps\": " << Base.Counts.Steps << ",\n";
    J << "  \"optimizedSteps\": " << OptFast.Counts.Steps << ",\n";
    J << "  \"baselineCalls\": " << Base.Counts.Calls << ",\n";
    J << "  \"optimizedCalls\": " << OptFast.Counts.Calls << "\n}\n";
    std::fputs(J.str().c_str(), stdout);
    return Agree && LintClean ? 0 : 1;
  }

  std::printf("opt: %s under %s (%llu run(s), %s)\n", P.File.c_str(),
              P.FromProfile.c_str(),
              static_cast<unsigned long long>(A.Meta.Runs),
              instrumentModeString(A.Meta.Instr).c_str());
  TableWriter T({"Decision", "Where", "Heat", "Applied", "Note"});
  for (const InlineDecision &D : R.Inlines)
    T.addRow({"inline",
              M->function(D.Caller)->Name + " ^" + std::to_string(D.Block) +
                  " -> " + M->function(D.Callee)->Name,
              std::to_string(D.Heat), D.Applied ? "yes" : "no",
              D.SkipReason});
  for (const SuperblockDecision &D : R.Superblocks) {
    std::string Blocks;
    for (uint32_t B : D.Trace)
      Blocks += "^" + std::to_string(B) + " ";
    T.addRow({"superblock", M->function(D.Func)->Name + " " + Blocks,
              std::to_string(D.Count), D.Applied ? "yes" : "no",
              D.SkipReason});
  }
  std::fputs(T.renderText().c_str(), stdout);
  std::printf("\ninlined %u call site(s), %u superblock(s) "
              "(%u duplicated, %u merged, %u removed block(s))\n",
              R.Stats.InlinedSites, R.Stats.Superblocks,
              R.Stats.DuplicatedBlocks, R.Stats.MergedBlocks,
              R.Stats.RemovedBlocks);
  std::printf("verify: clean\ninstr-check: clean\nlint: %s\n",
              LintClean ? "clean" : "errors");
  std::printf("result: baseline %lld, optimized %lld (%s)\n",
              static_cast<long long>(Base.ReturnValue),
              static_cast<long long>(OptFast.ReturnValue),
              Agree ? "agree" : "DISAGREE");
  const double Saved =
      Base.Counts.Steps
          ? 100.0 *
                (static_cast<double>(Base.Counts.Steps) -
                 static_cast<double>(OptFast.Counts.Steps)) /
                static_cast<double>(Base.Counts.Steps)
          : 0.0;
  std::printf("steps: baseline %llu -> optimized %llu (%.1f%% saved)\n",
              static_cast<unsigned long long>(Base.Counts.Steps),
              static_cast<unsigned long long>(OptFast.Counts.Steps), Saved);
  std::printf("calls: baseline %llu -> optimized %llu\n",
              static_cast<unsigned long long>(Base.Counts.Calls),
              static_cast<unsigned long long>(OptFast.Counts.Calls));
  return Agree && LintClean ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// olpp analyze: static value-range / summary / feasibility report
//===----------------------------------------------------------------------===//

int cmdAnalyze(const Parsed &P) {
  auto M = compileOrFail(P.File);
  if (!M)
    return 1;
  ModuleSummaries Sums = computeSummaries(*M);

  struct Row {
    const Function *F = nullptr;
    const FunctionSummary *S = nullptr;
    bool HasPaths = false;
    uint64_t NumPaths = 0;
    FunctionInfeasibility FI;
  };
  std::vector<Row> Rows;
  for (const auto &FPtr : M->functions()) {
    const Function &F = *FPtr;
    Row R;
    R.F = &F;
    R.S = &Sums.summary(F.Id);
    if (F.numBlocks() > 0) {
      CfgView Cfg = CfgView::build(F);
      DomTree Dom = DomTree::compute(Cfg);
      LoopInfo LI = LoopInfo::compute(Cfg, Dom);
      std::string Err;
      if (auto PG = PathGraph::build(F, Cfg, LI, PathGraphOptions{}, Err)) {
        R.HasPaths = true;
        R.NumPaths = PG->numPaths();
        R.FI = computeInfeasiblePaths(F, Cfg, *PG, &Sums);
      }
    }
    Rows.push_back(std::move(R));
  }

  auto GlobalNames = [&](const std::vector<uint32_t> &Ids) {
    std::string Out;
    for (uint32_t G : Ids) {
      if (!Out.empty())
        Out += " ";
      Out += G < M->globals().size() ? M->globals()[G].Name
                                     : "g" + std::to_string(G);
    }
    return Out.empty() ? std::string("-") : Out;
  };

  if (P.Json) {
    std::string J = "{\n  \"schema\": \"olpp.analyze/v1\",\n"
                    "  \"module\": \"" + jsonEscape(P.File) + "\",\n"
                    "  \"functions\": [";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      const FunctionSummary &S = *R.S;
      J += I ? ",\n    {" : "\n    {";
      J += "\"name\": \"" + jsonEscape(R.F->Name) + "\"";
      J += ", \"params\": " + std::to_string(R.F->NumParams);
      J += std::string(", \"pure\": ") + (S.SideEffectFree ? "true" : "false");
      J += std::string(", \"recursive\": ") + (S.Recursive ? "true" : "false");
      J += std::string(", \"indirect\": ") +
           (S.TransitivelyIndirect ? "true" : "false");
      auto IdList = [](const std::vector<uint32_t> &Ids) {
        std::string L = "[";
        for (size_t K = 0; K < Ids.size(); ++K) {
          if (K)
            L += ", ";
          L += std::to_string(Ids[K]);
        }
        return L + "]";
      };
      J += ", \"globalsRead\": " + IdList(S.GlobalsRead);
      J += ", \"globalsWritten\": " + IdList(S.GlobalsWritten);
      J += ", \"returnRange\": \"" + jsonEscape(S.Return.str()) + "\"";
      J += std::string(", \"returnsVoid\": ") + (S.ReturnsVoid ? "true" : "false");
      if (R.HasPaths) {
        J += ", \"paths\": " + std::to_string(R.NumPaths);
        J += ", \"infeasiblePaths\": " + std::to_string(R.FI.InfeasibleIds);
        J += std::string(", \"exhausted\": ") +
             (R.FI.Exhausted ? "true" : "false");
        J += ", \"infeasibleIntervals\": [";
        for (size_t K = 0; K < R.FI.Intervals.size(); ++K) {
          if (K)
            J += ", ";
          J += "[" + std::to_string(R.FI.Intervals[K].Lo) + ", " +
               std::to_string(R.FI.Intervals[K].Hi) + "]";
        }
        J += "]";
      } else {
        J += ", \"paths\": null";
      }
      J += "}";
    }
    J += "\n  ]\n}\n";
    std::fputs(J.c_str(), stdout);
    return 0;
  }

  TableWriter T({"Function", "Pure", "Rec", "Globals Read", "Globals Written",
                 "Return Range", "Paths", "Infeasible"});
  for (const Row &R : Rows) {
    const FunctionSummary &S = *R.S;
    std::string Ret = S.ReturnsVoid ? "void" : S.Return.str();
    if (S.TransitivelyIndirect)
      Ret += " (indirect)";
    std::string Paths = R.HasPaths ? std::to_string(R.NumPaths) : "-";
    std::string Inf = "-";
    if (R.HasPaths) {
      Inf = std::to_string(R.FI.InfeasibleIds);
      if (R.FI.Exhausted)
        Inf += "+";
    }
    T.addRow({R.F->Name, S.SideEffectFree ? "yes" : "no",
              S.Recursive ? "yes" : "no", GlobalNames(S.GlobalsRead),
              GlobalNames(S.GlobalsWritten), Ret, Paths, Inf});
  }
  std::fputs(T.renderText().c_str(), stdout);
  uint64_t TotalPaths = 0, TotalInf = 0;
  for (const Row &R : Rows) {
    TotalPaths += R.NumPaths;
    TotalInf += R.FI.InfeasibleIds;
  }
  std::printf("\n%llu of %llu acyclic path id(s) statically infeasible\n",
              static_cast<unsigned long long>(TotalInf),
              static_cast<unsigned long long>(TotalPaths));
  return 0;
}

/// Lints \p M and audits a fully instrumented clone (loop overlap plus
/// interprocedural regions at \p Degree) against its metadata.
std::vector<Diagnostic> lintAndCheck(const Module &M, uint32_t Degree) {
  std::vector<Diagnostic> Diags = lintModule(M);
  std::vector<Diagnostic> Feas = lintInfeasiblePaths(M);
  Diags.insert(Diags.end(), Feas.begin(), Feas.end());

  InstrumentOptions Opts;
  Opts.LoopOverlap = true;
  Opts.LoopDegree = Degree;
  Opts.Interproc = true;
  Opts.InterprocDegree = Degree;
  auto Clone = M.clone();
  ModuleInstrumentation MI = instrumentModule(*Clone, Opts);
  if (!MI.ok()) {
    for (const std::string &E : MI.Errors)
      Diags.push_back(makeDiag(Severity::Error, "instrument", "", E));
    return Diags;
  }
  std::vector<Diagnostic> Verify = verifyModuleDiags(*Clone);
  Diags.insert(Diags.end(), Verify.begin(), Verify.end());
  std::vector<Diagnostic> Check = checkInstrumentation(*Clone, MI);
  Diags.insert(Diags.end(), Check.begin(), Check.end());
  return Diags;
}

int cmdLint(const Parsed &P) {
  std::vector<std::string> Files;
  if (P.All)
    for (const Workload &W : allWorkloads())
      Files.push_back(W.Name);
  else
    Files.push_back(P.File);

  std::vector<Diagnostic> Diags;
  for (const std::string &File : Files) {
    auto M = compileOrFail(File);
    if (!M)
      return 2;
    std::vector<Diagnostic> D = lintAndCheck(*M, P.Degree);
    Diags.insert(Diags.end(), D.begin(), D.end());
  }
  Parsed PL = P; // for lint, --json means the findings themselves
  PL.LintJson |= P.Json;
  emitLintFindings(PL, Diags);
  Severity Min = P.LintWerror ? Severity::Warning : Severity::Error;
  if (anySeverityAtLeast(Diags, Min))
    return 1;
  if (!PL.LintJson)
    std::printf("%zu file(s) clean (%zu finding(s) below threshold)\n",
                Files.size(), Diags.size());
  return 0;
}

//===----------------------------------------------------------------------===//
// olpp profdata: persistent .olpp profile artifacts
//===----------------------------------------------------------------------===//

int profdataFail(const std::vector<Diagnostic> &Diags) {
  std::fputs(renderDiagnosticsText(Diags).c_str(), stderr);
  return 1;
}

/// Expands `@listfile` and `-` (stdin) positionals into artifact paths, one
/// per non-blank line, so fleet-sized merges are not bounded by argv limits.
bool expandArtifactInputs(const std::vector<std::string> &Raw,
                          std::vector<std::string> &Out) {
  for (const std::string &R : Raw) {
    if (R == "-" || (R.size() > 1 && R[0] == '@')) {
      std::ifstream FileIn;
      std::istream *In = &std::cin;
      if (R != "-") {
        FileIn.open(R.substr(1));
        if (!FileIn) {
          std::fprintf(stderr, "error: cannot open list file '%s'\n",
                       R.c_str() + 1);
          return false;
        }
        In = &FileIn;
      }
      std::string Line;
      while (std::getline(*In, Line)) {
        while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' '))
          Line.pop_back();
        if (!Line.empty())
          Out.push_back(Line);
      }
    } else {
      Out.push_back(R);
    }
  }
  return true;
}

int cmdProfdataMerge(const Parsed &P) {
  std::vector<std::string> Raw;
  if (!P.File.empty())
    Raw.push_back(P.File);
  Raw.insert(Raw.end(), P.ExtraFiles.begin(), P.ExtraFiles.end());
  std::vector<std::string> Inputs;
  if (!expandArtifactInputs(Raw, Inputs))
    return 2;
  if (Inputs.empty()) {
    std::fprintf(stderr,
                 "error: profdata merge needs at least one input artifact\n");
    return 2;
  }
  if (P.Out.empty()) {
    std::fprintf(stderr, "error: profdata merge requires -o OUT\n");
    return 2;
  }
  std::vector<Diagnostic> Diags;
  ProfileArtifact Acc;
  // Folding from an empty accumulator applies --weight uniformly to every
  // input, the first included.
  for (size_t I = 0; I < Inputs.size(); ++I) {
    ProfileArtifact A;
    if (!readProfileArtifactFile(Inputs[I], A, Diags)) {
      std::fprintf(stderr, "error: reading '%s':\n", Inputs[I].c_str());
      return profdataFail(Diags);
    }
    if (I == 0)
      Acc = makeEmptyLike(A);
    MergeOptions MO;
    MO.Weight = P.Weight;
    if (!mergeArtifacts(Acc, A, Diags, MO)) {
      std::fprintf(stderr, "error: merging '%s':\n", Inputs[I].c_str());
      return profdataFail(Diags);
    }
  }
  std::string Error;
  if (!writeProfileArtifactFile(P.Out, Acc, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("merged %zu artifact(s) into %s: %llu run(s), %llu record(s), "
              "total flow %llu\n",
              Inputs.size(), P.Out.c_str(),
              static_cast<unsigned long long>(Acc.Meta.Runs),
              static_cast<unsigned long long>(Acc.numRecords()),
              static_cast<unsigned long long>(Acc.totalPathCount()));
  return 0;
}

int cmdProfdataShow(const Parsed &P) {
  std::vector<Diagnostic> Diags;
  ProfileArtifact A;
  if (!readProfileArtifactFile(P.File, A, Diags))
    return profdataFail(Diags);

  ArtifactBinding Bind;
  const ArtifactBinding *BindPtr = nullptr;
  if (!P.ModuleFile.empty()) {
    // An explicitly named module must bind, or the report would be built on
    // a mismatched program.
    auto M = compileOrFail(P.ModuleFile);
    if (!M)
      return 1;
    if (!bindArtifactToModule(*M, A, Bind, Diags))
      return profdataFail(Diags);
    BindPtr = &Bind;
  } else if (findWorkload(A.Meta.Workload)) {
    // The artifact records an embedded workload: bind opportunistically so
    // plain `profdata show art.olpp` already reports solver bounds.
    if (auto M = compileOrFail(A.Meta.Workload)) {
      std::vector<Diagnostic> BindDiags;
      if (bindArtifactToModule(*M, A, Bind, BindDiags))
        BindPtr = &Bind;
      else
        std::fprintf(stderr,
                     "note: workload '%s' no longer matches the artifact; "
                     "showing without bounds\n",
                     A.Meta.Workload.c_str());
    }
  }

  ReportOptions RO;
  RO.TopN = P.Top;
  RO.Json = P.Json;
  RO.WithBounds = !P.NoBounds;
  std::fputs(renderArtifactReport(A, BindPtr, RO).c_str(), stdout);
  return 0;
}

int cmdProfdataDiff(const Parsed &P) {
  if (P.ExtraFiles.empty()) {
    std::fprintf(stderr, "error: profdata diff needs two artifacts\n");
    return 2;
  }
  std::vector<Diagnostic> Diags;
  ProfileArtifact A, B;
  if (!readProfileArtifactFile(P.File, A, Diags) ||
      !readProfileArtifactFile(P.ExtraFiles[0], B, Diags))
    return profdataFail(Diags);
  DiffOptions DO;
  DO.TopN = P.Top;
  DO.Json = P.Json;
  std::fputs(
      renderArtifactDiff(A, B, P.File, P.ExtraFiles[0], DO).c_str(),
      stdout);
  return 0;
}

int cmdProfdataExport(const Parsed &P) {
  std::vector<Diagnostic> Diags;
  ProfileArtifact A;
  if (!readProfileArtifactFile(P.File, A, Diags))
    return profdataFail(Diags);
  std::string Json = renderArtifactJson(A);
  if (P.Out.empty()) {
    std::fputs(Json.c_str(), stdout);
    return 0;
  }
  std::ofstream OS(P.Out);
  if (!OS || !(OS << Json)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", P.Out.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", P.Out.c_str());
  return 0;
}

int cmdProfdata(const std::string &Sub, const Parsed &P) {
  if (Sub == "merge")
    return cmdProfdataMerge(P);
  if (P.File.empty())
    return usage();
  if (Sub == "show")
    return cmdProfdataShow(P);
  if (Sub == "diff")
    return cmdProfdataDiff(P);
  if (Sub == "export")
    return cmdProfdataExport(P);
  return usage();
}

//===----------------------------------------------------------------------===//
// olpp bench: parallel engine benchmark over the workload suite
//===----------------------------------------------------------------------===//

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// One workload prepared for benching: its instrumented module plus the
/// metadata needed to run, check and estimate it.
struct BenchItem {
  const Workload *W = nullptr;
  std::unique_ptr<Module> M; // instrumented in place
  ModuleInstrumentation MI;
  std::vector<int64_t> Args;
  WorkloadBench Row;
  int64_t ReturnValue = 0;
  std::string Error; // non-empty: the item failed
};

/// Configures \p Prof's dense path stores from \p MI.
void configureStores(ProfileRuntime &Prof, const Module &M,
                     const ModuleInstrumentation &MI) {
  for (uint32_t F = 0; F < M.numFunctions(); ++F)
    if (MI.Funcs[F].PG)
      Prof.configurePathStore(F, MI.Funcs[F].PG->numPaths());
}

/// Compiles, instruments, times both engines, cross-checks them, and runs
/// the estimation stack under both solvers. Returns false on failure with
/// Item.Error set.
bool benchOneWorkload(BenchItem &Item, const Parsed &P) {
  const bool Smoke = P.Smoke;
  CompileResult CR = compileMiniC(Item.W->Source);
  if (!CR.ok()) {
    Item.Error = "compile failed:\n" + CR.diagText();
    return false;
  }
  Item.M = std::move(CR.M);

  InstrumentOptions Opts;
  Opts.LoopOverlap = true;
  Opts.LoopDegree = 2;
  Opts.Interproc = true;
  Opts.InterprocDegree = 2;
  Item.MI = instrumentModule(*Item.M, Opts);
  if (!Item.MI.ok()) {
    Item.Error = "instrumentation failed: " + Item.MI.Errors[0];
    return false;
  }

  const Function *Main = Item.M->findFunction("main");
  if (!Main) {
    Item.Error = "no 'main' function";
    return false;
  }
  Item.Args = Smoke ? Item.W->PrecisionArgs : Item.W->OverheadArgs;
  Item.Args.resize(Main->NumParams, 0);

  RunConfig RC;
  RC.MaxSteps = 2'000'000'000;
  applyTraceOpts(RC, P);

  auto TimedRun = [&](EngineKind E, ProfileRuntime &Prof, EngineSample &S,
                      RunResult &Out) {
    Interpreter I(*Item.M, &Prof);
    RC.Engine = E;
    auto T0 = std::chrono::steady_clock::now();
    Out = I.run(*Main, Item.Args, RC);
    S.WallSeconds = secondsSince(T0);
    S.Steps = Out.Counts.Steps;
    S.StepsPerSec = S.WallSeconds > 0
                        ? static_cast<double>(S.Steps) / S.WallSeconds
                        : 0.0;
    if (!Out.Ok)
      Item.Error = std::string(engineKindName(E)) + " run failed: " +
                   Out.Error;
    return Out.Ok;
  };

  ProfileRuntime ProfRef(Item.M->numFunctions());
  ProfileRuntime ProfFast(Item.M->numFunctions());
  configureStores(ProfRef, *Item.M, Item.MI);
  configureStores(ProfFast, *Item.M, Item.MI);

  // --profile: pre-heat the fast engine's tracing tier from a persisted
  // artifact so hot paths record without warmup. The artifact names one
  // module; workloads it does not match simply run unseeded (the bind
  // failure is expected, not an error). Only the fast runtime is seeded:
  // the reference engine has no tracing tier, and traces never change
  // counters, so the cross-checks below still hold.
  if (!P.FromProfile.empty()) {
    ProfileArtifact Art;
    std::vector<Diagnostic> ArtDiags;
    CompileResult Pristine = compileMiniC(Item.W->Source);
    ArtifactBinding Bind;
    if (readProfileArtifactFile(P.FromProfile, Art, ArtDiags) &&
        Pristine.ok() &&
        bindArtifactToModule(*Pristine.M, Art, Bind, ArtDiags))
      seedTraceTier(ProfFast, collectHotLoopPaths(Art, Bind.MI,
                                                  /*MinCount=*/1,
                                                  /*MaxSeeds=*/64));
  }

  RunResult RRef, RFast;
  if (!TimedRun(EngineKind::Reference, ProfRef, Item.Row.Reference, RRef) ||
      !TimedRun(EngineKind::Fast, ProfFast, Item.Row.Fast, RFast))
    return false;
  Item.ReturnValue = RFast.ReturnValue;

  // The harness double-checks observation equivalence on every batch: the
  // engines must agree on the result, the cost model and every counter.
  if (!(RRef.Counts == RFast.Counts) ||
      RRef.ReturnValue != RFast.ReturnValue) {
    Item.Error = "engines disagree on DynCounts or the result";
    return false;
  }
  for (uint32_t F = 0; F < Item.M->numFunctions(); ++F)
    if (ProfRef.PathCounts[F] != ProfFast.PathCounts[F]) {
      Item.Error = "engines disagree on path counters of function " +
                   Item.M->function(F)->Name;
      return false;
    }
  if (ProfRef.TypeICounts != ProfFast.TypeICounts ||
      ProfRef.TypeIICounts != ProfFast.TypeIICounts) {
    Item.Error = "engines disagree on interprocedural counters";
    return false;
  }
  Item.Row.Speedup =
      Item.Row.Reference.WallSeconds > 0 && Item.Row.Fast.WallSeconds > 0
          ? Item.Row.Reference.WallSeconds / Item.Row.Fast.WallSeconds
          : 0.0;

  // Tracing-tier activity of the (single) fast run.
  Item.Row.TracesRecorded = RFast.Trace.Recorded;
  Item.Row.TraceStepPercent =
      RFast.Counts.Steps > 0
          ? 100.0 * static_cast<double>(RFast.Trace.TraceSteps) /
                static_cast<double>(RFast.Counts.Steps)
          : 0.0;
  Item.Row.DeoptRate = RFast.Trace.Enters > 0
                           ? static_cast<double>(RFast.Trace.Deopts) /
                                 static_cast<double>(RFast.Trace.Enters)
                           : 0.0;

  // Interval-solver effort, worklist vs the sweep oracle, on the real
  // estimation systems of this workload's profile.
  ModuleEstimator Est(*Item.M, Item.MI, ProfFast);
  auto RunSolvers = [&](SolverImpl Impl) {
    setThreadSolverImpl(Impl);
    EstimateMetrics Met = Est.estimateLoops(nullptr);
    if (Item.MI.Opts.CallBreaking) {
      Met.add(Est.estimateTypeI(nullptr));
      Met.add(Est.estimateTypeII(nullptr));
    }
    setThreadSolverImpl(SolverImpl::Worklist);
    return Met;
  };
  EstimateMetrics Worklist = RunSolvers(SolverImpl::Worklist);
  EstimateMetrics Sweep = RunSolvers(SolverImpl::Sweep);
  Item.Row.SolverEvaluationsWorklist = Worklist.SolverEvaluations;
  Item.Row.SolverEvaluationsSweep = Sweep.SolverEvaluations;
  Item.Row.SolverConverged = Worklist.SolverConverged && Sweep.SolverConverged;
  if (Worklist.Definite != Sweep.Definite ||
      Worklist.Potential != Sweep.Potential ||
      Worklist.ExactPairs != Sweep.ExactPairs) {
    Item.Error = "worklist and sweep solvers disagree on the bounds";
    return false;
  }
  return true;
}

/// Re-profiles \p Item Reps times across a task pool, each worker slot
/// owning a private counter shard (interp/ShardedProfile.h), tree-merges
/// the shards at the end and verifies the result against the single-run
/// profile. With a non-empty \p EmitDir, every shard is also serialized as
/// its own .olpp artifact (before the merge clears it), the artifacts are
/// merged at the artifact level and cross-checked bit-for-bit against the
/// in-memory merge, and the merged artifact is written and read back.
/// Returns false with Item.Error set on any mismatch.
bool benchParallelMerge(BenchItem &Item, unsigned Jobs, unsigned Reps,
                        const std::string &EmitDir) {
  const Function *Main = Item.M->findFunction("main");
  unsigned Workers = Jobs == 0 ? defaultJobCount() : Jobs;
  if (Workers > Reps)
    Workers = Reps; // no point owning a shard that never counts
  TaskPool Pool(Workers);
  ShardedProfile Shards(Item.M->numFunctions(), Workers);
  for (unsigned T = 0; T < Workers; ++T)
    configureStores(Shards.shard(T), *Item.M, Item.MI);

  RunConfig RC;
  RC.MaxSteps = 2'000'000'000;
  std::mutex ErrorMu;
  std::vector<uint64_t> SlotRuns(Workers, 0), SlotSteps(Workers, 0);
  // Slot (not thread) identity indexes the shard: parallelFor guarantees a
  // slot never runs concurrently with itself, so each shard has exactly one
  // writer and the probe hot path stays free of atomics.
  Pool.parallelFor(Reps, [&](size_t, unsigned Slot) {
    Interpreter I(*Item.M, &Shards.shard(Slot));
    RunResult R = I.run(*Main, Item.Args, RC);
    SlotRuns[Slot] += 1;
    SlotSteps[Slot] += R.Counts.Steps;
    if (!R.Ok || R.ReturnValue != Item.ReturnValue) {
      std::lock_guard<std::mutex> Lock(ErrorMu);
      Item.Error = "parallel batch run failed: " +
                   (R.Ok ? "result mismatch" : R.Error);
    }
  });
  if (!Item.Error.empty())
    return false;

  // Shard artifacts must be emitted now: merge() below clears the shards
  // it folds away. The fingerprint comes from a pristine recompile — Item.M
  // was instrumented in place, and an artifact names the program a later
  // `profdata show --module` will bind against.
  std::vector<ProfileArtifact> ShardArts;
  std::unique_ptr<Module> Pristine;
  uint64_t Stamp = 0;
  if (!EmitDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(EmitDir, EC);
    if (EC) {
      Item.Error = "cannot create '" + EmitDir + "': " + EC.message();
      return false;
    }
    CompileResult CR = compileMiniC(Item.W->Source);
    if (!CR.ok()) {
      Item.Error = "recompile for artifact emission failed";
      return false;
    }
    Pristine = std::move(CR.M);
    Stamp = static_cast<uint64_t>(std::time(nullptr));
    for (unsigned T = 0; T < Workers; ++T) {
      RunMeta Meta;
      Meta.Workload = Item.W->Name;
      Meta.Runs = SlotRuns[T];
      Meta.DynInstrCost = SlotSteps[T];
      Meta.TimestampUnix = Stamp;
      ShardArts.push_back(ProfileArtifact::fromRuntime(
          *Pristine, Item.MI, Shards.shard(T), Meta));
      std::string Path = EmitDir + "/" + Item.W->Name + ".shard" +
                         std::to_string(T) + ".olpp";
      std::string Error;
      if (!writeProfileArtifactFile(Path, ShardArts.back(), Error)) {
        Item.Error = Error;
        return false;
      }
    }
  }

  ProfileRuntime &Merged = Shards.merge(&Pool);

  if (!EmitDir.empty()) {
    // Merging the per-shard artifacts must be bit-identical to the
    // in-memory tree merge of the shards themselves.
    std::vector<Diagnostic> Diags;
    ProfileArtifact Acc = makeEmptyLike(ShardArts[0]);
    for (const ProfileArtifact &SA : ShardArts)
      if (!mergeArtifacts(Acc, SA, Diags)) {
        Item.Error = "artifact merge rejected: " + Diags[0].Message;
        return false;
      }
    uint64_t TotalSteps = 0;
    for (uint64_t S : SlotSteps)
      TotalSteps += S;
    RunMeta Meta;
    Meta.Workload = Item.W->Name;
    Meta.Runs = Reps;
    Meta.DynInstrCost = TotalSteps;
    Meta.TimestampUnix = Stamp;
    ProfileArtifact FromMemory =
        ProfileArtifact::fromRuntime(*Pristine, Item.MI, Merged, Meta);
    std::string FirstDiff;
    if (!artifactsEqual(Acc, FromMemory, &FirstDiff)) {
      Item.Error =
          "artifact-level merge diverges from in-memory merge: " + FirstDiff;
      return false;
    }
    std::string Path = EmitDir + "/" + Item.W->Name + ".olpp";
    std::string Error;
    if (!writeProfileArtifactFile(Path, Acc, Error)) {
      Item.Error = Error;
      return false;
    }
    ProfileArtifact Back;
    if (!readProfileArtifactFile(Path, Back, Diags) ||
        !artifactsEqual(Acc, Back, &FirstDiff)) {
      Item.Error = "merged artifact failed read-back: " +
                   (FirstDiff.empty() ? "decode rejected" : FirstDiff);
      return false;
    }
  }

  // Runs are deterministic, so the merged profile must be exactly Reps
  // times the single-run profile — clamped where the sum saturates, which
  // is what Reps saturating adds of C converge to.
  auto Scaled = [&](uint64_t C) {
    constexpr uint64_t Max = std::numeric_limits<uint64_t>::max();
    return C != 0 && C > Max / Reps ? Max : C * Reps;
  };
  ProfileRuntime Single(Item.M->numFunctions());
  configureStores(Single, *Item.M, Item.MI);
  {
    Interpreter I(*Item.M, &Single);
    RunResult R = I.run(*Main, Item.Args, RC);
    if (!R.Ok) {
      Item.Error = "merge-check run failed: " + R.Error;
      return false;
    }
  }
  for (uint32_t F = 0; F < Item.M->numFunctions(); ++F) {
    if (Merged.PathCounts[F].size() != Single.PathCounts[F].size()) {
      Item.Error = "merged profile has wrong path-counter support";
      return false;
    }
    for (const auto &[Id, Count] : Single.PathCounts[F])
      if (Merged.PathCounts[F].lookup(Id) != Scaled(Count)) {
        Item.Error = "merged path counter mismatch in function " +
                     Item.M->function(F)->Name;
        return false;
      }
  }
  for (const auto &[Key, Count] : Single.TypeICounts)
    if (Merged.TypeICounts.lookup(Key) != Scaled(Count)) {
      Item.Error = "merged Type I counter mismatch";
      return false;
    }
  for (const auto &[Key, Count] : Single.TypeIICounts)
    if (Merged.TypeIICounts.lookup(Key) != Scaled(Count)) {
      Item.Error = "merged Type II counter mismatch";
      return false;
    }
  if (Merged.TypeICounts.size() != Single.TypeICounts.size() ||
      Merged.TypeIICounts.size() != Single.TypeIICounts.size()) {
    Item.Error = "merged interprocedural support mismatch";
    return false;
  }
  return true;
}

int cmdBench(const Parsed &P) {
  if (!P.Validate.empty()) {
    std::string Text;
    if (!readSource(P.Validate, Text))
      return 1;
    std::string Error;
    // Sniffs the schema tag: accepts any of the six report schemas.
    if (!validateBenchJson(Text, Error)) {
      std::fprintf(stderr, "%s: invalid: %s\n", P.Validate.c_str(),
                   Error.c_str());
      return 1;
    }
    const char *Schema = EngineBenchSchema;
    for (const char *Tag : {PipelineBenchSchema, ProfdataBenchSchema,
                            AnalyzeBenchSchema, OptBenchSchema,
                            ServeBenchSchema})
      if (Text.find(Tag) != std::string::npos)
        Schema = Tag;
    std::printf("%s: valid %s report\n", P.Validate.c_str(), Schema);
    return 0;
  }

  static const char *SmokeSet[] = {"mcf", "li", "go"};
  std::vector<BenchItem> Items;
  for (const Workload &W : allWorkloads()) {
    if (!P.File.empty() && W.Name != P.File)
      continue;
    if (P.Smoke &&
        std::find_if(std::begin(SmokeSet), std::end(SmokeSet),
                     [&](const char *N) { return W.Name == N; }) ==
            std::end(SmokeSet))
      continue;
    BenchItem Item;
    Item.W = &W;
    Item.Row.Name = W.Name;
    Items.push_back(std::move(Item));
  }
  if (Items.empty()) {
    std::fprintf(stderr, "error: no workload matches '%s'\n",
                 P.File.c_str());
    return 1;
  }

  unsigned Jobs = P.Jobs == 0 ? defaultJobCount() : P.Jobs;
  std::printf("benching %zu workload(s) on %u thread(s)...\n", Items.size(),
              Jobs);
  auto T0 = std::chrono::steady_clock::now();

  // Phase 1: each workload measured under both engines, in parallel.
  parallelFor(Items.size(), Jobs,
              [&](size_t I, unsigned) { benchOneWorkload(Items[I], P); });
  for (const BenchItem &Item : Items)
    if (!Item.Error.empty()) {
      std::fprintf(stderr, "error: workload %s: %s\n", Item.W->Name.c_str(),
                   Item.Error.c_str());
      return 1;
    }

  // Phase 2: parallel profile collection with per-thread runtimes, merged
  // at the end and checked against a single sequential run.
  unsigned Reps = std::max(2u, std::min(Jobs, 4u));
  for (BenchItem &Item : Items)
    if (!benchParallelMerge(Item, Jobs, Reps, P.EmitProfdata)) {
      std::fprintf(stderr, "error: workload %s: %s\n", Item.W->Name.c_str(),
                   Item.Error.c_str());
      return 1;
    }

  EngineBenchReport Report;
  Report.Jobs = Jobs;
  Report.WallSeconds = secondsSince(T0);
  for (BenchItem &Item : Items)
    Report.Workloads.push_back(std::move(Item.Row));

  TableWriter T({"Workload", "Ref steps/s", "Fast steps/s", "Speedup",
                 "Traces", "Trace steps", "Solver evals (worklist/sweep)"});
  for (const WorkloadBench &W : Report.Workloads) {
    char RefS[32], FastS[32], Sp[32], TrPct[32];
    std::snprintf(RefS, sizeof(RefS), "%.3g", W.Reference.StepsPerSec);
    std::snprintf(FastS, sizeof(FastS), "%.3g", W.Fast.StepsPerSec);
    std::snprintf(Sp, sizeof(Sp), "%.2fx", W.Speedup);
    std::snprintf(TrPct, sizeof(TrPct), "%.1f%%", W.TraceStepPercent);
    T.addRow({W.Name, RefS, FastS, Sp, std::to_string(W.TracesRecorded),
              TrPct,
              std::to_string(W.SolverEvaluationsWorklist) + "/" +
                  std::to_string(W.SolverEvaluationsSweep)});
  }
  std::fputs(T.renderText().c_str(), stdout);
  std::printf("geomean speedup %.2fx, batch wall %.2fs\n",
              Report.geomeanSpeedup(), Report.WallSeconds);

  if (!P.EmitProfdata.empty())
    std::printf("wrote per-shard and merged .olpp artifacts to %s\n",
                P.EmitProfdata.c_str());

  const std::string OutPath = P.Out.empty() ? "BENCH_engine.json" : P.Out;
  std::string Error;
  if (!writeEngineBenchJson(OutPath, Report, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::string Rendered = renderEngineBenchJson(Report);
  if (!validateEngineBenchJson(Rendered, Error)) {
    std::fprintf(stderr, "internal error: emitted report is invalid: %s\n",
                 Error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}

int cmdFuzz(const Parsed &P) {
  FuzzOptions FO;
  FO.NumSeeds = P.Seeds;
  FO.Shrink = P.Shrink;
  FO.Jobs = P.Jobs;
  if (P.HasFuzzSeed) {
    FO.SeedBase = P.FuzzSeed;
    FO.NumSeeds = 1;
  }
  DifferentialRunner Runner(FO);
  FuzzReport Rep = Runner.run();
  if (P.LintJson || P.Json)
    std::fputs(renderDiagnosticsJson(Rep.toDiagnostics()).c_str(), stdout);
  else
    std::fputs(Rep.str().c_str(), stdout);
  return Rep.ok() ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// olpp serve / serve-bench: fleet-scale streaming profile aggregation
//===----------------------------------------------------------------------===//

volatile std::sig_atomic_t ServeStopFlag = 0;
void serveStopHandler(int) { ServeStopFlag = 1; }

int cmdServe(const Parsed &P) {
  serve::ServeConfig SC;
  if (P.Shards)
    SC.Shards = P.Shards;
  serve::ShardStore Store(SC);
  TaskPool Pool(P.Jobs);
  serve::Server Server(Store, Pool,
                       P.Port < 0 ? 0 : static_cast<uint16_t>(P.Port));
  std::string Err;
  if (!Server.start(Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  // The "listening on" line is the readiness signal scripts poll for; flush
  // so it is visible even through a pipe.
  std::printf("olpp serve: listening on 127.0.0.1:%u (shards=%u, jobs=%u)\n",
              static_cast<unsigned>(Server.port()),
              static_cast<unsigned>(SC.Shards), Pool.numWorkers());
  std::fflush(stdout);
  ServeStopFlag = 0;
  std::signal(SIGINT, serveStopHandler);
  std::signal(SIGTERM, serveStopHandler);
  while (!ServeStopFlag)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Server.stop();
  std::printf("olpp serve: shut down; %s\n", Store.statsJson().c_str());
  return 0;
}

/// Loads the positional .olpp files and expands each into \p Derive weighted
/// variants (weight i scales every counter and sums Runs i times, so every
/// variant serializes to distinct bytes) — a corpus big enough to exercise
/// the shard trees without shipping thousands of files.
bool buildUploadCorpus(const std::vector<std::string> &Files, unsigned Derive,
                       std::vector<std::string> &Corpus) {
  if (Derive == 0)
    Derive = 1;
  for (const std::string &F : Files) {
    ProfileArtifact A;
    std::vector<Diagnostic> Diags;
    if (!readProfileArtifactFile(F, A, Diags)) {
      std::fprintf(stderr, "error: reading '%s':\n", F.c_str());
      std::fputs(renderDiagnosticsText(Diags).c_str(), stderr);
      return false;
    }
    Corpus.push_back(serializeProfileArtifact(A));
    for (unsigned V = 2; V <= Derive; ++V) {
      ProfileArtifact W = makeEmptyLike(A);
      MergeOptions MO;
      MO.Weight = V;
      if (!mergeArtifacts(W, A, Diags, MO)) {
        std::fprintf(stderr, "error: deriving variant %u of '%s':\n", V,
                     F.c_str());
        std::fputs(renderDiagnosticsText(Diags).c_str(), stderr);
        return false;
      }
      Corpus.push_back(serializeProfileArtifact(W));
    }
  }
  return true;
}

int cmdServeBench(const Parsed &P) {
  if (P.Port < 0) {
    std::fprintf(stderr, "error: serve-bench requires --port P\n");
    return 2;
  }
  std::vector<std::string> Raw;
  if (!P.File.empty())
    Raw.push_back(P.File);
  Raw.insert(Raw.end(), P.ExtraFiles.begin(), P.ExtraFiles.end());
  std::vector<std::string> Files;
  if (!expandArtifactInputs(Raw, Files))
    return 2;
  if (Files.empty()) {
    std::fprintf(stderr,
                 "error: serve-bench needs at least one input artifact\n");
    return 2;
  }
  std::vector<std::string> Corpus;
  if (!buildUploadCorpus(Files, P.Derive, Corpus))
    return 1;

  serve::FleetOptions FO;
  FO.Host = P.Host;
  FO.Port = static_cast<uint16_t>(P.Port);
  FO.Clients = P.Clients ? P.Clients : 1;
  FO.UploadsPerClient = P.Uploads ? P.Uploads : 1;
  FO.Verify = !P.NoVerify;
  serve::FleetReport R;
  std::string Err;
  if (!serve::runUploadFleet(FO, Corpus, R, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  double Secs = R.WallSeconds > 0 ? R.WallSeconds : 1e-9;
  std::printf("serve-bench: %llu upload(s) (%llu rejected) from %u client(s) "
              "in %.3fs\n",
              static_cast<unsigned long long>(R.Uploads),
              static_cast<unsigned long long>(R.Rejected), FO.Clients,
              R.WallSeconds);
  std::printf("  throughput: %.0f uploads/s, %.2f MB/s\n", R.Uploads / Secs,
              R.Bytes / Secs / (1024.0 * 1024.0));
  std::printf("  latency us: p50 %.0f  p95 %.0f  p99 %.0f\n",
              serve::percentileUs(R.LatenciesUs, 50.0),
              serve::percentileUs(R.LatenciesUs, 95.0),
              serve::percentileUs(R.LatenciesUs, 99.0));
  if (FO.Verify)
    std::printf("  snapshot: epoch %llu, fingerprint %016llx, %llu bytes, "
                "bit-identity %s\n",
                static_cast<unsigned long long>(R.SnapshotEpoch),
                static_cast<unsigned long long>(R.Fingerprint),
                static_cast<unsigned long long>(R.SnapshotBytes),
                R.BitIdentity ? "OK" : "FAILED");
  return 0;
}

int cmdWorkloads() {
  TableWriter T({"Name", "Precision Args", "Overhead Args"});
  for (const Workload &W : allWorkloads()) {
    auto Fmt = [](const std::vector<int64_t> &A) {
      std::string S;
      for (int64_t V : A)
        S += std::to_string(V) + " ";
      return S;
    };
    T.addRow({W.Name, Fmt(W.PrecisionArgs), Fmt(W.OverheadArgs)});
  }
  std::fputs(T.renderText().c_str(), stdout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  if (Cmd == "workloads")
    return cmdWorkloads();
  if (Cmd == "profdata") {
    if (Argc < 3)
      return usage();
    Parsed PD = parseArgs(Argc, Argv, 3);
    return PD.Bad ? usage() : cmdProfdata(Argv[2], PD);
  }
  Parsed P = parseArgs(Argc, Argv, 2);
  if (Cmd == "bench")
    return P.Bad ? usage() : cmdBench(P);
  if (Cmd == "fuzz")
    return P.Bad ? usage() : cmdFuzz(P);
  if (Cmd == "serve")
    return P.Bad ? usage() : cmdServe(P);
  if (Cmd == "serve-bench")
    return P.Bad ? usage() : cmdServeBench(P);
  if (!P.Ok)
    return usage();
  if (Cmd == "run")
    return cmdRun(P);
  if (Cmd == "ir")
    return cmdIr(P);
  if (Cmd == "profile")
    return cmdProfile(P);
  if (Cmd == "estimate")
    return cmdEstimate(P);
  if (Cmd == "opt")
    return cmdOpt(P);
  if (Cmd == "analyze")
    return cmdAnalyze(P);
  if (Cmd == "lint")
    return cmdLint(P);
  return usage();
}
