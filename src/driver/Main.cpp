//===--- Main.cpp - the olpp command-line driver --------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `olpp` tool: compile, run, profile and estimate MiniC programs from
/// the command line.
///
///   olpp run <file.mc> [args...]
///   olpp ir <file.mc>
///   olpp profile <file.mc> [--degree K] [--interproc] [--top N]
///        [--lint] [--lint-json] [--lint-werror] [args...]
///   olpp estimate <file.mc> [--degree K] [args...]
///   olpp lint <file.mc|workload|--all> [--json] [--werror] [--degree K]
///   olpp workloads
///
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "driver/Pipeline.h"
#include "estimate/Estimators.h"
#include "frontend/Compiler.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "profile/InstrCheck.h"
#include "profile/ProfileDecode.h"
#include "support/Format.h"
#include "support/TableWriter.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace olpp;

namespace {

int usage() {
  std::fputs(
      "olpp - overlapping path profiling driver\n"
      "\n"
      "  olpp run <file.mc> [args...]          compile and execute\n"
      "  olpp ir <file.mc>                     dump the lowered IR\n"
      "  olpp profile <file.mc> [options] [args...]\n"
      "       --degree K     overlapping loop paths of degree K\n"
      "       --interproc    also collect Type I/II profiles (degree K)\n"
      "       --top N        show the N hottest paths (default 10)\n"
      "       --lint         lint the program and audit the probes\n"
      "       --lint-json    emit lint findings as JSON\n"
      "       --lint-werror  treat lint warnings as errors\n"
      "  olpp estimate <file.mc> [--degree K] [args...]\n"
      "       per-loop and per-call-site interesting path bounds\n"
      "  olpp lint <file.mc|--all> [--json] [--werror] [--degree K]\n"
      "       lint source and verify instrumentation invariants\n"
      "       (--all checks every embedded workload)\n"
      "  olpp workloads                        list the embedded suite\n"
      "\n"
      "A file name matching an embedded workload (e.g. 'mcf') may be used\n"
      "in place of a path.\n",
      stderr);
  return 2;
}

bool readSource(const std::string &Path, std::string &Out) {
  if (const Workload *W = findWorkload(Path)) {
    Out = W->Source;
    return true;
  }
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

struct Parsed {
  std::string File;
  uint32_t Degree = 1;
  bool Interproc = false;
  size_t Top = 10;
  std::vector<int64_t> Args;
  bool Lint = false;
  bool LintJson = false;
  bool LintWerror = false;
  bool All = false;
  bool Ok = false;
};

Parsed parseArgs(int Argc, char **Argv, int Start) {
  Parsed P;
  for (int I = Start; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--interproc") {
      P.Interproc = true;
    } else if (A == "--degree" && I + 1 < Argc) {
      P.Degree = static_cast<uint32_t>(std::atoi(Argv[++I]));
    } else if (A == "--top" && I + 1 < Argc) {
      P.Top = static_cast<size_t>(std::atoi(Argv[++I]));
    } else if (A == "--lint") {
      P.Lint = true;
    } else if (A == "--lint-json" || A == "--json") {
      P.Lint = true;
      P.LintJson = true;
    } else if (A == "--lint-werror" || A == "--werror") {
      P.Lint = true;
      P.LintWerror = true;
    } else if (A == "--all") {
      P.All = true;
    } else if (P.File.empty()) {
      P.File = A;
    } else {
      P.Args.push_back(std::strtoll(A.c_str(), nullptr, 10));
    }
  }
  P.Ok = !P.File.empty() || P.All;
  return P;
}

std::unique_ptr<Module> compileOrFail(const std::string &File) {
  std::string Source;
  if (!readSource(File, Source))
    return nullptr;
  CompileResult CR = compileMiniC(Source);
  if (!CR.ok()) {
    std::fprintf(stderr, "%s", CR.diagText().c_str());
    return nullptr;
  }
  return std::move(CR.M);
}

std::vector<int64_t> fitArgs(const Parsed &P, const Module &M) {
  std::vector<int64_t> Args = P.Args;
  // An embedded workload named on the command line brings its own inputs.
  if (Args.empty())
    if (const Workload *W = findWorkload(P.File))
      Args = W->PrecisionArgs;
  const Function *Main = M.findFunction("main");
  if (Main)
    Args.resize(Main->NumParams, 0);
  return Args;
}

int cmdRun(const Parsed &P) {
  auto M = compileOrFail(P.File);
  if (!M)
    return 1;
  const Function *Main = M->findFunction("main");
  if (!Main) {
    std::fprintf(stderr, "error: no 'main' function\n");
    return 1;
  }
  Interpreter I(*M);
  RunResult R = I.run(*Main, fitArgs(P, *M));
  if (!R.Ok) {
    std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("result: %lld\n", static_cast<long long>(R.ReturnValue));
  std::printf("executed %llu instructions, %llu blocks, %llu calls\n",
              static_cast<unsigned long long>(R.Counts.Steps),
              static_cast<unsigned long long>(R.Counts.Blocks),
              static_cast<unsigned long long>(R.Counts.Calls));
  return 0;
}

int cmdIr(const Parsed &P) {
  auto M = compileOrFail(P.File);
  if (!M)
    return 1;
  std::fputs(printModule(*M).c_str(), stdout);
  return 0;
}

PipelineResult runPipelineFor(const Parsed &P, Module &M, bool Overlap) {
  PipelineConfig Config;
  if (Overlap) {
    Config.Instr.LoopOverlap = true;
    Config.Instr.LoopDegree = P.Degree;
    if (P.Interproc) {
      Config.Instr.Interproc = true;
      Config.Instr.InterprocDegree = P.Degree;
    }
  }
  Config.Args = fitArgs(P, M);
  Config.Lint = P.Lint;
  Config.LintWerror = P.LintWerror;
  return runPipeline(M, Config);
}

void emitLintFindings(const Parsed &P, const std::vector<Diagnostic> &Diags) {
  if (P.LintJson) {
    std::fputs(renderDiagnosticsJson(Diags).c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (!Diags.empty()) {
    std::fputs(renderDiagnosticsText(Diags).c_str(), stderr);
  }
}

int cmdProfile(const Parsed &P) {
  auto M = compileOrFail(P.File);
  if (!M)
    return 1;
  PipelineResult R = runPipelineFor(P, *M, /*Overlap=*/true);
  if (P.Lint)
    emitLintFindings(P, R.Lint);
  if (!R.ok()) {
    std::fprintf(stderr, "error: %s\n", R.Errors[0].c_str());
    return 1;
  }
  std::printf("result %lld, overhead %.1f %%\n\n",
              static_cast<long long>(R.ReturnValue), R.overheadPercent());

  struct Hot {
    std::string Func;
    DecodedEntry D;
  };
  std::vector<Hot> Paths;
  for (uint32_t F = 0; F < R.InstrModule->numFunctions(); ++F)
    for (DecodedEntry &D :
         decodeProfile(*R.MI.Funcs[F].PG, R.Prof->PathCounts[F]))
      Paths.push_back({R.InstrModule->function(F)->Name, std::move(D)});
  std::sort(Paths.begin(), Paths.end(),
            [](const Hot &A, const Hot &B) { return A.D.Count > B.D.Count; });

  TableWriter T({"Count", "Function", "Path", "Overlap Suffix"});
  for (size_t I = 0; I < Paths.size() && I < P.Top; ++I) {
    const DecodedEntry &D = Paths[I].D;
    std::string Blocks, Suffix;
    for (uint32_t B : D.White.Blocks)
      Blocks += "^" + std::to_string(B) + " ";
    for (uint32_t B : D.Suffix)
      Suffix += "^" + std::to_string(B) + " ";
    T.addRow({std::to_string(D.Count), Paths[I].Func, Blocks, Suffix});
  }
  std::fputs(T.renderText().c_str(), stdout);
  return 0;
}

int cmdEstimate(const Parsed &P) {
  auto M = compileOrFail(P.File);
  if (!M)
    return 1;
  Parsed P2 = P;
  P2.Interproc = true; // estimation shows both dimensions
  PipelineResult R = runPipelineFor(P2, *M, /*Overlap=*/true);
  if (!R.ok()) {
    std::fprintf(stderr, "error: %s\n", R.Errors[0].c_str());
    return 1;
  }
  ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);

  TableWriter T({"Kind", "Where", "Real", "Definite", "Potential",
                 "Exact Pairs"});
  for (uint32_t F = 0; F < R.InstrModule->numFunctions(); ++F) {
    const auto &Meta = R.MI.Funcs[F];
    for (uint32_t L = 0; L < Meta.Loops->numLoops(); ++L) {
      EstimateMetrics Met = Est.estimateLoop(F, L, &R.GT);
      if (Met.Pairs == 0)
        continue;
      T.addRow({"loop",
                R.InstrModule->function(F)->Name + " ^" +
                    std::to_string(Meta.Loops->loop(L).Header),
                std::to_string(Met.Real), std::to_string(Met.Definite),
                std::to_string(Met.Potential),
                std::to_string(Met.ExactPairs) + "/" +
                    std::to_string(Met.Pairs)});
    }
  }
  for (const CallSiteInfo &CS : R.MI.CallSites) {
    EstimateMetrics MI1 = Est.estimateCallSiteTypeI(CS.CsId, &R.GT);
    EstimateMetrics MI2 = Est.estimateCallSiteTypeII(CS.CsId, &R.GT);
    if (MI1.Pairs + MI2.Pairs == 0)
      continue;
    std::string Where = R.InstrModule->function(CS.Func)->Name + " -> " +
                        R.InstrModule->function(CS.Callee)->Name;
    if (MI1.Pairs)
      T.addRow({"type I", Where, std::to_string(MI1.Real),
                std::to_string(MI1.Definite), std::to_string(MI1.Potential),
                std::to_string(MI1.ExactPairs) + "/" +
                    std::to_string(MI1.Pairs)});
    if (MI2.Pairs)
      T.addRow({"type II", Where, std::to_string(MI2.Real),
                std::to_string(MI2.Definite), std::to_string(MI2.Potential),
                std::to_string(MI2.ExactPairs) + "/" +
                    std::to_string(MI2.Pairs)});
  }
  std::printf("interesting-path bounds at overlap degree %u:\n\n", P.Degree);
  std::fputs(T.renderText().c_str(), stdout);
  return 0;
}

/// Lints \p M and audits a fully instrumented clone (loop overlap plus
/// interprocedural regions at \p Degree) against its metadata.
std::vector<Diagnostic> lintAndCheck(const Module &M, uint32_t Degree) {
  std::vector<Diagnostic> Diags = lintModule(M);

  InstrumentOptions Opts;
  Opts.LoopOverlap = true;
  Opts.LoopDegree = Degree;
  Opts.Interproc = true;
  Opts.InterprocDegree = Degree;
  auto Clone = M.clone();
  ModuleInstrumentation MI = instrumentModule(*Clone, Opts);
  if (!MI.ok()) {
    for (const std::string &E : MI.Errors)
      Diags.push_back(makeDiag(Severity::Error, "instrument", "", E));
    return Diags;
  }
  std::vector<Diagnostic> Verify = verifyModuleDiags(*Clone);
  Diags.insert(Diags.end(), Verify.begin(), Verify.end());
  std::vector<Diagnostic> Check = checkInstrumentation(*Clone, MI);
  Diags.insert(Diags.end(), Check.begin(), Check.end());
  return Diags;
}

int cmdLint(const Parsed &P) {
  std::vector<std::string> Files;
  if (P.All)
    for (const Workload &W : allWorkloads())
      Files.push_back(W.Name);
  else
    Files.push_back(P.File);

  std::vector<Diagnostic> Diags;
  for (const std::string &File : Files) {
    auto M = compileOrFail(File);
    if (!M)
      return 2;
    std::vector<Diagnostic> D = lintAndCheck(*M, P.Degree);
    Diags.insert(Diags.end(), D.begin(), D.end());
  }
  emitLintFindings(P, Diags);
  Severity Min = P.LintWerror ? Severity::Warning : Severity::Error;
  if (anySeverityAtLeast(Diags, Min))
    return 1;
  if (!P.LintJson)
    std::printf("%zu file(s) clean (%zu finding(s) below threshold)\n",
                Files.size(), Diags.size());
  return 0;
}

int cmdWorkloads() {
  TableWriter T({"Name", "Precision Args", "Overhead Args"});
  for (const Workload &W : allWorkloads()) {
    auto Fmt = [](const std::vector<int64_t> &A) {
      std::string S;
      for (int64_t V : A)
        S += std::to_string(V) + " ";
      return S;
    };
    T.addRow({W.Name, Fmt(W.PrecisionArgs), Fmt(W.OverheadArgs)});
  }
  std::fputs(T.renderText().c_str(), stdout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  if (Cmd == "workloads")
    return cmdWorkloads();
  Parsed P = parseArgs(Argc, Argv, 2);
  if (!P.Ok)
    return usage();
  if (Cmd == "run")
    return cmdRun(P);
  if (Cmd == "ir")
    return cmdIr(P);
  if (Cmd == "profile")
    return cmdProfile(P);
  if (Cmd == "estimate")
    return cmdEstimate(P);
  if (Cmd == "lint")
    return cmdLint(P);
  return usage();
}
