//===--- Pipeline.h - End-to-end profiling pipeline -------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call workflow used by the benches, examples and integration
/// tests: given a module (or MiniC source) and instrumentation options,
///   1. run the pristine module with tracing -> ground truth + base cost,
///   2. instrument a clone and run it -> raw profiles + instrumented cost.
/// Both runs see identical inputs, so the trace describes exactly the
/// execution the profile summarizes.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_DRIVER_PIPELINE_H
#define OLPP_DRIVER_PIPELINE_H

#include "interp/Interpreter.h"
#include "interp/ProfileRuntime.h"
#include "support/Diagnostic.h"
#include "wpp/GroundTruth.h"

#include <memory>
#include <string>
#include <vector>

namespace olpp {

struct PipelineConfig {
  InstrumentOptions Instr;
  std::string EntryName = "main";
  std::vector<int64_t> Args;
  RunConfig Run;
  /// Skip tracing / ground truth (for overhead-only benches, where the
  /// trace memory would dominate).
  bool CollectGroundTruth = true;
  /// Run the lint passes over the base module and the instrumentation
  /// invariant checker over the instrumented one; findings land in
  /// PipelineResult::Lint. Lint errors always abort the pipeline.
  bool Lint = false;
  /// Treat lint warnings as fatal too.
  bool LintWerror = false;
};

struct PipelineResult {
  std::unique_ptr<Module> BaseModule;  ///< pristine copy that was traced
  std::unique_ptr<Module> InstrModule; ///< instrumented copy that profiled
  ModuleInstrumentation MI;
  std::unique_ptr<ProfileRuntime> Prof;
  GroundTruth GT;
  DynCounts BaseCounts, InstrCounts;
  int64_t ReturnValue = 0;
  std::vector<std::string> Errors;
  /// Lint and instr-check findings (only populated with Config.Lint).
  std::vector<Diagnostic> Lint;

  bool ok() const { return Errors.empty(); }
  /// Instrumentation overhead in percent (the paper's Table 9 metric).
  double overheadPercent() const {
    return InstrCounts.overheadPercentOver(BaseCounts);
  }
};

/// Runs the pipeline on a clone of \p M.
PipelineResult runPipeline(const Module &M, const PipelineConfig &Config);

/// Compiles \p Source first; compile diagnostics land in Errors.
PipelineResult runPipelineOnSource(std::string_view Source,
                                   const PipelineConfig &Config);

} // namespace olpp

#endif // OLPP_DRIVER_PIPELINE_H
