//===--- Pipeline.cpp - End-to-end profiling pipeline ------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "analysis/Lint.h"
#include "frontend/Compiler.h"
#include "ir/Verifier.h"
#include "profile/InstrCheck.h"

using namespace olpp;

namespace {

/// Decides whether R.Lint blocks the pipeline (errors always do, warnings
/// only under --lint-werror) and records one summary error; the individual
/// findings stay in R.Lint for the caller to render.
bool lintFindingsFatal(PipelineResult &R, bool Werror) {
  size_t Fatal = 0;
  for (const Diagnostic &D : R.Lint)
    if (D.Sev == Severity::Error || (Werror && D.Sev == Severity::Warning))
      ++Fatal;
  if (Fatal)
    R.Errors.push_back("lint reported " + std::to_string(Fatal) +
                       " blocking finding(s)");
  return Fatal != 0;
}

} // namespace

PipelineResult olpp::runPipeline(const Module &M,
                                 const PipelineConfig &Config) {
  PipelineResult R;
  R.BaseModule = M.clone();
  R.InstrModule = M.clone();

  const Function *Entry = R.BaseModule->findFunction(Config.EntryName);
  if (!Entry) {
    R.Errors.push_back("entry function '" + Config.EntryName + "' not found");
    return R;
  }

  if (Config.Lint) {
    R.Lint = lintModule(*R.BaseModule);
    if (lintFindingsFatal(R, Config.LintWerror))
      return R;
  }

  // 1. Baseline run with tracing.
  VectorTrace Trace;
  {
    Interpreter I(*R.BaseModule, nullptr,
                  Config.CollectGroundTruth ? &Trace : nullptr);
    RunResult Run = I.run(*Entry, Config.Args, Config.Run);
    if (!Run.Ok) {
      R.Errors.push_back("baseline run failed: " + Run.Error);
      return R;
    }
    R.BaseCounts = Run.Counts;
    R.ReturnValue = Run.ReturnValue;
  }

  // 2. Instrument the clone and run it on the same inputs.
  R.MI = instrumentModule(*R.InstrModule, Config.Instr);
  if (!R.MI.ok()) {
    R.Errors = R.MI.Errors;
    return R;
  }
  std::vector<Diagnostic> VerifyDiags = verifyModuleDiags(*R.InstrModule);
  if (!VerifyDiags.empty()) {
    for (const Diagnostic &D : VerifyDiags)
      R.Errors.push_back("instrumented module is malformed: " +
                         verifierLegacyText(D));
    return R;
  }

  if (Config.Lint) {
    size_t Before = R.Lint.size();
    std::vector<Diagnostic> Check =
        checkInstrumentation(*R.InstrModule, R.MI);
    R.Lint.insert(R.Lint.end(), Check.begin(), Check.end());
    if (R.Lint.size() != Before && lintFindingsFatal(R, Config.LintWerror))
      return R;
  }

  R.Prof = std::make_unique<ProfileRuntime>(R.InstrModule->numFunctions());
  // Declare each function's path-id space so its counters can use the
  // dense store (ids are numbered on the function's path graph).
  for (uint32_t F = 0; F < R.InstrModule->numFunctions(); ++F)
    if (R.MI.Funcs[F].PG)
      R.Prof->configurePathStore(F, R.MI.Funcs[F].PG->numPaths());
  {
    const Function *InstrEntry =
        R.InstrModule->findFunction(Config.EntryName);
    Interpreter I(*R.InstrModule, R.Prof.get(), nullptr);
    RunResult Run = I.run(*InstrEntry, Config.Args, Config.Run);
    if (!Run.Ok) {
      R.Errors.push_back("instrumented run failed: " + Run.Error);
      return R;
    }
    R.InstrCounts = Run.Counts;
    if (Run.ReturnValue != R.ReturnValue) {
      R.Errors.push_back(
          "instrumented run returned a different value; probes are not "
          "transparent");
      return R;
    }
  }

  // 3. Ground truth from the trace.
  if (Config.CollectGroundTruth) {
    GroundTruthOptions GTO;
    GTO.CallBreaking = R.MI.Opts.CallBreaking;
    R.GT = GroundTruth::compute(*R.BaseModule, Trace.Events, GTO,
                                R.MI.CallSites);
  }
  return R;
}

PipelineResult olpp::runPipelineOnSource(std::string_view Source,
                                         const PipelineConfig &Config) {
  CompileResult C = compileMiniC(Source);
  if (!C.ok()) {
    PipelineResult R;
    for (const Diag &D : C.Diags)
      R.Errors.push_back(D.str());
    return R;
  }
  return runPipeline(*C.M, Config);
}
