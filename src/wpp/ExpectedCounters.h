//===--- ExpectedCounters.h - Predicted instrumentation counters -*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predicts, from trace-derived ground truth, the exact counter values a
/// correctly instrumented run must produce: per-function path counters
/// (plain BL or overlapping, depending on the instrumentation options) and
/// the interprocedural Type I / Type II tuple counters. The master property
/// test asserts ProfileRuntime == ExpectedCounters for random programs.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_WPP_EXPECTEDCOUNTERS_H
#define OLPP_WPP_EXPECTEDCOUNTERS_H

#include "interp/ProfileRuntime.h"
#include "wpp/GroundTruth.h"

namespace olpp {

struct ExpectedCounters {
  std::vector<ProfileRuntime::PathCountMap> PathCounts;
  ProfileRuntime::InterprocMap TypeICounts;
  ProfileRuntime::InterprocMap TypeIICounts;
};

/// Computes the counters an instrumented run under \p MI must produce for
/// the execution described by \p GT. \p MI must have been computed on a
/// clone of the module \p GT was traced on (block ids must match).
ExpectedCounters computeExpectedCounters(const ModuleInstrumentation &MI,
                                         const GroundTruth &GT);

} // namespace olpp

#endif // OLPP_WPP_EXPECTEDCOUNTERS_H
