//===--- Sequitur.h - online grammar compression ----------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SEQUITUR (Nevill-Manning & Witten): online inference of a context-free
/// grammar from a symbol stream, maintaining two invariants —
///   digram uniqueness: no pair of adjacent symbols occurs twice, and
///   rule utility: every rule is referenced at least twice.
///
/// The paper contrasts its overlapping-path profiles with Whole Program
/// Paths [Larus, PLDI'99], which store the complete control-flow trace as
/// exactly such a grammar. This implementation lets the repo make that
/// comparison concrete: wpp/TraceStats.h feeds control-flow traces through
/// it and reports grammar size vs raw trace size vs path-profile size.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_WPP_SEQUITUR_H
#define OLPP_WPP_SEQUITUR_H

#include <cstdint>
#include <string>
#include <cstddef>
#include <unordered_map>
#include <vector>

namespace olpp {

class Sequitur {
public:
  Sequitur();
  ~Sequitur();
  Sequitur(const Sequitur &) = delete;
  Sequitur &operator=(const Sequitur &) = delete;

  /// Appends one terminal symbol to the stream.
  void append(uint32_t Terminal);

  /// Number of rules, including the start rule.
  size_t numRules() const { return LiveRules; }

  /// Total number of symbols on all rule right-hand sides — the size of
  /// the compressed representation.
  size_t grammarSize() const;

  /// Number of terminals appended.
  size_t inputSize() const { return InputLen; }

  /// Reconstructs the original stream (for verification).
  std::vector<uint32_t> expand() const;

  /// Verifies the two SEQUITUR invariants; used by the tests.
  bool checkInvariants() const;

  /// Human-readable grammar dump (debugging and tests).
  std::string dump() const;

private:
  struct Sym;
  struct Rule;

  Rule *newRule();
  void destroyRule(Rule *R);
  Sym *newSym(uint64_t Value);
  void freeSym(Sym *S);

  // Core operations (see Sequitur.cpp).
  void join(Sym *Left, Sym *Right);
  void insertAfter(Sym *Pos, Sym *S);
  void deleteDigram(Sym *S);
  void removeSym(Sym *S);
  static uint64_t sideOf(const Sym *S);
  bool check(Sym *S);
  void match(Sym *S, Sym *Occurrence);
  void substitute(Sym *First, Rule *R);
  void expandUse(Sym *Use);
  void rescanRule(Rule *R);
  void expandRuleInto(const Rule *R, std::vector<uint32_t> &Out) const;

  static uint64_t digramKey(const Sym *S);

  Rule *Start = nullptr;
  std::unordered_map<uint64_t, Sym *> Digrams;
  std::vector<Sym *> AllSyms;   // ownership
  std::vector<Sym *> FreeSyms;  // recycled nodes
  std::vector<Rule *> AllRules; // ownership
  size_t LiveRules = 0;
  size_t InputLen = 0;
  uint32_t NextRuleId = 1;
};

} // namespace olpp

#endif // OLPP_WPP_SEQUITUR_H
