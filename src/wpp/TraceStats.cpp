//===--- TraceStats.cpp - trace size vs profile size --------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "wpp/TraceStats.h"

#include "wpp/Sequitur.h"

using namespace olpp;

TraceStats olpp::compressTrace(const std::vector<TraceEvent> &Events) {
  Sequitur Grammar;
  for (const TraceEvent &E : Events) {
    // Pack (kind, func, block) into one terminal symbol. Blocks dominate
    // the stream; enters/exits get their own tag space.
    uint32_t Symbol;
    switch (E.Kind) {
    case TraceEventKind::Enter:
      Symbol = 0x40000000u | E.Func;
      break;
    case TraceEventKind::Exit:
      Symbol = 0x20000000u | E.Func;
      break;
    case TraceEventKind::Block:
    default:
      Symbol = (E.Func << 16) | (E.Block & 0xFFFF);
      break;
    }
    Grammar.append(Symbol);
  }
  TraceStats S;
  S.RawEvents = Events.size();
  S.GrammarSymbols = Grammar.grammarSize();
  S.GrammarRules = Grammar.numRules();
  return S;
}
