//===--- GroundTruth.cpp - Exact path frequencies from traces ---------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "wpp/GroundTruth.h"

#include "ir/Module.h"

#include <cassert>
#include <map>

using namespace olpp;

std::vector<CallSiteInfo> olpp::enumerateCallSites(const Module &M) {
  std::vector<CallSiteInfo> Out;
  for (const auto &F : M.functions())
    for (uint32_t B = 0; B < F->numBlocks(); ++B)
      for (const Instruction &I : F->block(B)->Instrs)
        if (I.Op == Opcode::Call || I.Op == Opcode::CallInd) {
          CallSiteInfo CS;
          CS.Func = F->Id;
          CS.Block = B;
          CS.Callee = I.Op == Opcode::Call ? I.CalleeId : UINT32_MAX;
          CS.CsId = static_cast<uint32_t>(Out.size());
          Out.push_back(CS);
        }
  return Out;
}

namespace {

/// Replay machinery for one ground-truth computation.
class Replayer {
public:
  Replayer(const Module &M, const GroundTruthOptions &Opts,
           const std::vector<CallSiteInfo> &CallSites, GroundTruth &GT)
      : M(M), Opts(Opts), GT(GT) {
    GT.Funcs.resize(M.numFunctions());
    GT.CallSites.resize(CallSites.size());
    FuncInfos.resize(M.numFunctions());
    for (const CallSiteInfo &CS : CallSites)
      CsByFuncBlock[{CS.Func, CS.Block}] = CS.CsId;
  }

  void run(const std::vector<TraceEvent> &Events) {
    for (const TraceEvent &E : Events) {
      switch (E.Kind) {
      case TraceEventKind::Enter:
        onEnter(E.Func);
        break;
      case TraceEventKind::Block:
        onBlock(E.Func, E.Block);
        break;
      case TraceEventKind::Exit:
        onExit(E.Func);
        break;
      }
    }
    assert(Stack.empty() && "unbalanced trace");
  }

private:
  struct FuncInfo {
    bool Ready = false;
    std::unique_ptr<CfgView> Cfg;
    std::unique_ptr<DomTree> Dom;
    std::unique_ptr<LoopInfo> Loops;
    std::vector<bool> IsCall; // per block
  };

  struct Act {
    uint32_t Func = 0;
    PathSig Cur;
    // Pending loop pair: the previous path ended at PendingLoop's backedge.
    bool HavePendingLoop = false;
    uint32_t PendingLoop = 0;
    uint32_t PendingI = 0; // interned index of i
    // Pending Type II pair: a callee just returned to our call site.
    bool HavePendingII = false;
    uint32_t PendingCs = 0;
    uint32_t PendingQFunc = 0;
    uint32_t PendingQ = 0;
    // Type I linkage.
    bool HasCaller = false;
    uint32_t CallerCs = 0;
    uint32_t CallerPre = 0;
    bool FirstPathDone = false;
  };

  const FuncInfo &info(uint32_t F) {
    FuncInfo &FI = FuncInfos[F];
    if (FI.Ready)
      return FI;
    const Function &Fn = *M.function(F);
    FI.Cfg = std::make_unique<CfgView>(CfgView::build(Fn));
    FI.Dom = std::make_unique<DomTree>(DomTree::compute(*FI.Cfg));
    FI.Loops = std::make_unique<LoopInfo>(LoopInfo::compute(*FI.Cfg, *FI.Dom));
    FI.IsCall.resize(Fn.numBlocks());
    for (uint32_t B = 0; B < Fn.numBlocks(); ++B)
      FI.IsCall[B] = isCallBlock(Fn, B);
    GT.Funcs[F].LoopPairs.resize(FI.Loops->numLoops());
    GT.Funcs[F].BackedgeCount.assign(FI.Loops->numLoops(), 0);
    FI.Ready = true;
    return FI;
  }

  /// Finalizes the activation's current path with the given end.
  uint32_t finalize(Act &A, PathEnd End, uint32_t Loop = UINT32_MAX) {
    assert(!A.Cur.Blocks.empty() && "finalizing an empty path");
    DynPathKey Key{A.Cur, End, Loop};
    auto &FD = GT.Funcs[A.Func];
    uint32_t Idx;
    auto It = FD.Index.find(Key);
    if (It != FD.Index.end()) {
      Idx = It->second;
    } else {
      Idx = static_cast<uint32_t>(FD.Paths.size());
      FD.Paths.push_back(Key);
      FD.Counts.push_back(0);
      FD.Index.emplace(std::move(Key), Idx);
    }
    ++FD.Counts[Idx];
    ++GT.TotalPathInstances;

    if (A.HavePendingLoop) {
      ++FD.LoopPairs[A.PendingLoop][GroundTruth::pairKey(A.PendingI, Idx)];
      A.HavePendingLoop = false;
    }
    if (End == PathEnd::Backedge) {
      A.HavePendingLoop = true;
      A.PendingLoop = Loop;
      A.PendingI = Idx;
      ++FD.BackedgeCount[Loop];
      ++GT.TotalBackedgeCrossings;
    }
    if (A.HavePendingII) {
      ++GT.CallSites[A.PendingCs]
            .TypeIIPairs[A.PendingQFunc][GroundTruth::pairKey(A.PendingQ,
                                                              Idx)];
      A.HavePendingII = false;
    }
    if (!A.FirstPathDone) {
      A.FirstPathDone = true;
      if (A.HasCaller)
        ++GT.CallSites[A.CallerCs]
              .TypeIPairs[A.Func][GroundTruth::pairKey(A.CallerPre, Idx)];
    }
    return Idx;
  }

  void onEnter(uint32_t F) {
    uint32_t Cs = UINT32_MAX, Pre = UINT32_MAX;
    if (!Stack.empty())
      ++GT.TotalCalls;
    if (!Stack.empty() && Opts.CallBreaking) {
      Act &Caller = Stack.back();
      uint32_t CallBlock = Caller.Cur.Blocks.back();
      assert(FuncInfos[Caller.Func].IsCall[CallBlock] &&
             "call from a non-call block");
      auto It = CsByFuncBlock.find({Caller.Func, CallBlock});
      assert(It != CsByFuncBlock.end());
      Cs = It->second;
      Pre = finalize(Caller, PathEnd::CallBreak);
      ++GT.CallSites[Cs].Calls;
      // Prepare the continuation path, resumed after the callee exits.
      Caller.Cur.StartsAtCallContinuation = true;
      Caller.Cur.Blocks = {CallBlock};
    }
    info(F); // ensure analyses exist
    Act A;
    A.Func = F;
    if (Cs != UINT32_MAX) {
      A.HasCaller = true;
      A.CallerCs = Cs;
      A.CallerPre = Pre;
    }
    Stack.push_back(std::move(A));
  }

  void onBlock(uint32_t F, uint32_t B) {
    Act &A = Stack.back();
    assert(A.Func == F && "trace nesting mismatch");
    (void)F;
    if (A.Cur.Blocks.empty()) {
      A.Cur.StartsAtCallContinuation = false;
      A.Cur.Blocks = {B};
      return;
    }
    const FuncInfo &FI = FuncInfos[A.Func];
    uint32_t Prev = A.Cur.Blocks.back();
    uint32_t Loop = FI.Loops->loopForBackedge(Prev, B);
    if (Loop != UINT32_MAX) {
      finalize(A, PathEnd::Backedge, Loop);
      A.Cur.StartsAtCallContinuation = false;
      A.Cur.Blocks = {B};
      return;
    }
    A.Cur.Blocks.push_back(B);
  }

  void onExit(uint32_t F) {
    Act &A = Stack.back();
    assert(A.Func == F && "trace nesting mismatch");
    uint32_t Q = finalize(A, PathEnd::Ret);
    bool HadCaller = A.HasCaller;
    uint32_t Cs = A.CallerCs;
    Stack.pop_back();
    if (!Stack.empty())
      ++GT.TotalReturns;
    if (HadCaller && !Stack.empty() && Opts.CallBreaking) {
      Act &Caller = Stack.back();
      Caller.HavePendingII = true;
      Caller.PendingCs = Cs;
      Caller.PendingQFunc = F;
      Caller.PendingQ = Q;
    }
  }

  const Module &M;
  GroundTruthOptions Opts;
  GroundTruth &GT;
  std::vector<FuncInfo> FuncInfos;
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> CsByFuncBlock;
  std::vector<Act> Stack;
};

} // namespace

GroundTruth GroundTruth::compute(const Module &M,
                                 const std::vector<TraceEvent> &Events,
                                 const GroundTruthOptions &Opts,
                                 const std::vector<CallSiteInfo> &CallSites) {
  GroundTruth GT;
  Replayer R(M, Opts, CallSites, GT);
  R.run(Events);
  // Functions never entered still need their loop tables sized for
  // consumers that iterate uniformly.
  for (uint32_t F = 0; F < M.numFunctions(); ++F) {
    if (!GT.Funcs[F].LoopPairs.empty())
      continue;
    CfgView Cfg = CfgView::build(*M.function(F));
    DomTree Dom = DomTree::compute(Cfg);
    LoopInfo LI = LoopInfo::compute(Cfg, Dom);
    GT.Funcs[F].LoopPairs.resize(LI.numLoops());
    GT.Funcs[F].BackedgeCount.assign(LI.numLoops(), 0);
  }
  return GT;
}
