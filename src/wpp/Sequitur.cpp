//===--- Sequitur.cpp - online grammar compression ---------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "wpp/Sequitur.h"

#include <cassert>
#include <cstdio>

using namespace olpp;

/// A symbol in some rule's right-hand side, or a rule's guard node. The
/// guard is a sentinel closing the circular list of a rule body; Prev of
/// the first body symbol and Next of the last body symbol point at it.
struct Sequitur::Sym {
  Sym *Prev = nullptr;
  Sym *Next = nullptr;
  /// Terminal value, or unused for guards/non-terminals.
  uint32_t Terminal = 0;
  /// Null for terminals; the referenced rule for non-terminals, the owning
  /// rule for guards.
  Rule *Ref = nullptr;
  bool IsGuard = false;

  bool nonTerminal() const { return !IsGuard && Ref != nullptr; }
};

struct Sequitur::Rule {
  Sym *Guard = nullptr;
  uint32_t Id = 0;
  uint32_t RefCount = 0;
  bool Dead = false;

  Sym *first() const { return Guard->Next; }
  Sym *last() const { return Guard->Prev; }
  bool bodyIsPair() const {
    return first() != Guard && first()->Next == last() && last() != Guard;
  }
};

Sequitur::Sequitur() {
  Start = newRule();
  ++Start->RefCount; // the start rule is never removed
}

Sequitur::~Sequitur() {
  for (Sym *S : AllSyms)
    delete S;
  for (Rule *R : AllRules)
    delete R;
}

Sequitur::Rule *Sequitur::newRule() {
  Rule *R = new Rule();
  R->Id = NextRuleId++;
  R->Guard = newSym(0);
  R->Guard->IsGuard = true;
  R->Guard->Ref = R;
  R->Guard->Next = R->Guard;
  R->Guard->Prev = R->Guard;
  AllRules.push_back(R);
  ++LiveRules;
  return R;
}

void Sequitur::destroyRule(Rule *R) {
  assert(!R->Dead && "rule destroyed twice");
  R->Dead = true;
  // The body has been spliced elsewhere; close the guard's loop so any
  // accidental walk of the dead rule terminates immediately.
  R->Guard->Next = R->Guard;
  R->Guard->Prev = R->Guard;
  --LiveRules;
}

Sequitur::Sym *Sequitur::newSym(uint64_t Value) {
  Sym *S;
  if (!FreeSyms.empty()) {
    S = FreeSyms.back();
    FreeSyms.pop_back();
    *S = Sym();
  } else {
    S = new Sym();
    AllSyms.push_back(S);
  }
  S->Terminal = static_cast<uint32_t>(Value);
  return S;
}

void Sequitur::freeSym(Sym *S) {
  // Ownership stays with AllSyms; recycle the node.
  S->Prev = S->Next = nullptr;
  FreeSyms.push_back(S);
}

/// Key of the digram starting at \p S: both sides tagged by kind.
uint64_t Sequitur::digramKey(const Sym *S) {
  auto Side = [](const Sym *X) -> uint64_t {
    if (X->nonTerminal())
      return (uint64_t(1) << 31) | X->Ref->Id;
    return X->Terminal;
  };
  return (Side(S) << 32) | Side(S->Next);
}

/// Removes the digram starting at \p S from the index if it is the
/// registered occurrence.
void Sequitur::deleteDigram(Sym *S) {
  if (S->IsGuard || S->Next->IsGuard)
    return;
  auto It = Digrams.find(digramKey(S));
  if (It != Digrams.end() && It->second == S)
    Digrams.erase(It);
}

/// Side value of a symbol for run detection (terminal value or rule id).
uint64_t Sequitur::sideOf(const Sym *S) {
  if (S->IsGuard)
    return ~uint64_t(0); // never equal to anything
  if (S->nonTerminal())
    return (uint64_t(1) << 31) | S->Ref->Id;
  return S->Terminal;
}

/// Links \p Left and \p Right, retiring the digram the link replaces. Runs
/// of equal symbols share one index entry, so when a link inside a run
/// dies the neighbouring overlapped digram must be re-registered (the
/// canonical algorithm's "triples" repair).
void Sequitur::join(Sym *Left, Sym *Right) {
  if (Left->Next) {
    deleteDigram(Left);
    if (!Right->IsGuard && Right->Prev && Right->Next &&
        sideOf(Right) == sideOf(Right->Prev) &&
        sideOf(Right) == sideOf(Right->Next))
      Digrams[digramKey(Right)] = Right;
    if (!Left->IsGuard && Left->Prev && Left->Next &&
        sideOf(Left) == sideOf(Left->Prev) &&
        sideOf(Left) == sideOf(Left->Next))
      Digrams[digramKey(Left->Prev)] = Left->Prev;
  }
  Left->Next = Right;
  Right->Prev = Left;
}

/// Inserts the fresh symbol \p S after \p Pos.
void Sequitur::insertAfter(Sym *Pos, Sym *S) {
  join(S, Pos->Next);
  join(Pos, S);
}

/// Unlinks and recycles \p S, maintaining the digram index.
void Sequitur::removeSym(Sym *S) {
  assert(!S->IsGuard && "removing a guard");
  join(S->Prev, S->Next);
  // S's own links are stale but intact; retire its (S, old-next) digram.
  deleteDigram(S);
  if (S->nonTerminal())
    --S->Ref->RefCount;
  freeSym(S);
}

/// Checks the digram starting at \p S. Returns true if \p S was replaced
/// (the caller must not use it afterwards).
bool Sequitur::check(Sym *S) {
  if (S->IsGuard || S->Next->IsGuard)
    return false;
  uint64_t Key = digramKey(S);
  auto It = Digrams.find(Key);
  if (It == Digrams.end()) {
    Digrams.emplace(Key, S);
    return false;
  }
  Sym *Occ = It->second;
  if (Occ == S)
    return false;
  if (Occ->Next == S || S->Next == Occ)
    return false; // overlapping occurrence (aaa)
  match(S, Occ);
  return true;
}

/// The digram at \p S equals the one at \p Occurrence; enforce digram
/// uniqueness by introducing (or reusing) a rule.
void Sequitur::match(Sym *S, Sym *Occurrence) {
  Rule *R;
  if (Occurrence->Prev->IsGuard && Occurrence->Next->Next->IsGuard) {
    // The other occurrence is exactly a rule body: reuse that rule.
    R = Occurrence->Prev->Ref;
    substitute(S, R);
    // The substitution's run repairs may have stomped the body's index
    // entry; restore it (the body digram must stay findable).
    if (!R->Dead && R->bodyIsPair())
      Digrams[digramKey(R->first())] = R->first();
  } else {
    // Make a new rule from the digram.
    R = newRule();
    Sym *A = newSym(0);
    Sym *B = newSym(0);
    if (S->nonTerminal()) {
      A->Ref = S->Ref;
      ++A->Ref->RefCount;
    } else {
      A->Terminal = S->Terminal;
    }
    if (S->Next->nonTerminal()) {
      B->Ref = S->Next->Ref;
      ++B->Ref->RefCount;
    } else {
      B->Terminal = S->Next->Terminal;
    }
    // Body: guard <-> A <-> B <-> guard.
    R->Guard->Next = A;
    A->Prev = R->Guard;
    A->Next = B;
    B->Prev = A;
    B->Next = R->Guard;
    R->Guard->Prev = B;

    substitute(Occurrence, R);
    substitute(S, R);
    // Register the rule body's digram only now: the substitutions' run
    // repairs and deletions would otherwise stomp it (canonical SEQUITUR
    // does the same).
    if (!R->Dead && R->bodyIsPair())
      Digrams[digramKey(R->first())] = R->first();
  }

  // Rule utility: while a rule referenced at R's body edges is down to a
  // single reference, inline it and restore digram uniqueness across the
  // spliced-in content. The rescan may cascade into further merges, which
  // can even retire R itself, so everything is re-fetched each round.
  while (!R->Dead) {
    Sym *Edge = R->first();
    if (!(Edge->nonTerminal() && Edge->Ref->RefCount == 1)) {
      Edge = R->last();
      if (!(Edge->nonTerminal() && Edge->Ref->RefCount == 1))
        break;
    }
    expandUse(Edge);
    rescanRule(R);
  }
}

/// Re-establishes digram uniqueness over \p R's body after a splice. Any
/// successful merge invalidates iterators, so the scan restarts; each merge
/// strictly shrinks the grammar, which bounds the loop.
void Sequitur::rescanRule(Rule *R) {
  bool Changed = true;
  while (Changed && !R->Dead) {
    Changed = false;
    for (Sym *S = R->first(); S != R->Guard && S->Next != R->Guard;
         S = S->Next)
      if (check(S)) {
        Changed = true;
        break;
      }
  }
}

/// Replaces the digram starting at \p First with a reference to \p R.
void Sequitur::substitute(Sym *First, Rule *R) {
  Sym *Left = First->Prev;
  removeSym(First);
  removeSym(Left->Next); // the digram's second symbol

  Sym *Use = newSym(0);
  Use->Ref = R;
  ++R->RefCount;
  insertAfter(Left, Use);

  // Restore digram uniqueness around the new symbol; check the left
  // digram first (the canonical order) — if it merges, the recursion
  // takes care of Use's surroundings.
  if (Left->IsGuard || !check(Left))
    if (!Use->Next->IsGuard)
      check(Use);
}

/// Inlines the only remaining use of a once-referenced rule.
void Sequitur::expandUse(Sym *Use) {
  Rule *R = Use->Ref;
  assert(R->RefCount == 1 && "expanding a still-shared rule");
  Sym *Left = Use->Prev;
  Sym *Right = Use->Next;
  Sym *First = R->first();
  Sym *Last = R->last();
  assert(First != R->Guard && "expanding an empty rule");

  // Retire Use's digrams, splice the body in, recycle. The caller
  // re-establishes digram uniqueness over the spliced content
  // (rescanRule): checking here could cascade into splices that
  // invalidate its anchors.
  deleteDigram(Use); // (Use, Right)
  join(Left, First);
  Last->Next = Right;
  Right->Prev = Last;

  freeSym(Use);
  destroyRule(R);
}

void Sequitur::append(uint32_t Terminal) {
  ++InputLen;
  Sym *S = newSym(Terminal);
  Sym *Last = Start->last();
  insertAfter(Last, S);
  if (!Last->IsGuard)
    check(Last);
}

size_t Sequitur::grammarSize() const {
  size_t N = 0;
  for (const Rule *R : AllRules) {
    if (R->Dead)
      continue;
    for (const Sym *S = R->first(); S != R->Guard; S = S->Next)
      ++N;
  }
  return N;
}

void Sequitur::expandRuleInto(const Rule *R,
                              std::vector<uint32_t> &Out) const {
  for (const Sym *S = R->first(); S != R->Guard; S = S->Next) {
    if (S->nonTerminal())
      expandRuleInto(S->Ref, Out);
    else
      Out.push_back(S->Terminal);
  }
}

std::vector<uint32_t> Sequitur::expand() const {
  std::vector<uint32_t> Out;
  Out.reserve(InputLen);
  expandRuleInto(Start, Out);
  return Out;
}

std::string Sequitur::dump() const {
  std::string Out;
  for (const Rule *R : AllRules) {
    if (R->Dead)
      continue;
    Out += (R == Start) ? "S:" : ("R" + std::to_string(R->Id) + ":");
    for (const Sym *S = R->first(); S != R->Guard; S = S->Next) {
      if (S->nonTerminal())
        Out += " R" + std::to_string(S->Ref->Id) + "(rc=" + std::to_string(S->Ref->RefCount) + ")";
      else
        Out += " " + std::to_string(S->Terminal);
    }
    Out += "\n";
  }
  return Out;
}

bool Sequitur::checkInvariants() const {
  // Rule utility: every rule except the start rule referenced >= 2 times,
  // and no rule body shorter than a digram (a one-symbol rule compresses
  // nothing and an empty one expands to garbage; only the start rule may
  // hold zero or one symbols, for the empty and single-terminal streams).
  for (const Rule *R : AllRules) {
    if (R->Dead)
      continue;
    size_t BodyLen = 0;
    for (const Sym *S = R->first(); S != R->Guard; S = S->Next)
      ++BodyLen;
    if (R == Start)
      continue;
    if (R->RefCount < 2)
      return false;
    if (BodyLen < 2) {
      if (getenv("SEQ_DEBUG"))
        fprintf(stderr, "rule R%u has a %zu-symbol body\n", R->Id, BodyLen);
      return false;
    }
  }
  // Digram uniqueness: no two *non-overlapping* occurrences of the same
  // digram (overlapping occurrences, as in "aaa", are exempt by the
  // algorithm's definition).
  std::unordered_map<uint64_t, std::vector<const Sym *>> Seen;
  for (const Rule *R : AllRules) {
    if (R->Dead)
      continue;
    for (const Sym *S = R->first(); S != R->Guard && S->Next != R->Guard;
         S = S->Next)
      Seen[digramKey(S)].push_back(S);
  }
  for (const auto &[Key, Occs] : Seen) {
    if (Occs.size() > 2) {
      if (getenv("SEQ_DEBUG")) fprintf(stderr, "dup>2 key %llx\n", (unsigned long long)Key);
      return false;
    }
    if (Occs.size() == 2 && Occs[0]->Next != Occs[1] &&
        Occs[1]->Next != Occs[0]) {
      if (getenv("SEQ_DEBUG")) fprintf(stderr, "dup nonoverlap key %llx\n", (unsigned long long)Key);
      return false;
    }
    // Table consistency: every live digram key must be indexed, and the
    // entry must point at one of its live occurrences.
    auto It = Digrams.find(Key);
    if (It == Digrams.end()) {
      if (getenv("SEQ_DEBUG")) fprintf(stderr, "missing entry key %llx\n", (unsigned long long)Key);
      return false;
    }
    bool Found = false;
    for (const Sym *S : Occs)
      Found |= It->second == S;
    if (!Found) {
      if (getenv("SEQ_DEBUG")) fprintf(stderr, "stale entry key %llx\n", (unsigned long long)Key);
      return false;
    }
  }
  return true;
}
