//===--- GroundTruth.h - Exact path frequencies from traces -----*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plays the role of Whole Program Paths in the paper: from a complete
/// control-flow trace of an *uninstrumented* run it recomputes, by
/// definition, the exact frequency of
///   - every dynamic Ball-Larus path,
///   - every loop interesting path i ! j (two paths joined by a backedge),
///   - every interprocedural Type I pair (caller pre-path ! first callee
///     path) and Type II pair (last callee path ! caller continuation).
///
/// The estimators are validated against these counts, and the
/// instrumentation-exactness tests compare instrumented counters against
/// counters predicted from this data (wpp/ExpectedCounters.h).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_WPP_GROUNDTRUTH_H
#define OLPP_WPP_GROUNDTRUTH_H

#include "interp/Trace.h"
#include "profile/Instrumenter.h"
#include "profile/ProfileDecode.h"

#include <map>
#include <unordered_map>

namespace olpp {

/// Full identity of a dynamic Ball-Larus path class.
struct DynPathKey {
  PathSig Sig;
  PathEnd End = PathEnd::Ret;
  uint32_t Loop = UINT32_MAX; ///< for End == Backedge
  /// Free disambiguation tag; the estimators use it to keep paths of
  /// different callees apart in one pair problem (indirect call sites).
  uint32_t Tag = 0;

  bool operator==(const DynPathKey &O) const {
    return End == O.End && Loop == O.Loop && Tag == O.Tag && Sig == O.Sig;
  }
};

struct DynPathKeyHash {
  size_t operator()(const DynPathKey &K) const {
    return PathSigHash()(K.Sig) * 31 + static_cast<size_t>(K.End) * 7 +
           K.Loop + K.Tag * 131;
  }
};

struct GroundTruthOptions {
  /// Paths break at call sites (must match the instrumentation config that
  /// the ground truth is compared against).
  bool CallBreaking = false;
};

class GroundTruth {
public:
  /// Packs a pair of interned path indices.
  static uint64_t pairKey(uint32_t A, uint32_t B) {
    return (static_cast<uint64_t>(A) << 32) | B;
  }

  struct FuncData {
    /// Interned path classes with their dynamic counts.
    std::vector<DynPathKey> Paths;
    std::vector<uint64_t> Counts;
    std::unordered_map<DynPathKey, uint32_t, DynPathKeyHash> Index;

    /// Per loop: (i index ! j index) -> count.
    std::vector<std::unordered_map<uint64_t, uint64_t>> LoopPairs;
    /// Per loop: backedge executions (== sum of that loop's pair counts).
    std::vector<uint64_t> BackedgeCount;

    uint32_t indexOf(const DynPathKey &K) const {
      auto It = Index.find(K);
      return It == Index.end() ? UINT32_MAX : It->second;
    }
  };

  struct CallSiteData {
    uint64_t Calls = 0;
    /// Per dynamic callee (indirect call sites can reach several):
    /// (caller pre-path index ! callee path index) -> count.
    std::map<uint32_t, std::unordered_map<uint64_t, uint64_t>> TypeIPairs;
    /// (callee path index ! caller continuation index) -> count.
    std::map<uint32_t, std::unordered_map<uint64_t, uint64_t>> TypeIIPairs;
  };

  std::vector<FuncData> Funcs;
  std::vector<CallSiteData> CallSites;

  uint64_t TotalPathInstances = 0;
  uint64_t TotalBackedgeCrossings = 0;
  uint64_t TotalCalls = 0;
  uint64_t TotalReturns = 0;

  /// Replays \p Events (from an uninstrumented run of \p M). \p CallSites
  /// must be the module-wide call-site table (profile/Instrumenter.h).
  static GroundTruth compute(const Module &M,
                             const std::vector<TraceEvent> &Events,
                             const GroundTruthOptions &Opts,
                             const std::vector<CallSiteInfo> &CallSites);
};

/// Enumerates the module-wide call sites of \p M exactly as
/// instrumentModule does, without instrumenting.
std::vector<CallSiteInfo> enumerateCallSites(const Module &M);

} // namespace olpp

#endif // OLPP_WPP_GROUNDTRUTH_H
