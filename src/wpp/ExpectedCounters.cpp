//===--- ExpectedCounters.cpp - Predicted instrumentation counters ----------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "wpp/ExpectedCounters.h"

#include "overlap/Projection.h"

#include <cassert>

using namespace olpp;

namespace {

/// Region node index sequence -> block sequence.
std::vector<uint32_t> blocksOf(const OverlapRegion &R,
                               const std::vector<uint32_t> &NodeSeq) {
  std::vector<uint32_t> Out;
  Out.reserve(NodeSeq.size());
  for (uint32_t N : NodeSeq)
    Out.push_back(R.nodes()[N].Block);
  return Out;
}

} // namespace

ExpectedCounters olpp::computeExpectedCounters(const ModuleInstrumentation &MI,
                                               const GroundTruth &GT) {
  ExpectedCounters EC;
  EC.PathCounts.resize(GT.Funcs.size());

  for (uint32_t F = 0; F < GT.Funcs.size(); ++F) {
    const GroundTruth::FuncData &FD = GT.Funcs[F];
    const FunctionInstrumentation &Meta = MI.Funcs[F];
    const PathGraph &PG = *Meta.PG;
    auto &Counts = EC.PathCounts[F];

    // Complete paths (and, in plain BL mode, backedge-ended paths).
    for (uint32_t P = 0; P < FD.Paths.size(); ++P) {
      const DynPathKey &Key = FD.Paths[P];
      uint64_t C = FD.Counts[P];
      if (Key.End == PathEnd::Backedge) {
        if (MI.Opts.LoopOverlap)
          continue; // counted as overlapping-path prefixes below
        uint32_t Header = Meta.Loops->loop(Key.Loop).Header;
        Counts[encodeWhiteId(PG, Key.Sig, PathEnd::Backedge, Header)] += C;
        continue;
      }
      Counts[encodeWhiteId(PG, Key.Sig, Key.End)] += C;
    }

    // Overlapping paths: one per loop pair instance, with the j path
    // projected through the loop's overlapping graph.
    if (MI.Opts.LoopOverlap) {
      for (uint32_t L = 0; L < FD.LoopPairs.size(); ++L) {
        const OverlapRegion &R = PG.region(L);
        for (const auto &[PairK, C] : FD.LoopPairs[L]) {
          const DynPathKey &I = FD.Paths[static_cast<uint32_t>(PairK >> 32)];
          const DynPathKey &J =
              FD.Paths[static_cast<uint32_t>(PairK & 0xFFFFFFFF)];
          assert(I.End == PathEnd::Backedge && I.Loop == L);
          std::vector<uint32_t> Suffix =
              blocksOf(R, projectThroughRegion(R, J.Sig.Blocks));
          Counts[encodeOverlapId(PG, I.Sig, L, Suffix)] += C;
        }
      }
    }
  }

  // Interprocedural tuples.
  if (MI.Opts.Interproc) {
    for (uint32_t Cs = 0; Cs < GT.CallSites.size(); ++Cs) {
      const GroundTruth::CallSiteData &CD = GT.CallSites[Cs];
      const CallSiteInfo &Info = MI.CallSites[Cs];
      const FunctionInstrumentation &CallerMeta = MI.Funcs[Info.Func];
      const auto *Site = MI.typeIISite(Cs);
      assert(Site && "missing Type II site");

      for (const auto &[Callee, Pairs] : CD.TypeIPairs) {
        const FunctionInstrumentation &CalleeMeta = MI.Funcs[Callee];
        for (const auto &[PairK, C] : Pairs) {
          const DynPathKey &P =
              GT.Funcs[Info.Func].Paths[static_cast<uint32_t>(PairK >> 32)];
          const DynPathKey &Q =
              GT.Funcs[Callee].Paths[static_cast<uint32_t>(PairK &
                                                           0xFFFFFFFF)];
          assert(P.End == PathEnd::CallBreak);
          int64_t Outer = encodeWhiteId(*CallerMeta.PG, P.Sig,
                                        PathEnd::CallBreak);
          int64_t Inner = CalleeMeta.TypeINumbering->encode(
              projectThroughRegion(*CalleeMeta.TypeIRegion, Q.Sig.Blocks));
          EC.TypeICounts[{Callee, Cs, Inner, Outer}] += C;
        }
      }

      for (const auto &[Callee, Pairs] : CD.TypeIIPairs) {
        const FunctionInstrumentation &CalleeMeta = MI.Funcs[Callee];
        for (const auto &[PairK, C] : Pairs) {
          const DynPathKey &Q =
              GT.Funcs[Callee].Paths[static_cast<uint32_t>(PairK >> 32)];
          const DynPathKey &R =
              GT.Funcs[Info.Func]
                  .Paths[static_cast<uint32_t>(PairK & 0xFFFFFFFF)];
          assert(Q.End == PathEnd::Ret);
          assert(R.Sig.StartsAtCallContinuation &&
                 R.Sig.Blocks.front() == Info.Block);
          int64_t Inner = encodeWhiteId(*CalleeMeta.PG, Q.Sig, PathEnd::Ret);
          int64_t Outer = Site->Numbering->encode(
              projectThroughRegion(*Site->Region, R.Sig.Blocks));
          EC.TypeIICounts[{Callee, Cs, Inner, Outer}] += C;
        }
      }
    }
  }
  return EC;
}
