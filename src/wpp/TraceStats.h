//===--- TraceStats.h - trace size vs profile size ---------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper motivates overlapping paths against Whole Program Paths:
/// complete traces are "expensive to collect and require large amounts of
/// storage" even compressed. This helper quantifies that for our runs:
/// raw trace length, SEQUITUR grammar size, and the number of distinct
/// path counters a profile needs instead.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_WPP_TRACESTATS_H
#define OLPP_WPP_TRACESTATS_H

#include "interp/Trace.h"

#include <cstddef>
#include <vector>

namespace olpp {

struct TraceStats {
  size_t RawEvents = 0;      ///< events in the control-flow trace
  size_t GrammarSymbols = 0; ///< SEQUITUR right-hand-side symbols
  size_t GrammarRules = 0;

  /// Raw events per grammar symbol. Empty and single-event traces are the
  /// identity compression (ratio 1), not a 0/0: every consumer divides or
  /// compares by this, so the degenerate traces must stay well-defined.
  double compressionRatio() const {
    if (RawEvents == 0 || GrammarSymbols == 0)
      return 1.0;
    return static_cast<double>(RawEvents) /
           static_cast<double>(GrammarSymbols);
  }
};

/// Feeds \p Events through SEQUITUR. Each event is encoded as one symbol
/// (function entries/exits tagged, blocks offset by function id).
TraceStats compressTrace(const std::vector<TraceEvent> &Events);

} // namespace olpp

#endif // OLPP_WPP_TRACESTATS_H
