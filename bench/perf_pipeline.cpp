//===--- perf_pipeline.cpp - parallel pipeline scaling benchmark ----------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the parallel profiling pipeline end to end and writes the
/// BENCH_pipeline.json report (schema "olpp.bench.pipeline/v1", the
/// committed jobs-scaling curve at the repo root). For each job count in
/// {1, 2, 4, hardware} the whole workload suite is pushed through the three
/// pipeline stages, each timed separately:
///
///   collect  N instrumented profile runs per workload on a TaskPool, every
///            worker slot bumping a private ProfileRuntime shard
///            (interp/ShardedProfile.h) — no shared counters, no atomics,
///   merge    the deterministic stride-doubling tree merge of the shards,
///   solve    the full estimation stack under the component-partitioned
///            interval solver (SolverImpl::Parallel) on the same pool.
///
/// Correctness is checked inside the harness: every point's merged counters
/// and solver metrics must equal the jobs=1 point's bit for bit — the curve
/// is only a curve if all points compute the same answer. The shared
/// ExecPlan cache's hit counters over the run are reported as well (every
/// per-rep Interpreter re-fetches the plan, so collect is also a cache
/// workout).
///
/// Usage: perf_pipeline [workload ...] [--reps N] [--out FILE]
///
//===----------------------------------------------------------------------===//

#include "estimate/Estimators.h"
#include "estimate/IntervalSolver.h"
#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "interp/PlanCache.h"
#include "interp/ShardedProfile.h"
#include "profile/Instrumenter.h"
#include "support/BenchJson.h"
#include "support/TableWriter.h"
#include "support/TaskPool.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

using namespace olpp;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// One compiled + instrumented workload, shared by every point.
struct Prepared {
  const Workload *W = nullptr;
  std::unique_ptr<Module> M;
  ModuleInstrumentation MI;
  const Function *Main = nullptr;
  std::vector<int64_t> Args;
};

/// The jobs=1 reference result a later point must reproduce exactly.
struct Baseline {
  std::unique_ptr<ShardedProfile> Shards; ///< shard 0 holds the merged total
  EstimateMetrics Solve;
};

bool prepareWorkload(const Workload &W, Prepared &P) {
  CompileResult CR = compileMiniC(W.Source);
  if (!CR.ok()) {
    std::fprintf(stderr, "error: %s: compile failed:\n%s", W.Name.c_str(),
                 CR.diagText().c_str());
    return false;
  }
  P.W = &W;
  P.M = std::move(CR.M);

  InstrumentOptions Opts;
  Opts.LoopOverlap = true;
  Opts.LoopDegree = 2;
  Opts.Interproc = true;
  Opts.InterprocDegree = 2;
  P.MI = instrumentModule(*P.M, Opts);
  if (!P.MI.ok()) {
    std::fprintf(stderr, "error: %s: instrumentation failed: %s\n",
                 W.Name.c_str(), P.MI.Errors[0].c_str());
    return false;
  }
  P.Main = P.M->findFunction("main");
  if (!P.Main) {
    std::fprintf(stderr, "error: %s: no 'main'\n", W.Name.c_str());
    return false;
  }
  P.Args = W.OverheadArgs;
  P.Args.resize(P.Main->NumParams, 0);
  return true;
}

/// Runs one point of the scaling curve: the whole suite through
/// collect -> merge -> solve at \p Jobs workers. On the first call per
/// workload \p Base is filled; later calls verify against it.
bool runPoint(std::vector<Prepared> &Suite, std::vector<Baseline> &Base,
              unsigned Jobs, unsigned Reps, PipelinePoint &Pt) {
  Pt.Jobs = Jobs;
  TaskPool Pool(Jobs);
  RunConfig RC;
  RC.MaxSteps = 2'000'000'000;

  for (size_t WI = 0; WI < Suite.size(); ++WI) {
    Prepared &P = Suite[WI];
    unsigned Shards = std::min<unsigned>(Jobs, Reps);
    auto SP = std::make_unique<ShardedProfile>(P.M->numFunctions(), Shards);
    for (uint32_t F = 0; F < P.M->numFunctions(); ++F)
      if (P.MI.Funcs[F].PG)
        SP->configurePathStore(F, P.MI.Funcs[F].PG->numPaths());

    // Collect: slot identity (not thread identity) picks the shard, so each
    // shard has exactly one writer and the probe path stays non-atomic.
    std::mutex ErrMu;
    std::string Err;
    auto T0 = std::chrono::steady_clock::now();
    Pool.parallelFor(Reps, [&](size_t, unsigned Slot) {
      Interpreter I(*P.M, &SP->shard(Slot));
      RunResult R = I.run(*P.Main, P.Args, RC);
      if (!R.Ok) {
        std::lock_guard<std::mutex> Lock(ErrMu);
        Err = R.Error;
      }
    });
    Pt.CollectSeconds += secondsSince(T0);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: %s: profile run failed: %s\n",
                   P.W->Name.c_str(), Err.c_str());
      return false;
    }

    // Merge: deterministic tree, pairs of each round on the pool.
    T0 = std::chrono::steady_clock::now();
    ProfileRuntime &Merged = SP->merge(&Pool);
    Pt.MergeSeconds += secondsSince(T0);

    // Solve: the estimation stack on the merged profile, components of each
    // constraint system running concurrently.
    ModuleEstimator Est(*P.M, P.MI, Merged);
    setThreadSolverImpl(SolverImpl::Parallel);
    setThreadSolverPool(&Pool);
    T0 = std::chrono::steady_clock::now();
    EstimateMetrics Met = Est.estimateAll(nullptr);
    Pt.SolveSeconds += secondsSince(T0);
    setThreadSolverPool(nullptr);
    setThreadSolverImpl(SolverImpl::Worklist);

    if (WI >= Base.size()) {
      Base.push_back({std::move(SP), Met});
      continue;
    }

    // Scaling points must be observationally identical to the jobs=1 run:
    // same merged counters, same bounds, same solver effort.
    const ProfileRuntime &Want = Base[WI].Shards->shard(0);
    for (uint32_t F = 0; F < P.M->numFunctions(); ++F)
      if (Merged.PathCounts[F] != Want.PathCounts[F]) {
        std::fprintf(stderr,
                     "error: %s: jobs=%u merged path counters of %s differ "
                     "from jobs=1\n",
                     P.W->Name.c_str(), Jobs, P.M->function(F)->Name.c_str());
        return false;
      }
    if (Merged.TypeICounts != Want.TypeICounts ||
        Merged.TypeIICounts != Want.TypeIICounts) {
      std::fprintf(stderr,
                   "error: %s: jobs=%u merged interprocedural counters "
                   "differ from jobs=1\n",
                   P.W->Name.c_str(), Jobs);
      return false;
    }
    const EstimateMetrics &WantMet = Base[WI].Solve;
    if (Met.Definite != WantMet.Definite ||
        Met.Potential != WantMet.Potential ||
        Met.ExactPairs != WantMet.ExactPairs ||
        Met.SolverEvaluations != WantMet.SolverEvaluations ||
        Met.SolverConverged != WantMet.SolverConverged) {
      std::fprintf(stderr,
                   "error: %s: jobs=%u solve differs from jobs=1\n",
                   P.W->Name.c_str(), Jobs);
      return false;
    }
  }

  Pt.Profiles = static_cast<uint64_t>(Suite.size()) * Reps;
  Pt.TotalSeconds = Pt.CollectSeconds + Pt.MergeSeconds + Pt.SolveSeconds;
  Pt.ProfilesPerSec = Pt.TotalSeconds > 0
                          ? static_cast<double>(Pt.Profiles) / Pt.TotalSeconds
                          : 0.0;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Reps = 8;
  std::string Out = "BENCH_pipeline.json";
  std::vector<std::string> Names;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--reps") == 0 && I + 1 < Argc) {
      Reps = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc) {
      Out = Argv[++I];
    } else {
      Names.emplace_back(Argv[I]);
    }
  }
  if (Reps == 0)
    Reps = 1;

  std::vector<Prepared> Suite;
  for (const Workload &W : allWorkloads()) {
    if (!Names.empty() &&
        std::find(Names.begin(), Names.end(), W.Name) == Names.end())
      continue;
    Prepared P;
    if (!prepareWorkload(W, P))
      return 1;
    Suite.push_back(std::move(P));
  }
  if (Suite.empty()) {
    std::fprintf(stderr, "error: no workload matched\n");
    return 1;
  }

  // The curve: 1, 2, 4 and whatever this box actually has, deduplicated —
  // but never past the hardware thread count. Oversubscribed points do not
  // measure scaling (they time the scheduler), and the schema validator
  // rejects them.
  std::vector<unsigned> JobPoints = {1, 2, 4, defaultJobCount()};
  JobPoints.erase(std::remove_if(JobPoints.begin(), JobPoints.end(),
                                 [](unsigned J) {
                                   return J > defaultJobCount();
                                 }),
                  JobPoints.end());
  std::sort(JobPoints.begin(), JobPoints.end());
  JobPoints.erase(std::unique(JobPoints.begin(), JobPoints.end()),
                  JobPoints.end());

  PipelineBenchReport Report;
  Report.Prov.HardwareThreads = defaultJobCount();
  Report.Workloads = static_cast<unsigned>(Suite.size());
  Report.Reps = Reps;

  ExecPlanCache::Stats Before = ExecPlanCache::global().stats();
  auto T0 = std::chrono::steady_clock::now();

  std::vector<Baseline> Base;
  for (unsigned Jobs : JobPoints) {
    PipelinePoint Pt;
    std::printf("jobs=%-3u ...", Jobs);
    std::fflush(stdout);
    if (!runPoint(Suite, Base, Jobs, Reps, Pt))
      return 1;
    std::printf("\rjobs=%-3u %" PRIu64
                " profiles in %.3fs (collect %.3fs, merge %.3fs, solve "
                "%.3fs)\n",
                Jobs, Pt.Profiles, Pt.TotalSeconds, Pt.CollectSeconds,
                Pt.MergeSeconds, Pt.SolveSeconds);
    Report.Points.push_back(Pt);
  }
  Report.WallSeconds = secondsSince(T0);
  ExecPlanCache::Stats After = ExecPlanCache::global().stats();
  Report.PlanCache.MemoHits = After.MemoHits - Before.MemoHits;
  Report.PlanCache.ContentHits = After.ContentHits - Before.ContentHits;
  Report.PlanCache.Misses = After.Misses - Before.Misses;

  for (PipelinePoint &Pt : Report.Points)
    Pt.SpeedupVs1 = Report.Points[0].ProfilesPerSec > 0
                        ? Pt.ProfilesPerSec / Report.Points[0].ProfilesPerSec
                        : 0.0;

  TableWriter T({"Jobs", "Profiles", "Collect s", "Merge s", "Solve s",
                 "Profiles/s", "Speedup vs 1"});
  for (const PipelinePoint &Pt : Report.Points) {
    char Col[32], Mrg[32], Slv[32], Thr[32], Sp[32];
    std::snprintf(Col, sizeof(Col), "%.3f", Pt.CollectSeconds);
    std::snprintf(Mrg, sizeof(Mrg), "%.3f", Pt.MergeSeconds);
    std::snprintf(Slv, sizeof(Slv), "%.3f", Pt.SolveSeconds);
    std::snprintf(Thr, sizeof(Thr), "%.1f", Pt.ProfilesPerSec);
    std::snprintf(Sp, sizeof(Sp), "%.2fx", Pt.SpeedupVs1);
    T.addRow({std::to_string(Pt.Jobs), std::to_string(Pt.Profiles), Col, Mrg,
              Slv, Thr, Sp});
  }
  std::fputs(T.renderText().c_str(), stdout);
  std::printf("plan cache: %" PRIu64 " memo hits, %" PRIu64
              " content hits, %" PRIu64 " misses; wall %.1fs on %u hardware "
              "thread(s)\n",
              Report.PlanCache.MemoHits, Report.PlanCache.ContentHits,
              Report.PlanCache.Misses, Report.WallSeconds,
              Report.Prov.HardwareThreads);

  std::string Error;
  std::string Rendered = renderPipelineBenchJson(Report);
  if (!validatePipelineBenchJson(Rendered, Error)) {
    std::fprintf(stderr, "internal error: report is invalid: %s\n",
                 Error.c_str());
    return 1;
  }
  if (!writePipelineBenchJson(Out, Report, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", Out.c_str());
  return 0;
}
