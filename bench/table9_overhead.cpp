//===--- table9_overhead.cpp - reproduce paper Table 9 --------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Table 9: instrumentation overhead of plain BL profiling and of
// overlapping-path profiling (loop only / interprocedural only / all) with
// the degree at about one third of the maximum, plus the all/BL ratio.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"
#include "support/Stats.h"

using namespace olpp;
using namespace olpp::bench;

int main() {
  std::vector<PreparedWorkload> Suite = prepareAll();
  TableWriter T({"Benchmark", "BL (%)", "OL Loop (%)", "OL Interproc (%)",
                 "OL All (%)", "All / BL"});

  std::vector<double> Bl, LoopOl, Ip, All, Ratio;
  for (const PreparedWorkload &P : Suite) {
    uint32_t K = P.chosenDegree();

    InstrumentOptions OBl; // plain Ball-Larus
    double BlPct =
        runPrepared(P, OBl, /*Precision=*/false).overheadPercent();

    InstrumentOptions OLoop;
    OLoop.LoopOverlap = true;
    OLoop.LoopDegree = K;
    double LoopPct =
        runPrepared(P, OLoop, /*Precision=*/false).overheadPercent();

    InstrumentOptions OIp;
    OIp.Interproc = true;
    OIp.InterprocDegree = K;
    double IpPct =
        runPrepared(P, OIp, /*Precision=*/false).overheadPercent();

    double AllPct = runPrepared(P, sweepOptions(static_cast<int>(K)),
                                /*Precision=*/false)
                        .overheadPercent();

    Bl.push_back(BlPct);
    LoopOl.push_back(LoopPct);
    Ip.push_back(IpPct);
    All.push_back(AllPct);
    Ratio.push_back(BlPct > 0 ? AllPct / BlPct : 0.0);
    T.addRow({P.W->Name, formatFixed(BlPct, 1), formatFixed(LoopPct, 1),
              formatFixed(IpPct, 1), formatFixed(AllPct, 1),
              formatFixed(Ratio.back(), 2)});
  }
  T.addRow({"Average", formatFixed(mean(Bl), 1), formatFixed(mean(LoopOl), 1),
            formatFixed(mean(Ip), 1), formatFixed(mean(All), 1),
            formatFixed(mean(Ratio), 2)});

  printTable("Table 9: instrumentation overhead at k = max/3", T,
             "(paper averages: BL 22.7%, loop 33.8%, interproc 53.0%, all\n"
             " 86.8%, ratio 4.2; the cost model reproduces relationships,\n"
             " not absolute percentages)");
  return 0;
}
