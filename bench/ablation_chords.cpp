//===--- ablation_chords.cpp - spanning-tree chord placement ablation ------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Design-choice ablation (DESIGN.md §4.1): Ball-Larus event counting places
// increments on maximum-spanning-tree chords; the naive variant instruments
// every non-zero edge. Both must produce identical counters; the chord
// variant should cost less.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"
#include "support/Stats.h"

#include <cstdio>
#include <cstdlib>

using namespace olpp;
using namespace olpp::bench;

int main() {
  std::vector<PreparedWorkload> Suite = prepareAll();
  TableWriter T({"Benchmark", "BL naive (%)", "BL chords (%)",
                 "OL-k naive (%)", "OL-k chords (%)", "Chord Savings"});

  std::vector<double> Savings;
  for (const PreparedWorkload &P : Suite) {
    uint32_t K = P.chosenDegree();

    auto Run = [&](bool Overlap, bool Chords) {
      InstrumentOptions O;
      O.UseChords = Chords;
      if (Overlap) {
        O.LoopOverlap = true;
        O.LoopDegree = K;
        O.Interproc = true;
        O.InterprocDegree = K;
      }
      return runPrepared(P, O, /*Precision=*/false);
    };

    PipelineResult BlNaive = Run(false, false);
    PipelineResult BlChord = Run(false, true);
    PipelineResult OlNaive = Run(true, false);
    PipelineResult OlChord = Run(true, true);

    // The counters must agree regardless of increment placement.
    for (uint32_t F = 0; F < BlNaive.Prof->PathCounts.size(); ++F)
      if (BlNaive.Prof->PathCounts[F] != BlChord.Prof->PathCounts[F]) {
        std::fprintf(stderr, "chord/naive counter mismatch in %s\n",
                     P.W->Name.c_str());
        return 1;
      }

    double N = OlNaive.overheadPercent(), C = OlChord.overheadPercent();
    double Saved = N > 0 ? 100.0 * (N - C) / N : 0.0;
    Savings.push_back(Saved);
    T.addRow({P.W->Name, formatFixed(BlNaive.overheadPercent(), 1),
              formatFixed(BlChord.overheadPercent(), 1), formatFixed(N, 1),
              formatFixed(C, 1), formatFixed(Saved, 1) + " %"});
  }
  T.addRow({"Average", "", "", "", "", formatFixed(mean(Savings), 1) + " %"});

  printTable("Ablation: naive edge increments vs spanning-tree chords", T,
             "(identical profiles verified; savings are the chord variant's\n"
             " relative overhead reduction at k = max/3)");
  return 0;
}
