//===--- BenchCommon.h - shared bench harness --------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the bench binaries that regenerate the paper's
/// tables and figures: compiling workloads once, running instrumented
/// configurations, degree sweeps, and result aggregation.
///
/// Conventions mirroring the paper:
///   - overlap degree -1 denotes the plain Ball-Larus baseline,
///   - "k chosen" is one third of the maximum useful degree (at least 1),
///   - overhead% is probe cost over base cost (interp/CostModel.h).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_BENCH_BENCHCOMMON_H
#define OLPP_BENCH_BENCHCOMMON_H

#include "driver/Pipeline.h"
#include "estimate/Estimators.h"
#include "frontend/Compiler.h"
#include "support/TableWriter.h"
#include "workloads/Workloads.h"

#include <memory>
#include <string>
#include <vector>

namespace olpp {
namespace bench {

/// A compiled workload plus its degree limits.
struct PreparedWorkload {
  const Workload *W = nullptr;
  std::unique_ptr<Module> M;
  DegreeLimits Limits;      // with call breaking
  DegreeLimits LoopLimits;  // without call breaking

  uint32_t maxDegree() const {
    return std::max(Limits.MaxLoopDegree, Limits.MaxInterprocDegree);
  }
  /// The paper's "k chosen": about a third of the maximum.
  uint32_t chosenDegree() const {
    uint32_t K = maxDegree() / 3;
    return K == 0 ? 1 : K;
  }
};

/// Compiles every workload (aborts the bench on failure).
std::vector<PreparedWorkload> prepareAll();

/// Runs \p P under \p O. Precision runs use PrecisionArgs and collect
/// ground truth; overhead runs use OverheadArgs without tracing.
PipelineResult runPrepared(const PreparedWorkload &P,
                           const InstrumentOptions &O, bool Precision);

/// Estimation results of one configuration (loops + Type I + Type II).
struct EstimationResult {
  EstimateMetrics Loops;
  EstimateMetrics Interproc; // Type I + Type II
  EstimateMetrics All;
};

/// Runs the full estimation stack against a finished precision pipeline.
EstimationResult estimate(const PipelineResult &R);

/// Instrumentation options for one sweep point. K == -1 is the BL
/// baseline: call-breaking profiles without any overlap instrumentation.
InstrumentOptions sweepOptions(int K);

/// The degree sample points for a workload: -1 (BL), then 0,1,2,... with
/// wider steps as k grows, ending at the workload's maximum.
std::vector<int> sweepDegrees(const PreparedWorkload &P, uint32_t Cap = 24);

/// Prints a rendered table with a title banner.
void printTable(const std::string &Title, const TableWriter &T,
                const std::string &Notes = "");

} // namespace bench
} // namespace olpp

#endif // OLPP_BENCH_BENCHCOMMON_H
