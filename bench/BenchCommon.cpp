//===--- BenchCommon.cpp - shared bench harness --------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>
#include <cstdlib>

using namespace olpp;
using namespace olpp::bench;

std::vector<PreparedWorkload> olpp::bench::prepareAll() {
  std::vector<PreparedWorkload> Out;
  for (const Workload &W : allWorkloads()) {
    CompileResult CR = compileMiniC(W.Source);
    if (!CR.ok()) {
      std::fprintf(stderr, "workload %s failed to compile:\n%s\n",
                   W.Name.c_str(), CR.diagText().c_str());
      std::exit(1);
    }
    PreparedWorkload P;
    P.W = &W;
    P.M = std::move(CR.M);
    P.Limits = computeDegreeLimits(*P.M, /*CallBreaking=*/true);
    P.LoopLimits = computeDegreeLimits(*P.M, /*CallBreaking=*/false);
    Out.push_back(std::move(P));
  }
  return Out;
}

PipelineResult olpp::bench::runPrepared(const PreparedWorkload &P,
                                        const InstrumentOptions &O,
                                        bool Precision) {
  PipelineConfig C;
  C.Instr = O;
  C.Args = Precision ? P.W->PrecisionArgs : P.W->OverheadArgs;
  C.CollectGroundTruth = Precision;
  C.Run.MaxSteps = 2'000'000'000;
  PipelineResult R = runPipeline(*P.M, C);
  if (!R.ok()) {
    std::fprintf(stderr, "workload %s failed: %s\n", P.W->Name.c_str(),
                 R.Errors[0].c_str());
    std::exit(1);
  }
  return R;
}

EstimationResult olpp::bench::estimate(const PipelineResult &R) {
  ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);
  EstimationResult Out;
  Out.Loops = Est.estimateLoops(&R.GT);
  if (R.MI.Opts.CallBreaking) {
    Out.Interproc = Est.estimateTypeI(&R.GT);
    Out.Interproc.add(Est.estimateTypeII(&R.GT));
  }
  Out.All = Out.Loops;
  Out.All.add(Out.Interproc);
  if (Out.All.SoundnessViolated) {
    std::fprintf(stderr, "estimator soundness violated\n");
    std::exit(1);
  }
  return Out;
}

InstrumentOptions olpp::bench::sweepOptions(int K) {
  InstrumentOptions O;
  if (K < 0) {
    O.CallBreaking = true; // plain BL profiles, but with call-site breaks so
                           // the interprocedural baseline is computable
    return O;
  }
  O.LoopOverlap = true;
  O.LoopDegree = static_cast<uint32_t>(K);
  O.Interproc = true;
  O.InterprocDegree = static_cast<uint32_t>(K);
  return O;
}

std::vector<int> olpp::bench::sweepDegrees(const PreparedWorkload &P,
                                           uint32_t Cap) {
  uint32_t Max = std::min(P.maxDegree(), Cap);
  std::vector<int> Ks = {-1};
  uint32_t Step = 1;
  for (uint32_t K = 0; K <= Max; K += Step) {
    Ks.push_back(static_cast<int>(K));
    if (K >= 8)
      Step = 4;
    else if (K >= 4)
      Step = 2;
  }
  if (Ks.back() != static_cast<int>(Max))
    Ks.push_back(static_cast<int>(Max));
  return Ks;
}

void olpp::bench::printTable(const std::string &Title, const TableWriter &T,
                             const std::string &Notes) {
  std::printf("== %s ==\n", Title.c_str());
  std::fputs(T.renderText().c_str(), stdout);
  if (!Notes.empty())
    std::printf("%s\n", Notes.c_str());
  std::printf("\n");
}
