//===--- table8_precision.cpp - reproduce paper Table 8 -------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Table 8: real interesting-path flow vs the definite/potential flow
// estimated (a) from plain BL profiles and (b) from overlapping-path
// profiles with the degree set to about one third of the maximum.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"
#include "support/Stats.h"

using namespace olpp;
using namespace olpp::bench;

int main() {
  std::vector<PreparedWorkload> Suite = prepareAll();
  TableWriter T({"Benchmark", "Real Flow", "BL Definite", "BL Potential",
                 "OL-k Definite", "OL-k Potential", "k Chosen", "k Max"});

  std::vector<double> BlDef, BlPot, OlDef, OlPot;
  uint64_t RealSum = 0;
  double KChosenSum = 0, KMaxSum = 0;

  for (const PreparedWorkload &P : Suite) {
    PipelineResult Bl = runPrepared(P, sweepOptions(-1), /*Precision=*/true);
    EstimationResult EBl = estimate(Bl);
    uint32_t K = P.chosenDegree();
    PipelineResult Ol = runPrepared(P, sweepOptions(static_cast<int>(K)),
                                    /*Precision=*/true);
    EstimationResult EOl = estimate(Ol);

    const EstimateMetrics &A = EBl.All;
    const EstimateMetrics &B = EOl.All;
    RealSum += A.Real;
    BlDef.push_back(A.definiteErrorPercent());
    BlPot.push_back(A.potentialErrorPercent());
    OlDef.push_back(B.definiteErrorPercent());
    OlPot.push_back(B.potentialErrorPercent());
    KChosenSum += K;
    KMaxSum += P.maxDegree();

    auto Cell = [](uint64_t V, double Err) {
      return formatInt(static_cast<int64_t>(V)) + " (" +
             formatSignedPercent(Err) + ")";
    };
    T.addRow({P.W->Name, formatInt(static_cast<int64_t>(A.Real)),
              Cell(A.Definite, A.definiteErrorPercent()),
              Cell(A.Potential, A.potentialErrorPercent()),
              Cell(B.Definite, B.definiteErrorPercent()),
              Cell(B.Potential, B.potentialErrorPercent()),
              std::to_string(K), std::to_string(P.maxDegree())});
  }

  size_t N = Suite.size();
  T.addRow({"Average", formatInt(static_cast<int64_t>(RealSum / N)),
            formatSignedPercent(mean(BlDef)), formatSignedPercent(mean(BlPot)),
            formatSignedPercent(mean(OlDef)), formatSignedPercent(mean(OlPot)),
            formatFixed(KChosenSum / N, 1), formatFixed(KMaxSum / N, 1)});

  printTable(
      "Table 8: precision of flow estimates (BL vs OL at k = max/3)", T,
      "(paper averages: BL -37.6%/+138%, OL-k -4.1%/+8%; shapes, not\n"
      " absolute flows, are expected to match)");
  return 0;
}
