//===--- fig5_precision_sweep.cpp - reproduce paper Figure 5 ---------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Figure 5: estimated total flow of the interesting paths (definite and
// potential) as the allowed overlap degree grows, per benchmark. Degree -1
// is the plain Ball-Larus baseline. The paper plots one chart per
// benchmark; this binary prints the same series as a table and as CSV.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"

#include <cstdio>

using namespace olpp;
using namespace olpp::bench;

int main(int Argc, char **Argv) {
  bool Csv = Argc > 1 && std::string(Argv[1]) == "--csv";
  std::vector<PreparedWorkload> Suite = prepareAll();
  TableWriter T({"Benchmark", "Overlap k", "Real Flow", "Definite",
                 "Potential", "Definite Err", "Potential Err"});

  for (const PreparedWorkload &P : Suite) {
    for (int K : sweepDegrees(P)) {
      PipelineResult R = runPrepared(P, sweepOptions(K), /*Precision=*/true);
      EstimationResult E = estimate(R);
      const EstimateMetrics &A = E.All;
      T.addRow({P.W->Name, K < 0 ? "BL" : std::to_string(K),
                formatInt(static_cast<int64_t>(A.Real)),
                formatInt(static_cast<int64_t>(A.Definite)),
                formatInt(static_cast<int64_t>(A.Potential)),
                formatSignedPercent(A.definiteErrorPercent()),
                formatSignedPercent(A.potentialErrorPercent())});
    }
  }

  if (Csv) {
    std::fputs(T.renderCsv().c_str(), stdout);
    return 0;
  }
  printTable("Figure 5: definite/potential flow vs degree of overlap", T,
             "(expected shape: wide BL bounds collapsing toward the real\n"
             " flow as k grows, with most of the gain in the first few\n"
             " degrees; pass --csv for plottable output)");
  return 0;
}
