//===--- fig6_exact_paths.cpp - reproduce paper Figure 6 -------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Figure 6: the number of interesting paths whose estimated frequency is
// exact (lower bound == upper bound) as the overlap degree grows.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"

#include <cstdio>

using namespace olpp;
using namespace olpp::bench;

int main(int Argc, char **Argv) {
  bool Csv = Argc > 1 && std::string(Argv[1]) == "--csv";
  std::vector<PreparedWorkload> Suite = prepareAll();
  TableWriter T({"Benchmark", "Overlap k", "Interesting Paths",
                 "Precisely Estimated", "Share"});

  for (const PreparedWorkload &P : Suite) {
    for (int K : sweepDegrees(P)) {
      PipelineResult R = runPrepared(P, sweepOptions(K), /*Precision=*/true);
      EstimationResult E = estimate(R);
      const EstimateMetrics &A = E.All;
      double Share = A.Pairs == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(A.ExactPairs) /
                               static_cast<double>(A.Pairs);
      T.addRow({P.W->Name, K < 0 ? "BL" : std::to_string(K),
                formatInt(static_cast<int64_t>(A.Pairs)),
                formatInt(static_cast<int64_t>(A.ExactPairs)),
                formatFixed(Share, 1) + " %"});
    }
  }

  if (Csv) {
    std::fputs(T.renderCsv().c_str(), stdout);
    return 0;
  }
  printTable("Figure 6: precisely estimated interesting paths vs overlap", T,
             "(expected shape: a small overlap already pins the vast\n"
             " majority of paths; pass --csv for plottable output)");
  return 0;
}
