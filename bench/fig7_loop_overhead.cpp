//===--- fig7_loop_overhead.cpp - reproduce paper Figure 7 -----------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Figure 7: overhead of collecting overlapping *loop* path profiles as the
// degree of overlap grows (degree 0 approximates plain BL profiling plus
// the overlap machinery at its cheapest setting).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"

#include <cstdio>

using namespace olpp;
using namespace olpp::bench;

int main(int Argc, char **Argv) {
  bool Csv = Argc > 1 && std::string(Argv[1]) == "--csv";
  std::vector<PreparedWorkload> Suite = prepareAll();
  TableWriter T({"Benchmark", "Overlap k", "Overhead"});

  for (const PreparedWorkload &P : Suite) {
    uint32_t Max = std::min(P.LoopLimits.MaxLoopDegree, 24u);
    for (uint32_t K = 0; K <= Max; K += (K >= 8 ? 4 : (K >= 4 ? 2 : 1))) {
      InstrumentOptions O;
      O.LoopOverlap = true;
      O.LoopDegree = K;
      PipelineResult R = runPrepared(P, O, /*Precision=*/false);
      T.addRow({P.W->Name, std::to_string(K),
                formatFixed(R.overheadPercent(), 1) + " %"});
    }
  }

  if (Csv) {
    std::fputs(T.renderCsv().c_str(), stdout);
    return 0;
  }
  printTable("Figure 7: overhead of profiling overlapping loop paths", T,
             "(expected shape: grows mildly with k; loop profiling is the\n"
             " cheaper half of the machinery)");
  return 0;
}
