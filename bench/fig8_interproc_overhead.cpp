//===--- fig8_interproc_overhead.cpp - reproduce paper Figure 8 ------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Figure 8: overhead of collecting overlapping *interprocedural* (Type I
// and Type II) path profiles as the degree grows.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"

#include <cstdio>

using namespace olpp;
using namespace olpp::bench;

int main(int Argc, char **Argv) {
  bool Csv = Argc > 1 && std::string(Argv[1]) == "--csv";
  std::vector<PreparedWorkload> Suite = prepareAll();
  TableWriter T({"Benchmark", "Overlap k", "Overhead"});

  for (const PreparedWorkload &P : Suite) {
    uint32_t Max = std::min(P.Limits.MaxInterprocDegree, 24u);
    for (uint32_t K = 0; K <= Max; K += (K >= 8 ? 4 : (K >= 4 ? 2 : 1))) {
      InstrumentOptions O;
      O.Interproc = true;
      O.InterprocDegree = K;
      PipelineResult R = runPrepared(P, O, /*Precision=*/false);
      T.addRow({P.W->Name, std::to_string(K),
                formatFixed(R.overheadPercent(), 1) + " %"});
    }
  }

  if (Csv) {
    std::fputs(T.renderCsv().c_str(), stdout);
    return 0;
  }
  printTable(
      "Figure 8: overhead of profiling overlapping interprocedural paths", T,
      "(expected shape: higher than loop profiling — the paper makes the\n"
      " same observation — and growing with k)");
  return 0;
}
