//===--- perf_serve.cpp - streaming aggregation daemon benchmark ----------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures `olpp serve` ingest under a simulated upload fleet and writes
/// the BENCH_serve.json report (schema "olpp.bench.serve/v1", committed at
/// the repo root). The corpus is built in-process: one workload is profiled
/// once under full instrumentation (OL-2 + interprocedural k=2) and the
/// artifact expanded into --derive weighted variants (distinct bytes, same
/// fingerprint — a fleet of machines running the same binary).
///
/// Two measurements:
///
///   fleet    --clients connections upload --uploads artifacts each against
///            an in-process daemon (TaskPool sized to all cores), recording
///            per-upload round-trip latency percentiles,
///   scaling  the same batch re-run against fresh daemons with jobs = 1, 2,
///            4, ... capped at hardware_threads.
///
/// The bit-identity gate runs in-harness: after the fleet drains, a
/// SNAPSHOT is requested and must be byte-identical to the offline
/// mergeArtifacts fold of exactly the uploads acked before its epoch. A
/// report that fails the gate is not written — its throughput numbers would
/// describe a server that loses or duplicates data.
///
/// Usage: perf_serve [workload] [--clients N] [--uploads N] [--derive K]
///                   [--out FILE]
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "profdata/Merge.h"
#include "profdata/ProfData.h"
#include "profile/Instrumenter.h"
#include "serve/ServeBench.h"
#include "serve/Server.h"
#include "serve/ShardStore.h"
#include "support/BenchJson.h"
#include "support/TableWriter.h"
#include "support/TaskPool.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace olpp;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Profiles \p W once and expands the artifact into \p Derive weighted
/// variants (weight i scales every counter and sums Runs i times, so each
/// variant serializes to distinct bytes under one fingerprint).
bool buildCorpus(const Workload &W, unsigned Derive,
                 std::vector<std::string> &Corpus) {
  CompileResult CR = compileMiniC(W.Source);
  if (!CR.ok()) {
    std::fprintf(stderr, "error: %s: compile failed:\n%s", W.Name.c_str(),
                 CR.diagText().c_str());
    return false;
  }
  std::unique_ptr<Module> Instr = CR.M->clone();
  InstrumentOptions Opts;
  Opts.LoopOverlap = true;
  Opts.LoopDegree = 2;
  Opts.Interproc = true;
  Opts.InterprocDegree = 2;
  ModuleInstrumentation MI = instrumentModule(*Instr, Opts);
  if (!MI.ok()) {
    std::fprintf(stderr, "error: %s: instrumentation failed: %s\n",
                 W.Name.c_str(), MI.Errors[0].c_str());
    return false;
  }
  const Function *Main = Instr->findFunction("main");
  if (!Main) {
    std::fprintf(stderr, "error: %s: no 'main'\n", W.Name.c_str());
    return false;
  }
  std::vector<int64_t> Args = W.OverheadArgs;
  Args.resize(Main->NumParams, 0);

  ProfileRuntime Prof(Instr->numFunctions());
  for (uint32_t F = 0; F < Instr->numFunctions(); ++F)
    if (MI.Funcs[F].PG)
      Prof.configurePathStore(F, MI.Funcs[F].PG->numPaths());
  Interpreter I(*Instr, &Prof);
  RunConfig RC;
  RC.MaxSteps = 2'000'000'000;
  RunResult R = I.run(*Main, Args, RC);
  if (!R.Ok) {
    std::fprintf(stderr, "error: %s: profile run failed: %s\n",
                 W.Name.c_str(), R.Error.c_str());
    return false;
  }

  RunMeta Meta;
  Meta.Workload = W.Name;
  Meta.Runs = 1;
  Meta.DynInstrCost = R.Counts.Steps;
  ProfileArtifact Art = ProfileArtifact::fromRuntime(*CR.M, MI, Prof, Meta);

  Corpus.push_back(serializeProfileArtifact(Art));
  for (unsigned V = 2; V <= Derive; ++V) {
    ProfileArtifact Var = makeEmptyLike(Art);
    std::vector<Diagnostic> Diags;
    MergeOptions MO;
    MO.Weight = V;
    if (!mergeArtifacts(Var, Art, Diags, MO)) {
      std::fprintf(stderr, "error: %s: deriving variant %u failed\n",
                   W.Name.c_str(), V);
      return false;
    }
    Corpus.push_back(serializeProfileArtifact(Var));
  }
  return true;
}

/// One daemon lifetime: fresh store + pool(Jobs) + server on an ephemeral
/// port, a full fleet run, teardown. Returns false (with \p Err) on any
/// protocol failure or a failed bit-identity check.
bool runOnce(const std::vector<std::string> &Corpus, unsigned Jobs,
             unsigned Clients, unsigned Uploads, bool Verify,
             serve::FleetReport &Out, std::string &Err) {
  serve::ServeConfig SC;
  serve::ShardStore Store(SC);
  TaskPool Pool(Jobs);
  serve::Server Server(Store, Pool, /*Port=*/0);
  if (!Server.start(Err))
    return false;
  serve::FleetOptions FO;
  FO.Port = Server.port();
  FO.Clients = Clients;
  FO.UploadsPerClient = Uploads;
  FO.Verify = Verify;
  bool Ok = serve::runUploadFleet(FO, Corpus, Out, Err);
  Server.stop();
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Clients = 32;
  unsigned Uploads = 64;
  unsigned Derive = 8;
  std::string Out = "BENCH_serve.json";
  std::string Name;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--clients") == 0 && I + 1 < Argc) {
      Clients = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--uploads") == 0 && I + 1 < Argc) {
      Uploads = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--derive") == 0 && I + 1 < Argc) {
      Derive = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc) {
      Out = Argv[++I];
    } else {
      Name = Argv[I];
    }
  }
  if (Clients == 0)
    Clients = 1;
  if (Uploads == 0)
    Uploads = 1;
  if (Derive == 0)
    Derive = 1;

  const Workload *W = Name.empty() ? findWorkload("mcf") : findWorkload(Name);
  if (!W && Name.empty() && !allWorkloads().empty())
    W = &allWorkloads().front();
  if (!W) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Name.c_str());
    return 1;
  }

  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::string> Corpus;
  if (!buildCorpus(*W, Derive, Corpus))
    return 1;

  ServeBenchReport Report;
  Report.Workload = W->Name;
  Report.CorpusArtifacts = static_cast<unsigned>(Corpus.size());
  for (const std::string &C : Corpus)
    Report.CorpusBytes += C.size();
  Report.Clients = Clients;
  Report.UploadsPerClient = Uploads;

  // The headline fleet run: daemon sized to all cores.
  unsigned HW = std::thread::hardware_concurrency();
  if (HW == 0)
    HW = 1;
  serve::FleetReport FR;
  std::string Err;
  if (!runOnce(Corpus, /*Jobs=*/0, Clients, Uploads, /*Verify=*/true, FR,
               Err)) {
    std::fprintf(stderr, "error: fleet run failed: %s\n", Err.c_str());
    return 1;
  }
  if (!FR.BitIdentity) {
    std::fprintf(stderr, "error: bit-identity gate failed\n");
    return 1;
  }
  double Secs = FR.WallSeconds > 0 ? FR.WallSeconds : 1e-9;
  Report.Uploads = FR.Uploads;
  Report.IngestWallSeconds = FR.WallSeconds;
  Report.UploadsPerSec = FR.Uploads / Secs;
  Report.MBPerSec = FR.Bytes / Secs / (1024.0 * 1024.0);
  Report.P50LatencyUs = serve::percentileUs(FR.LatenciesUs, 50.0);
  Report.P95LatencyUs = serve::percentileUs(FR.LatenciesUs, 95.0);
  Report.P99LatencyUs = serve::percentileUs(FR.LatenciesUs, 99.0);
  Report.SnapshotEpoch = FR.SnapshotEpoch;
  Report.BitIdentity = FR.BitIdentity;

  // Jobs-scaling curve, capped at hardware_threads: points beyond the
  // physical core count would measure oversubscription, not scaling.
  double BaseUps = 0.0;
  for (unsigned Jobs = 1; Jobs <= HW; Jobs *= 2) {
    serve::FleetReport SR;
    if (!runOnce(Corpus, Jobs, Clients, Uploads, /*Verify=*/true, SR, Err)) {
      std::fprintf(stderr, "error: scaling run (jobs=%u) failed: %s\n", Jobs,
                   Err.c_str());
      return 1;
    }
    if (!SR.BitIdentity) {
      std::fprintf(stderr, "error: bit-identity gate failed at jobs=%u\n",
                   Jobs);
      return 1;
    }
    ServeScalingPoint P;
    P.Jobs = Jobs;
    P.Uploads = SR.Uploads;
    P.WallSeconds = SR.WallSeconds;
    P.UploadsPerSec = SR.Uploads / (SR.WallSeconds > 0 ? SR.WallSeconds : 1e-9);
    if (Jobs == 1) {
      BaseUps = P.UploadsPerSec;
      P.SpeedupVs1 = 1.0;
    } else {
      P.SpeedupVs1 = BaseUps > 0 ? P.UploadsPerSec / BaseUps : 0.0;
    }
    Report.JobsScaling.push_back(P);
  }
  Report.WallSeconds = secondsSince(T0);

  TableWriter T({"Jobs", "Uploads", "Wall s", "Uploads/s", "Speedup"});
  for (const ServeScalingPoint &P : Report.JobsScaling) {
    char Wall[32], Ups[32], Sp[32];
    std::snprintf(Wall, sizeof(Wall), "%.3f", P.WallSeconds);
    std::snprintf(Ups, sizeof(Ups), "%.0f", P.UploadsPerSec);
    std::snprintf(Sp, sizeof(Sp), "%.2fx", P.SpeedupVs1);
    T.addRow({std::to_string(P.Jobs), std::to_string(P.Uploads), Wall, Ups,
              Sp});
  }
  std::fputs(T.renderText().c_str(), stdout);
  std::printf("fleet: %llu uploads, %.0f uploads/s, %.2f MB/s, "
              "p50/p95/p99 %.0f/%.0f/%.0f us, bit-identity OK\n",
              static_cast<unsigned long long>(Report.Uploads),
              Report.UploadsPerSec, Report.MBPerSec, Report.P50LatencyUs,
              Report.P95LatencyUs, Report.P99LatencyUs);

  std::string Error;
  std::string Rendered = renderServeBenchJson(Report);
  if (!validateServeBenchJson(Rendered, Error)) {
    std::fprintf(stderr, "internal error: report is invalid: %s\n",
                 Error.c_str());
    return 1;
  }
  if (!writeServeBenchJson(Out, Report, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", Out.c_str());
  return 0;
}
