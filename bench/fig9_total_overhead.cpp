//===--- fig9_total_overhead.cpp - reproduce paper Figure 9 ----------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Figure 9: overhead of collecting *all* overlapping path profiles (loop +
// Type I + Type II) as the degree grows.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"

#include <cstdio>

using namespace olpp;
using namespace olpp::bench;

int main(int Argc, char **Argv) {
  bool Csv = Argc > 1 && std::string(Argv[1]) == "--csv";
  std::vector<PreparedWorkload> Suite = prepareAll();
  TableWriter T({"Benchmark", "Overlap k", "Overhead"});

  for (const PreparedWorkload &P : Suite) {
    uint32_t Max = std::min(P.maxDegree(), 24u);
    for (uint32_t K = 0; K <= Max; K += (K >= 8 ? 4 : (K >= 4 ? 2 : 1))) {
      PipelineResult R = runPrepared(P, sweepOptions(static_cast<int>(K)),
                                     /*Precision=*/false);
      T.addRow({P.W->Name, std::to_string(K),
                formatFixed(R.overheadPercent(), 1) + " %"});
    }
  }

  if (Csv) {
    std::fputs(T.renderCsv().c_str(), stdout);
    return 0;
  }
  printTable("Figure 9: overhead of profiling all overlapping paths", T,
             "(roughly the sum of Figures 7 and 8 per benchmark)");
  return 0;
}
