//===--- wpp_tracesize.cpp - WPP storage vs path profiles -----------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// The paper's opening argument: whole program paths give exact interesting
// path frequencies but "are expensive to collect and require large amounts
// of storage", while (overlapping) path profiles are compact. This bench
// quantifies that trade-off on our workloads: raw trace events, the
// SEQUITUR grammar WPP would store, and the number of counters the
// overlapping profile needs for the same estimation power at k = max/3.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "interp/Interpreter.h"
#include "support/Format.h"
#include "wpp/TraceStats.h"

#include <cstdio>

using namespace olpp;
using namespace olpp::bench;

int main() {
  std::vector<PreparedWorkload> Suite = prepareAll();
  TableWriter T({"Benchmark", "Trace Events", "WPP Grammar", "Rules",
                 "OL-k Counters", "Trace / Counters"});

  for (const PreparedWorkload &P : Suite) {
    // Trace the baseline run.
    VectorTrace Trace;
    Interpreter I(*P.M, nullptr, &Trace);
    RunResult R = I.run(*P.M->findFunction("main"), P.W->PrecisionArgs);
    if (!R.Ok) {
      std::fprintf(stderr, "%s failed: %s\n", P.W->Name.c_str(),
                   R.Error.c_str());
      return 1;
    }
    TraceStats S = compressTrace(Trace.Events);

    // Overlapping profile at the paper's chosen degree.
    PipelineResult Prof = runPrepared(
        P, sweepOptions(static_cast<int>(P.chosenDegree())), true);
    uint64_t Counters = 0;
    for (const auto &Map : Prof.Prof->PathCounts)
      Counters += Map.size();
    Counters += Prof.Prof->TypeICounts.size();
    Counters += Prof.Prof->TypeIICounts.size();

    double Ratio = Counters == 0
                       ? 0.0
                       : static_cast<double>(S.RawEvents) /
                             static_cast<double>(Counters);
    T.addRow({P.W->Name, formatInt(static_cast<int64_t>(S.RawEvents)),
              formatInt(static_cast<int64_t>(S.GrammarSymbols)),
              formatInt(static_cast<int64_t>(S.GrammarRules)),
              formatInt(static_cast<int64_t>(Counters)),
              formatFixed(Ratio, 0) + "x"});
  }

  printTable(
      "WPP storage vs overlapping path profiles", T,
      "(the paper's premise: even compressed, complete traces dwarf the\n"
      " counter footprint of overlapping path profiles)");
  return 0;
}
