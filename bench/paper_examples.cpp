//===--- paper_examples.cpp - the paper's worked examples (Tables 2-7) ----------===//
//
// Part of the OLPP project, under the MIT License.
//
// Regenerates the paper's illustrative tables from our machinery:
//   Table 2: the 12 Ball-Larus paths of the example CFG,
//   Table 3: overlapping path counts per degree,
//   Tables 4/5: estimated bounds for the worked loop execution,
//   Tables 6/7: Type I / Type II overlapping path counts for the
//               interprocedural example of section 3.
//
//===----------------------------------------------------------------------===//

#include "estimate/IntervalSolver.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "overlap/RegionNumbering.h"
#include "profile/PathGraph.h"
#include "profile/ProfileDecode.h"
#include "support/TableWriter.h"

#include <cstdio>
#include <memory>

using namespace olpp;

namespace {

const char *BlockNames[] = {"En", "P1", "B1", "P2", "B2", "B3", "P3", "Ex"};

std::unique_ptr<Module> makePaperLoop() {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("paper_loop", 3);
  IRBuilder B(*F);
  BasicBlock *Blocks[8];
  for (int I = 0; I < 8; ++I)
    Blocks[I] = F->addBlock(BlockNames[I]);
  B.setBlock(Blocks[0]);
  B.br(Blocks[1]);
  B.setBlock(Blocks[1]);
  B.condBr(0, Blocks[2], Blocks[3]);
  B.setBlock(Blocks[2]);
  B.br(Blocks[6]);
  B.setBlock(Blocks[3]);
  B.condBr(1, Blocks[4], Blocks[5]);
  B.setBlock(Blocks[4]);
  B.br(Blocks[6]);
  B.setBlock(Blocks[5]);
  B.br(Blocks[6]);
  B.setBlock(Blocks[6]);
  B.condBr(2, Blocks[1], Blocks[7]);
  B.setBlock(Blocks[7]);
  B.ret(NoReg);
  F->renumberBlocks();
  return M;
}

std::string pathString(const DecodedEntry &D) {
  std::string S;
  for (uint32_t B : D.White.Blocks) {
    if (!S.empty())
      S += " => ";
    S += BlockNames[B];
  }
  if (D.End == PathEnd::Backedge) {
    S += " !";
    for (uint32_t B : D.Suffix) {
      S += " ";
      S += BlockNames[B];
    }
  }
  return S;
}

void printBLPaths() {
  auto M = makePaperLoop();
  const Function &F = *M->function(0);
  CfgView Cfg = CfgView::build(F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  std::string Error;
  auto PG = PathGraph::build(F, Cfg, LI, {}, Error);
  TableWriter T({"Id", "Ball-Larus Path"});
  for (int64_t Id = 0; Id < static_cast<int64_t>(PG->numPaths()); ++Id)
    T.addRow({std::to_string(Id), pathString(decodePathId(*PG, Id))});
  std::printf("== Table 2: Ball-Larus paths of the example CFG ==\n");
  std::fputs(T.renderText().c_str(), stdout);
  std::printf("(the paper lists 12 paths; we number %llu)\n\n",
              static_cast<unsigned long long>(PG->numPaths()));
}

void printOLPathCounts() {
  auto M = makePaperLoop();
  const Function &F = *M->function(0);
  CfgView Cfg = CfgView::build(F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  TableWriter T({"Degree k", "Crossing Paths", "Example"});
  for (uint32_t K = 0; K <= 2; ++K) {
    PathGraphOptions Opts;
    Opts.LoopOverlap = true;
    Opts.Degree = K;
    std::string Error;
    auto PG = PathGraph::build(F, Cfg, LI, Opts, Error);
    uint64_t Crossing = 0;
    std::string Example;
    for (int64_t Id = 0; Id < static_cast<int64_t>(PG->numPaths()); ++Id) {
      DecodedEntry D = decodePathId(*PG, Id);
      if (D.End != PathEnd::Backedge)
        continue;
      ++Crossing;
      if (Example.empty())
        Example = pathString(D);
    }
    T.addRow({std::to_string(K), std::to_string(Crossing), Example});
  }
  std::printf("== Table 3: overlapping paths in the example CFG ==\n");
  std::fputs(T.renderText().c_str(), stdout);
  std::printf("(paper: 6 / 12 / 12 pure-degree paths; our counts include\n"
              " the shorter flush-early paths each degree also profiles)\n\n");
}

// The worked execution of section 2.2.3 (Tables 4/5).
void printLoopBoundsExample() {
  constexpr uint32_t NumPairs = 9;
  auto Cell = [](int P, int Q) { return static_cast<uint32_t>(P * 3 + Q); };
  const uint64_t Real[NumPairs] = {250, 0, 250, 0, 250, 250, 0, 0, 0};
  const uint64_t RowTotal[3] = {500, 500, 0};
  const uint64_t ColCap[3] = {250, 250, 500};

  auto Base = [&] {
    std::vector<SumConstraint> Cs;
    for (int P = 0; P < 3; ++P)
      Cs.push_back({RowTotal[P], true, {Cell(P, 0), Cell(P, 1), Cell(P, 2)}});
    for (int Q = 0; Q < 3; ++Q)
      Cs.push_back(
          {ColCap[Q], false, {Cell(0, Q), Cell(1, Q), Cell(2, Q)}});
    return Cs;
  };

  BoundsResult OL0 = solveBounds(NumPairs, Base());

  std::vector<SumConstraint> Cs1 = Base();
  Cs1.push_back({250, true, {Cell(0, 0)}});
  Cs1.push_back({250, true, {Cell(0, 1), Cell(0, 2)}});
  Cs1.push_back({0, true, {Cell(1, 0)}});
  Cs1.push_back({500, true, {Cell(1, 1), Cell(1, 2)}});
  Cs1.push_back({0, true, {Cell(2, 0)}});
  Cs1.push_back({0, true, {Cell(2, 1), Cell(2, 2)}});
  BoundsResult OL1 = solveBounds(NumPairs, Cs1);

  TableWriter T({"Interesting Path", "Real", "L (OL-0)", "L (OL-1)",
                 "U (OL-0)", "U (OL-1)"});
  for (int P = 0; P < 3; ++P)
    for (int Q = 0; Q < 3; ++Q) {
      uint32_t C = Cell(P, Q);
      T.addRow({std::to_string(P + 1) + " ! " + std::to_string(Q + 1),
                std::to_string(Real[C]), std::to_string(OL0.Lower[C]),
                std::to_string(OL1.Lower[C]), std::to_string(OL0.Upper[C]),
                std::to_string(OL1.Upper[C])});
    }
  std::printf("== Tables 4/5: bounds for the worked loop execution ==\n");
  std::fputs(T.renderText().c_str(), stdout);
  std::printf("definite/potential: OL-0 %llu/%llu, OL-1 %llu/%llu "
              "(real 1000; paper: 0/2000 and exact at OL-2)\n\n",
              static_cast<unsigned long long>(OL0.sumLower()),
              static_cast<unsigned long long>(OL0.sumUpper()),
              static_cast<unsigned long long>(OL1.sumLower()),
              static_cast<unsigned long long>(OL1.sumUpper()));
}

// The interprocedural example of section 3.2.3: 3 caller paths, 5 callee
// paths, 100 calls, only 1!1 real.
void printInterprocExample() {
  auto Cell = [](int P, int Q) { return static_cast<uint32_t>(P * 5 + Q); };
  std::vector<SumConstraint> Bl;
  SumConstraint Total{100, true, {}};
  for (int P = 0; P < 3; ++P)
    for (int Q = 0; Q < 5; ++Q)
      Total.Cells.push_back(Cell(P, Q));
  Bl.push_back(Total);
  for (int P = 0; P < 3; ++P) {
    SumConstraint Row{200, false, {}};
    for (int Q = 0; Q < 5; ++Q)
      Row.Cells.push_back(Cell(P, Q));
    Bl.push_back(Row);
  }
  for (int Q = 0; Q < 5; ++Q) {
    SumConstraint Col{200, false, {}};
    for (int P = 0; P < 3; ++P)
      Col.Cells.push_back(Cell(P, Q));
    Bl.push_back(Col);
  }
  BoundsResult RBl = solveBounds(15, Bl);

  std::vector<SumConstraint> Ol;
  Ol.push_back({100, true, {Cell(0, 0)}});
  Ol.push_back({0, true, {Cell(0, 1), Cell(0, 2), Cell(0, 3), Cell(0, 4)}});
  for (int P = 1; P < 3; ++P) {
    Ol.push_back({0, true, {Cell(P, 0)}});
    Ol.push_back({0, true, {Cell(P, 1), Cell(P, 2), Cell(P, 3), Cell(P, 4)}});
  }
  BoundsResult ROl = solveBounds(15, Ol);

  std::printf("== Section 3.2.3: interprocedural example ==\n");
  std::printf("BL-only bounds:   every pair in [%llu, %llu]\n",
              static_cast<unsigned long long>(RBl.Lower[0]),
              static_cast<unsigned long long>(RBl.Upper[0]));
  std::printf("I-OL-1 bounds:    1!1 = [%llu, %llu], all other pairs "
              "[%llu, %llu]\n",
              static_cast<unsigned long long>(ROl.Lower[0]),
              static_cast<unsigned long long>(ROl.Upper[0]),
              static_cast<unsigned long long>(ROl.Lower[1]),
              static_cast<unsigned long long>(ROl.Upper[1]));
  std::printf("(paper: BL gives 0..100 for all 15 pairs; I-OL-1 is exact)\n\n");
}

} // namespace

int main() {
  printBLPaths();
  printOLPathCounts();
  printLoopBoundsExample();
  printInterprocExample();
  return 0;
}
