//===--- table1_flow.cpp - reproduce paper Table 1 -----------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Table 1: the fraction of total flow attributable to interesting paths,
// split into paths crossing loop backedges and paths crossing procedure
// boundaries. Flow is counted as in the paper: the sum of all dynamic
// Ball-Larus path instances; every backedge crossing is one loop
// interesting-path instance, every call a Type I and every return a Type II
// instance.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"

using namespace olpp;
using namespace olpp::bench;

int main() {
  std::vector<PreparedWorkload> Suite = prepareAll();
  TableWriter T({"Benchmark", "Loop Backedges", "Procedure Boundaries",
                 "Total Flow"});
  std::vector<double> LoopPcts, ProcPcts, TotalPcts;

  for (const PreparedWorkload &P : Suite) {
    PipelineResult R = runPrepared(P, sweepOptions(-1), /*Precision=*/true);
    double Total = static_cast<double>(R.GT.TotalPathInstances);
    double LoopPct =
        100.0 * static_cast<double>(R.GT.TotalBackedgeCrossings) / Total;

    // Section 3.1 anchors Type I paths at the caller's entry node and Type
    // II paths at the caller's exit, so only those pairs count as
    // interesting procedure-crossing flow (see EXPERIMENTS.md).
    uint64_t ProcFlow = 0;
    for (uint32_t Cs = 0; Cs < R.GT.CallSites.size(); ++Cs) {
      const CallSiteInfo &Info = R.MI.CallSites[Cs];
      const auto &CallerPaths = R.GT.Funcs[Info.Func].Paths;
      for (const auto &[Callee, Pairs] : R.GT.CallSites[Cs].TypeIPairs)
        for (const auto &[K, C] : Pairs) {
          const DynPathKey &Pp = CallerPaths[static_cast<uint32_t>(K >> 32)];
          if (!Pp.Sig.StartsAtCallContinuation && Pp.Sig.Blocks.front() == 0)
            ProcFlow += C;
        }
      for (const auto &[Callee, Pairs] : R.GT.CallSites[Cs].TypeIIPairs)
        for (const auto &[K, C] : Pairs) {
          const DynPathKey &Rr =
              CallerPaths[static_cast<uint32_t>(K & 0xFFFFFFFF)];
          if (Rr.End == PathEnd::Ret)
            ProcFlow += C;
        }
    }
    double ProcPct = 100.0 * static_cast<double>(ProcFlow) / Total;
    LoopPcts.push_back(LoopPct);
    ProcPcts.push_back(ProcPct);
    TotalPcts.push_back(LoopPct + ProcPct);
    T.addRow({P.W->Name, formatFixed(LoopPct, 1) + " %",
              formatFixed(ProcPct, 1) + " %",
              formatFixed(LoopPct + ProcPct, 1) + " %"});
  }
  double L = 0, Pr = 0, To = 0;
  for (size_t I = 0; I < LoopPcts.size(); ++I) {
    L += LoopPcts[I];
    Pr += ProcPcts[I];
    To += TotalPcts[I];
  }
  size_t N = LoopPcts.size();
  T.addRow({"Average", formatFixed(L / N, 1) + " %",
            formatFixed(Pr / N, 1) + " %", formatFixed(To / N, 1) + " %"});

  printTable("Table 1: flow attributable to interesting paths", T,
             "(paper: 76.9% - 96.2% total across the SPEC subset)");
  return 0;
}
