//===--- perf_analyze.cpp - static feasibility analysis benchmark ---------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the static path-feasibility subsystem and writes the
/// BENCH_analyze.json report (schema "olpp.bench.analyze/v1", committed at
/// the repo root). Per workload, the module is instrumented under the full
/// mode (OL-2 + interprocedural k=2) and two costs are timed --reps times:
///
///   summary    computeSummaries — the bottom-up purity / globals / return-
///              range pass the feasibility queries consult,
///   enumerate  computeInfeasiblePaths over every instrumented function —
///              the subtree-pruned DFS that yields proven-infeasible id
///              intervals.
///
/// The report also records what the analysis buys: the share of acyclic
/// path ids proven infeasible, and the bound-tightening ratio — the solver's
/// remaining slack (sum of Potential - Definite over all problems) with
/// feasibility facts divided by the slack without them, measured over one
/// precision-args profile run. The facts are hard `== 0` constraints in a
/// monotone solver, so the ratio can only be <= 1; the JSON validator
/// rejects anything larger.
///
/// Usage: perf_analyze [workload ...] [--reps N] [--out FILE]
///
//===----------------------------------------------------------------------===//

#include "analysis/Summary.h"
#include "analysis/Feasibility.h"
#include "estimate/Estimators.h"
#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "profile/Instrumenter.h"
#include "profile/InfeasiblePaths.h"
#include "support/BenchJson.h"
#include "support/TableWriter.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace olpp;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

bool benchWorkload(const Workload &W, unsigned Reps,
                   AnalyzeWorkloadBench &Out) {
  CompileResult CR = compileMiniC(W.Source);
  if (!CR.ok()) {
    std::fprintf(stderr, "error: %s: compile failed:\n%s", W.Name.c_str(),
                 CR.diagText().c_str());
    return false;
  }
  std::unique_ptr<Module> Instr = CR.M->clone();
  InstrumentOptions Opts;
  Opts.LoopOverlap = true;
  Opts.LoopDegree = 2;
  Opts.Interproc = true;
  Opts.InterprocDegree = 2;
  ModuleInstrumentation MI = instrumentModule(*Instr, Opts);
  if (!MI.ok()) {
    std::fprintf(stderr, "error: %s: instrumentation failed: %s\n",
                 W.Name.c_str(), MI.Errors[0].c_str());
    return false;
  }

  // Summary pass throughput.
  ModuleSummaries Sums;
  auto T0 = std::chrono::steady_clock::now();
  for (unsigned Rep = 0; Rep < Reps; ++Rep)
    Sums = computeSummaries(*Instr);
  Out.SummarySeconds = secondsSince(T0);

  // Infeasible-id enumeration over every instrumented function. The id
  // totals must be identical on every rep (the analysis is deterministic);
  // any drift is an analysis bug worth failing the bench over.
  uint64_t PathIds = 0, InfeasibleIds = 0;
  unsigned Functions = 0;
  T0 = std::chrono::steady_clock::now();
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    uint64_t RepPathIds = 0, RepInfeasible = 0;
    unsigned RepFunctions = 0;
    for (uint32_t F = 0; F < Instr->numFunctions(); ++F) {
      const FunctionInstrumentation &FI = MI.Funcs[F];
      if (!FI.PG || !FI.Cfg)
        continue;
      ++RepFunctions;
      RepPathIds += FI.PG->numPaths();
      FunctionInfeasibility Inf = computeInfeasiblePaths(
          *Instr->function(F), *FI.Cfg, *FI.PG, &Sums);
      RepInfeasible += Inf.InfeasibleIds;
    }
    if (Rep == 0) {
      PathIds = RepPathIds;
      InfeasibleIds = RepInfeasible;
      Functions = RepFunctions;
    } else if (RepPathIds != PathIds || RepInfeasible != InfeasibleIds) {
      std::fprintf(stderr,
                   "error: %s: enumeration is not deterministic "
                   "(rep %u disagrees with rep 0)\n",
                   W.Name.c_str(), Rep);
      return false;
    }
  }
  Out.EnumerateSeconds = secondsSince(T0);

  Out.Name = W.Name;
  Out.Functions = Functions;
  Out.PathIds = PathIds;
  Out.InfeasibleIds = InfeasibleIds;
  Out.InfeasiblePercent =
      PathIds > 0 ? 100.0 * static_cast<double>(InfeasibleIds) /
                        static_cast<double>(PathIds)
                  : 0.0;
  Out.SecondsPerFunction =
      Functions > 0 ? (Out.SummarySeconds + Out.EnumerateSeconds) /
                          (static_cast<double>(Reps) * Functions)
                    : 0.0;

  // Bound tightening: one precision-args profile run, then the interval
  // solver without and with the feasibility facts.
  const Function *Main = Instr->findFunction("main");
  if (!Main) {
    std::fprintf(stderr, "error: %s: no 'main'\n", W.Name.c_str());
    return false;
  }
  std::vector<int64_t> Args = W.PrecisionArgs;
  Args.resize(Main->NumParams, 0);
  ProfileRuntime Prof(Instr->numFunctions());
  for (uint32_t F = 0; F < Instr->numFunctions(); ++F)
    if (MI.Funcs[F].PG)
      Prof.configurePathStore(F, MI.Funcs[F].PG->numPaths());
  Interpreter I(*Instr, &Prof);
  RunConfig RC;
  RC.MaxSteps = 2'000'000'000;
  RunResult R = I.run(*Main, Args, RC);
  if (!R.Ok) {
    std::fprintf(stderr, "error: %s: profile run failed: %s\n",
                 W.Name.c_str(), R.Error.c_str());
    return false;
  }

  ModuleEstimator Est(*Instr, MI, Prof);
  EstimateMetrics Without = Est.estimateAll();
  PathFeasibility PF(*Instr, &Sums);
  Est.setFeasibility(&PF);
  EstimateMetrics With = Est.estimateAll();
  if (With.Definite < Without.Definite ||
      With.Potential > Without.Potential) {
    std::fprintf(stderr,
                 "error: %s: feasibility facts widened the solver bounds\n",
                 W.Name.c_str());
    return false;
  }
  double SlackWithout = static_cast<double>(Without.Potential) -
                        static_cast<double>(Without.Definite);
  double SlackWith = static_cast<double>(With.Potential) -
                     static_cast<double>(With.Definite);
  Out.TighteningRatio = SlackWithout > 0 ? SlackWith / SlackWithout : 1.0;
  Out.InfeasiblePairs = With.InfeasiblePairs;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Reps = 20;
  std::string Out = "BENCH_analyze.json";
  std::vector<std::string> Names;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--reps") == 0 && I + 1 < Argc) {
      Reps = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc) {
      Out = Argv[++I];
    } else {
      Names.emplace_back(Argv[I]);
    }
  }
  if (Reps == 0)
    Reps = 1;

  AnalyzeBenchReport Report;
  Report.Reps = Reps;

  auto T0 = std::chrono::steady_clock::now();
  for (const Workload &W : allWorkloads()) {
    if (!Names.empty() &&
        std::find(Names.begin(), Names.end(), W.Name) == Names.end())
      continue;
    AnalyzeWorkloadBench B;
    if (!benchWorkload(W, Reps, B))
      return 1;
    Report.Workloads.push_back(std::move(B));
  }
  if (Report.Workloads.empty()) {
    std::fprintf(stderr, "error: no workload matched\n");
    return 1;
  }
  Report.WallSeconds = secondsSince(T0);

  TableWriter T({"Workload", "Funcs", "Path ids", "Infeasible", "%",
                 "Sum s", "Enum s", "s/func", "Tighten", "Pairs==0"});
  for (const AnalyzeWorkloadBench &B : Report.Workloads) {
    char Pct[32], Su[32], En[32], PerF[32], Ti[32];
    std::snprintf(Pct, sizeof(Pct), "%.1f", B.InfeasiblePercent);
    std::snprintf(Su, sizeof(Su), "%.3f", B.SummarySeconds);
    std::snprintf(En, sizeof(En), "%.3f", B.EnumerateSeconds);
    std::snprintf(PerF, sizeof(PerF), "%.2e", B.SecondsPerFunction);
    std::snprintf(Ti, sizeof(Ti), "%.3f", B.TighteningRatio);
    T.addRow({B.Name, std::to_string(B.Functions),
              std::to_string(B.PathIds), std::to_string(B.InfeasibleIds),
              Pct, Su, En, PerF, Ti, std::to_string(B.InfeasiblePairs)});
  }
  std::fputs(T.renderText().c_str(), stdout);
  std::printf("reps=%u wall %.1fs\n", Reps, Report.WallSeconds);

  std::string Error;
  std::string Rendered = renderAnalyzeBenchJson(Report);
  if (!validateAnalyzeBenchJson(Rendered, Error)) {
    std::fprintf(stderr, "internal error: report is invalid: %s\n",
                 Error.c_str());
    return 1;
  }
  if (!writeAnalyzeBenchJson(Out, Report, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", Out.c_str());
  return 0;
}
