//===--- micro_probe_cost.cpp - wall-clock micro benchmarks ----------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// google-benchmark timings of the actual interpreter machinery: baseline
// instruction dispatch, probe execution at the three instrumentation
// levels, and the raw counter-store operations. These are wall-clock
// numbers for this host; the paper-shaped results use the deterministic
// cost model instead.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "interp/ProfileRuntime.h"

#include <benchmark/benchmark.h>

using namespace olpp;

namespace {

const char *HotLoop = R"(
  fn spin(n) {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
      if (i % 3 == 0) { s = s + i; }
      else if (i % 5 == 0) { s = s - i; }
      else { s = s ^ i; }
    }
    return s;
  }
  fn main(n) { return spin(n) + spin(n / 2); })";

struct Prepared {
  std::unique_ptr<Module> M;
  std::unique_ptr<ProfileRuntime> Prof;
};

Prepared prepare(const InstrumentOptions *O) {
  CompileResult CR = compileMiniC(HotLoop);
  Prepared P;
  P.M = std::move(CR.M);
  if (O) {
    ModuleInstrumentation MI = instrumentModule(*P.M, *O);
    if (!MI.ok())
      std::abort();
    P.Prof = std::make_unique<ProfileRuntime>(P.M->numFunctions());
  }
  return P;
}

void runOnce(benchmark::State &State, const InstrumentOptions *O) {
  Prepared P = prepare(O);
  const Function *Main = P.M->findFunction("main");
  Interpreter I(*P.M, P.Prof.get());
  uint64_t Steps = 0;
  for (auto _ : State) {
    RunResult R = I.run(*Main, {3000});
    benchmark::DoNotOptimize(R.ReturnValue);
    Steps += R.Counts.Steps;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Steps));
}

void BM_Uninstrumented(benchmark::State &State) { runOnce(State, nullptr); }

void BM_PlainBL(benchmark::State &State) {
  InstrumentOptions O;
  runOnce(State, &O);
}

void BM_LoopOverlapK2(benchmark::State &State) {
  InstrumentOptions O;
  O.LoopOverlap = true;
  O.LoopDegree = 2;
  runOnce(State, &O);
}

void BM_FullInterprocK2(benchmark::State &State) {
  InstrumentOptions O;
  O.LoopOverlap = true;
  O.LoopDegree = 2;
  O.Interproc = true;
  O.InterprocDegree = 2;
  runOnce(State, &O);
}

void BM_PathCounterBump(benchmark::State &State) {
  ProfileRuntime Prof(1);
  int64_t Id = 0;
  for (auto _ : State) {
    Prof.PathCounts[0].bump(Id);
    Id = (Id + 7919) & 0xFFFF;
    benchmark::DoNotOptimize(Prof.PathCounts[0]);
  }
}

void BM_TupleCounterBump(benchmark::State &State) {
  ProfileRuntime Prof(1);
  int64_t Id = 0;
  for (auto _ : State) {
    Prof.TypeIICounts.bump({1, 2, Id, Id + 1});
    Id = (Id + 7919) & 0xFFFF;
    benchmark::DoNotOptimize(Prof.TypeIICounts);
  }
}

} // namespace

BENCHMARK(BM_Uninstrumented)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlainBL)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoopOverlapK2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullInterprocK2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PathCounterBump);
BENCHMARK(BM_TupleCounterBump);

BENCHMARK_MAIN();
