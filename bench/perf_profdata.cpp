//===--- perf_profdata.cpp - .olpp artifact pipeline benchmark ------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the persistent-profile pipeline and writes the
/// BENCH_profdata.json report (schema "olpp.bench.profdata/v1", committed at
/// the repo root). Per workload, the suite is profiled once under the full
/// instrumentation mode (OL-2 + interprocedural k=2) and the resulting
/// artifact is pushed through the three profdata operations:
///
///   write  serializeProfileArtifact, --reps times — the delta/varint + CRC
///          encoder's throughput over the artifact's own bytes,
///   read   readProfileArtifactBytes, --reps times — the checked decoder
///          (CRC verification on, every structural check live),
///   merge  mergeArtifacts folding --merge-inputs copies into an
///          accumulator — the saturating counter-merge throughput.
///
/// Correctness is checked inside the harness: every read must decode to an
/// artifact equal to the one written, and the merged artifact's counters
/// must equal the single-run counters scaled by the input count (merge of N
/// identical runs == N x the run, the replay-equivalence the format
/// guarantees). The report also records the serialized size next to a naive
/// fixed-width counter dump (16 bytes per path record, 40 per
/// interprocedural tuple) — the compression the encoding buys.
///
/// Usage: perf_profdata [workload ...] [--reps N] [--merge-inputs N]
///                      [--out FILE]
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "profdata/Merge.h"
#include "profdata/ProfData.h"
#include "profile/Instrumenter.h"
#include "support/BenchJson.h"
#include "support/Saturate.h"
#include "support/TableWriter.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace olpp;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// The naive fixed-width dump the varint encoding competes with: u64 slot +
/// u64 count per path record, 4 x u64 key + u64 count per interproc tuple.
uint64_t rawDumpBytes(const ProfileArtifact &A) {
  uint64_t PathRecords = 0;
  for (const auto &S : A.Counters.PathCounts)
    PathRecords += S.size();
  uint64_t TupleRecords =
      A.Counters.TypeICounts.size() + A.Counters.TypeIICounts.size();
  return PathRecords * 16 + TupleRecords * 40;
}

bool benchWorkload(const Workload &W, unsigned Reps, unsigned MergeInputs,
                   ProfdataWorkloadBench &Out) {
  CompileResult CR = compileMiniC(W.Source);
  if (!CR.ok()) {
    std::fprintf(stderr, "error: %s: compile failed:\n%s", W.Name.c_str(),
                 CR.diagText().c_str());
    return false;
  }
  std::unique_ptr<Module> Instr = CR.M->clone();
  InstrumentOptions Opts;
  Opts.LoopOverlap = true;
  Opts.LoopDegree = 2;
  Opts.Interproc = true;
  Opts.InterprocDegree = 2;
  ModuleInstrumentation MI = instrumentModule(*Instr, Opts);
  if (!MI.ok()) {
    std::fprintf(stderr, "error: %s: instrumentation failed: %s\n",
                 W.Name.c_str(), MI.Errors[0].c_str());
    return false;
  }
  const Function *Main = Instr->findFunction("main");
  if (!Main) {
    std::fprintf(stderr, "error: %s: no 'main'\n", W.Name.c_str());
    return false;
  }
  std::vector<int64_t> Args = W.OverheadArgs;
  Args.resize(Main->NumParams, 0);

  ProfileRuntime Prof(Instr->numFunctions());
  for (uint32_t F = 0; F < Instr->numFunctions(); ++F)
    if (MI.Funcs[F].PG)
      Prof.configurePathStore(F, MI.Funcs[F].PG->numPaths());
  Interpreter I(*Instr, &Prof);
  RunConfig RC;
  RC.MaxSteps = 2'000'000'000;
  RunResult R = I.run(*Main, Args, RC);
  if (!R.Ok) {
    std::fprintf(stderr, "error: %s: profile run failed: %s\n",
                 W.Name.c_str(), R.Error.c_str());
    return false;
  }

  RunMeta Meta;
  Meta.Workload = W.Name;
  Meta.Runs = 1;
  Meta.DynInstrCost = R.Counts.Steps;
  ProfileArtifact Art = ProfileArtifact::fromRuntime(*CR.M, MI, Prof, Meta);

  Out.Name = W.Name;
  Out.Records = Art.numRecords();
  Out.RawDumpBytes = rawDumpBytes(Art);

  // Write throughput: re-serialize the artifact Reps times.
  std::string Bytes;
  auto T0 = std::chrono::steady_clock::now();
  for (unsigned Rep = 0; Rep < Reps; ++Rep)
    Bytes = serializeProfileArtifact(Art);
  Out.WriteSeconds = secondsSince(T0);
  Out.ArtifactBytes = Bytes.size();

  // Checked-read throughput, every decode verified lossless.
  T0 = std::chrono::steady_clock::now();
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    ProfileArtifact Back;
    std::vector<Diagnostic> Diags;
    if (!readProfileArtifactBytes(Bytes, Back, Diags)) {
      std::fprintf(stderr, "error: %s: checked read rejected the artifact: "
                           "%s\n",
                   W.Name.c_str(),
                   Diags.empty() ? "(no diagnostic)"
                                 : Diags[0].str().c_str());
      return false;
    }
    std::string FirstDiff;
    if (!artifactsEqual(Art, Back, &FirstDiff)) {
      std::fprintf(stderr, "error: %s: round trip not lossless: %s\n",
                   W.Name.c_str(), FirstDiff.c_str());
      return false;
    }
  }
  Out.ReadSeconds = secondsSince(T0);

  // Merge throughput: fold MergeInputs copies, then require the result to
  // equal the single run scaled by the input count.
  ProfileArtifact Acc = makeEmptyLike(Art);
  T0 = std::chrono::steady_clock::now();
  for (unsigned In = 0; In < MergeInputs; ++In) {
    std::vector<Diagnostic> Diags;
    if (!mergeArtifacts(Acc, Art, Diags)) {
      std::fprintf(stderr, "error: %s: merge rejected input %u: %s\n",
                   W.Name.c_str(), In,
                   Diags.empty() ? "(no diagnostic)"
                                 : Diags[0].str().c_str());
      return false;
    }
  }
  Out.MergeSeconds = secondsSince(T0);

  ProfileArtifact Want = makeEmptyLike(Art);
  {
    std::vector<Diagnostic> Diags;
    MergeOptions MO;
    MO.Weight = MergeInputs;
    if (!mergeArtifacts(Want, Art, Diags, MO)) {
      std::fprintf(stderr, "error: %s: weighted merge failed\n",
                   W.Name.c_str());
      return false;
    }
  }
  std::string FirstDiff;
  if (!artifactsEqual(Acc, Want, &FirstDiff)) {
    std::fprintf(stderr,
                 "error: %s: merging %u copies != the run weighted by %u: "
                 "%s\n",
                 W.Name.c_str(), MergeInputs, MergeInputs, FirstDiff.c_str());
    return false;
  }

  const double MB = 1024.0 * 1024.0;
  double WriteBytes = static_cast<double>(Bytes.size()) * Reps;
  double ReadBytes = WriteBytes;
  Out.WriteMBPerSec =
      Out.WriteSeconds > 0 ? WriteBytes / MB / Out.WriteSeconds : 0.0;
  Out.ReadMBPerSec =
      Out.ReadSeconds > 0 ? ReadBytes / MB / Out.ReadSeconds : 0.0;
  double MergedRecords =
      static_cast<double>(Out.Records) * MergeInputs;
  Out.MergeRecordsPerSec =
      Out.MergeSeconds > 0 ? MergedRecords / Out.MergeSeconds : 0.0;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Reps = 200;
  unsigned MergeInputs = 64;
  std::string Out = "BENCH_profdata.json";
  std::vector<std::string> Names;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--reps") == 0 && I + 1 < Argc) {
      Reps = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--merge-inputs") == 0 && I + 1 < Argc) {
      MergeInputs = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc) {
      Out = Argv[++I];
    } else {
      Names.emplace_back(Argv[I]);
    }
  }
  if (Reps == 0)
    Reps = 1;
  if (MergeInputs == 0)
    MergeInputs = 1;

  ProfdataBenchReport Report;
  Report.Reps = Reps;
  Report.MergeInputs = MergeInputs;

  auto T0 = std::chrono::steady_clock::now();
  for (const Workload &W : allWorkloads()) {
    if (!Names.empty() &&
        std::find(Names.begin(), Names.end(), W.Name) == Names.end())
      continue;
    ProfdataWorkloadBench B;
    if (!benchWorkload(W, Reps, MergeInputs, B))
      return 1;
    Report.Workloads.push_back(std::move(B));
  }
  if (Report.Workloads.empty()) {
    std::fprintf(stderr, "error: no workload matched\n");
    return 1;
  }
  Report.WallSeconds = secondsSince(T0);

  TableWriter T({"Workload", "Records", "Artifact B", "Raw B", "Ratio",
                 "Write MB/s", "Read MB/s", "Merge rec/s"});
  for (const ProfdataWorkloadBench &B : Report.Workloads) {
    char Ratio[32], Wr[32], Rd[32], Mg[32];
    double R = B.ArtifactBytes > 0
                   ? static_cast<double>(B.RawDumpBytes) /
                         static_cast<double>(B.ArtifactBytes)
                   : 0.0;
    std::snprintf(Ratio, sizeof(Ratio), "%.2fx", R);
    std::snprintf(Wr, sizeof(Wr), "%.1f", B.WriteMBPerSec);
    std::snprintf(Rd, sizeof(Rd), "%.1f", B.ReadMBPerSec);
    std::snprintf(Mg, sizeof(Mg), "%.0f", B.MergeRecordsPerSec);
    T.addRow({B.Name, std::to_string(B.Records),
              std::to_string(B.ArtifactBytes),
              std::to_string(B.RawDumpBytes), Ratio, Wr, Rd, Mg});
  }
  std::fputs(T.renderText().c_str(), stdout);
  std::printf("reps=%u merge-inputs=%u wall %.1fs\n", Reps, MergeInputs,
              Report.WallSeconds);

  std::string Error;
  std::string Rendered = renderProfdataBenchJson(Report);
  if (!validateProfdataBenchJson(Rendered, Error)) {
    std::fprintf(stderr, "internal error: report is invalid: %s\n",
                 Error.c_str());
    return 1;
  }
  if (!writeProfdataBenchJson(Out, Report, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", Out.c_str());
  return 0;
}
