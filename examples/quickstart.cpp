//===--- quickstart.cpp - OLPP in five minutes -----------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// The smallest end-to-end use of the library:
//   1. compile a MiniC program,
//   2. instrument it for Ball-Larus path profiling,
//   3. run it,
//   4. decode the counters back into paths and print the hottest ones.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "profile/ProfileDecode.h"
#include "support/TableWriter.h"

#include <algorithm>
#include <cstdio>

using namespace olpp;

static const char *Program = R"(
  // Classify numbers by their Collatz flight length.
  fn flightLength(n) {
    var steps = 0;
    while (n != 1 && steps < 200) {
      if (n % 2 == 0) { n = n / 2; }
      else { n = 3 * n + 1; }
      steps = steps + 1;
    }
    return steps;
  }
  fn main(limit) {
    var longest = 0;
    for (var n = 1; n <= limit; n = n + 1) {
      var len = flightLength(n);
      if (len > longest) { longest = len; }
    }
    return longest;
  })";

int main() {
  // One call runs the uninstrumented baseline (for ground truth) and the
  // instrumented copy on the same input.
  PipelineConfig Config;
  Config.Args = {500};
  PipelineResult R = runPipelineOnSource(Program, Config);
  if (!R.ok()) {
    for (const std::string &E : R.Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  std::printf("program result: %lld\n", static_cast<long long>(R.ReturnValue));
  std::printf("instrumentation overhead: %.1f %%\n\n", R.overheadPercent());

  // Decode and rank every function's paths.
  struct Hot {
    std::string Func;
    DecodedEntry Entry;
  };
  std::vector<Hot> Paths;
  for (uint32_t F = 0; F < R.InstrModule->numFunctions(); ++F)
    for (DecodedEntry &D :
         decodeProfile(*R.MI.Funcs[F].PG, R.Prof->PathCounts[F]))
      Paths.push_back({R.InstrModule->function(F)->Name, std::move(D)});
  std::sort(Paths.begin(), Paths.end(), [](const Hot &A, const Hot &B) {
    return A.Entry.Count > B.Entry.Count;
  });

  TableWriter T({"Function", "Count", "Path (block ids)", "Ends at"});
  for (size_t I = 0; I < Paths.size() && I < 8; ++I) {
    const DecodedEntry &D = Paths[I].Entry;
    std::string Blocks;
    for (uint32_t B : D.White.Blocks)
      Blocks += "^" + std::to_string(B) + " ";
    const char *End = D.End == PathEnd::Backedge   ? "backedge"
                      : D.End == PathEnd::CallBreak ? "call"
                                                    : "return";
    T.addRow({Paths[I].Func, std::to_string(D.Count), Blocks, End});
  }
  std::printf("hottest Ball-Larus paths:\n%s", T.renderText().c_str());
  return 0;
}
