//===--- inline_advisor.cpp - call-site specialization from Type I/II profiles ---===//
//
// Part of the OLPP project, under the MIT License.
//
// The paper's interprocedural motivation (e.g. interprocedural conditional
// branch elimination): optimizations want to know which caller path leads
// to which callee path. This example collects Type I overlapping profiles
// and reports, per call site, how concentrated the caller-path x
// callee-path distribution is — a concentrated site is a good candidate
// for inlining + path specialization.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "estimate/Estimators.h"
#include "support/Format.h"
#include "support/TableWriter.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace olpp;

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "vortex";
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'\n", Name);
    return 1;
  }

  PipelineConfig Config;
  Config.Instr.Interproc = true;
  Config.Instr.InterprocDegree = 3;
  Config.Args = W->PrecisionArgs;
  PipelineResult R = runPipelineOnSource(W->Source, Config);
  if (!R.ok()) {
    std::fprintf(stderr, "error: %s\n", R.Errors[0].c_str());
    return 1;
  }

  std::printf("inline advisor on workload '%s' (Type I overlap degree 3)\n\n",
              Name);

  ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);
  TableWriter T({"Call Site", "Caller -> Callee", "Calls", "Pairs",
                 "Exactly Known", "Dominant Pair", "Advice"});
  for (const CallSiteInfo &CS : R.MI.CallSites) {
    EstimateMetrics M = Est.estimateCallSiteTypeI(CS.CsId, &R.GT);
    if (M.Real == 0)
      continue;

    // Dominant pair share from the ground truth (what a production tool
    // would take from the OL profile itself once bounds are exact).
    uint64_t Best = 0;
    for (const auto &[Callee, Pairs] : R.GT.CallSites[CS.CsId].TypeIPairs)
      for (const auto &[K, C] : Pairs)
        Best = std::max(Best, C);
    double Share = 100.0 * static_cast<double>(Best) /
                   static_cast<double>(M.Real);
    double ExactShare = M.Pairs == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(M.ExactPairs) /
                                  static_cast<double>(M.Pairs);
    const char *Advice = Share > 70.0 && M.Real > 500
                             ? "inline + specialize"
                             : (Share > 40.0 ? "consider" : "leave");
    T.addRow({"cs" + std::to_string(CS.CsId),
              R.InstrModule->function(CS.Func)->Name + " -> " +
                  R.InstrModule->function(CS.Callee)->Name,
              formatInt(static_cast<int64_t>(M.Real)),
              std::to_string(M.Pairs), formatFixed(ExactShare, 0) + " %",
              formatFixed(Share, 0) + " %", Advice});
  }
  std::fputs(T.renderText().c_str(), stdout);
  std::printf("\n(a dominant caller-path ! callee-path pair means the callee"
              "\n body can be specialized for the path that feeds it)\n");
  return 0;
}
