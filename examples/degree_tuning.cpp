//===--- degree_tuning.cpp - choosing the degree of overlap ----------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// The paper's central trade-off, as a tool: sweep the overlap degree on a
// workload and print precision (definite/potential error, exactly-known
// paths) against instrumentation overhead, so a user can pick the k that
// buys enough precision for their optimization. The paper's answer — about
// a third of the maximum — falls out of this table.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "estimate/Estimators.h"
#include "frontend/Compiler.h"
#include "support/Format.h"
#include "support/TableWriter.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace olpp;

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "gcc";
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'; available:", Name);
    for (const Workload &Each : allWorkloads())
      std::fprintf(stderr, " %s", Each.Name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  CompileResult CR = compileMiniC(W->Source);
  if (!CR.ok()) {
    std::fprintf(stderr, "%s", CR.diagText().c_str());
    return 1;
  }
  DegreeLimits Lim = computeDegreeLimits(*CR.M, /*CallBreaking=*/true);
  uint32_t Max = std::max(Lim.MaxLoopDegree, Lim.MaxInterprocDegree);

  std::printf("degree tuning for '%s' (max useful degree %u)\n\n", Name, Max);
  TableWriter T({"Overlap k", "Definite Err", "Potential Err",
                 "Exactly Known", "Overhead"});

  for (int K = -1; K <= static_cast<int>(Max); ++K) {
    PipelineConfig Config;
    if (K < 0) {
      Config.Instr.CallBreaking = true;
    } else {
      Config.Instr.LoopOverlap = true;
      Config.Instr.LoopDegree = static_cast<uint32_t>(K);
      Config.Instr.Interproc = true;
      Config.Instr.InterprocDegree = static_cast<uint32_t>(K);
    }
    Config.Args = W->PrecisionArgs;
    PipelineResult R = runPipeline(*CR.M, Config);
    if (!R.ok()) {
      std::fprintf(stderr, "error: %s\n", R.Errors[0].c_str());
      return 1;
    }
    ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);
    EstimateMetrics M = Est.estimateAll(&R.GT);
    double ExactShare = M.Pairs == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(M.ExactPairs) /
                                  static_cast<double>(M.Pairs);
    T.addRow({K < 0 ? "BL" : std::to_string(K),
              formatSignedPercent(M.definiteErrorPercent()),
              formatSignedPercent(M.potentialErrorPercent()),
              formatFixed(ExactShare, 1) + " %",
              formatFixed(R.overheadPercent(), 1) + " %"});
  }
  std::fputs(T.renderText().c_str(), stdout);
  std::printf("\n(pick the first k where the error column is tight enough\n"
              " for your optimization; the overhead column is the price)\n");
  return 0;
}
