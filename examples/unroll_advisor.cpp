//===--- unroll_advisor.cpp - loop unrolling guided by overlap profiles ---------===//
//
// Part of the OLPP project, under the MIT License.
//
// The paper's motivating scenario for loop overlap profiles: when a
// scheduler unrolls a loop once (e.g. before trace scheduling), it needs
// frequencies of *two-iteration* paths to pick the trace. This example
// profiles a workload with overlapping paths, estimates every
// two-iteration path's frequency, and reports per loop whether one
// dominant i ! j pair covers enough flow to justify unrolling — something
// plain Ball-Larus bounds are too loose to decide.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "estimate/Estimators.h"
#include "support/Format.h"
#include "support/TableWriter.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace olpp;

static EstimateMetrics estimateAt(const Workload &W, int Degree,
                                  PipelineResult &ROut) {
  PipelineConfig Config;
  if (Degree >= 0) {
    Config.Instr.LoopOverlap = true;
    Config.Instr.LoopDegree = static_cast<uint32_t>(Degree);
  }
  Config.Args = W.PrecisionArgs;
  ROut = runPipelineOnSource(W.Source, Config);
  if (!ROut.ok()) {
    std::fprintf(stderr, "error: %s\n", ROut.Errors[0].c_str());
    std::exit(1);
  }
  ModuleEstimator Est(*ROut.InstrModule, ROut.MI, *ROut.Prof);
  return Est.estimateLoops(&ROut.GT);
}

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "twolf";
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'\n", Name);
    return 1;
  }

  std::printf("unroll advisor on workload '%s'\n\n", Name);

  // Step 1: how useful are plain BL profiles for the decision?
  PipelineResult RBl;
  EstimateMetrics Bl = estimateAt(*W, -1, RBl);
  std::printf("plain BL bounds on two-iteration flow: definite %s, "
              "potential %s (real %s)\n",
              formatInt(static_cast<int64_t>(Bl.Definite)).c_str(),
              formatInt(static_cast<int64_t>(Bl.Potential)).c_str(),
              formatInt(static_cast<int64_t>(Bl.Real)).c_str());

  // Step 2: overlapping profiles at a modest degree.
  PipelineResult ROl;
  EstimateMetrics Ol = estimateAt(*W, 2, ROl);
  std::printf("OL-2 bounds:                           definite %s, "
              "potential %s\n\n",
              formatInt(static_cast<int64_t>(Ol.Definite)).c_str(),
              formatInt(static_cast<int64_t>(Ol.Potential)).c_str());

  // Step 3: per-loop verdicts from the overlap run.
  ModuleEstimator Est(*ROl.InstrModule, ROl.MI, *ROl.Prof);
  TableWriter T({"Function", "Loop Header", "2-Iter Flow (definite)",
                 "Exact Pairs", "Verdict"});
  for (uint32_t F = 0; F < ROl.InstrModule->numFunctions(); ++F) {
    const auto &Meta = ROl.MI.Funcs[F];
    for (uint32_t L = 0; L < Meta.Loops->numLoops(); ++L) {
      EstimateMetrics M = Est.estimateLoop(F, L, &ROl.GT);
      if (M.Pairs == 0 || M.Real == 0)
        continue;
      double ExactShare = 100.0 * static_cast<double>(M.ExactPairs) /
                          static_cast<double>(M.Pairs);
      // Unroll when the dominant two-iteration behaviour is well resolved
      // and the loop is hot.
      const char *Verdict =
          M.Definite > 1000 && ExactShare > 60.0 ? "unroll" : "leave";
      T.addRow({ROl.InstrModule->function(F)->Name,
                "^" + std::to_string(Meta.Loops->loop(L).Header),
                formatInt(static_cast<int64_t>(M.Definite)),
                formatFixed(ExactShare, 0) + " %", Verdict});
    }
  }
  std::fputs(T.renderText().c_str(), stdout);
  return 0;
}
